"""Evaluation workloads: the crime / imdb / gov databases, queries
Q1-Q12 (Table 3) and the 19 use cases (Table 4) of the paper."""

from .crime import CRIME_QUERIES, build_crime_db
from .generator import (
    chain_database,
    chain_predicate,
    chain_query,
    scaled_database,
    scaling_join_database,
    scaling_join_predicate,
    scaling_join_query,
)
from .gov import GOV_QUERIES, build_gov_db
from .imdb import IMDB_QUERIES, build_imdb_db
from .usecases import (
    DATABASES,
    QUERIES,
    USE_CASES,
    USE_CASE_INDEX,
    UseCase,
    get_canonical,
    get_database,
    use_case_setup,
)

__all__ = [
    "CRIME_QUERIES",
    "DATABASES",
    "GOV_QUERIES",
    "IMDB_QUERIES",
    "QUERIES",
    "USE_CASES",
    "USE_CASE_INDEX",
    "UseCase",
    "build_crime_db",
    "build_gov_db",
    "build_imdb_db",
    "chain_database",
    "chain_predicate",
    "chain_query",
    "get_canonical",
    "get_database",
    "scaled_database",
    "scaling_join_database",
    "scaling_join_predicate",
    "scaling_join_query",
    "use_case_setup",
]
