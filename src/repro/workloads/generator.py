"""Parameterized workload generation for the scaling ablation.

The paper defers "a more extensive study of the impact of various
parameters on runtime" to future work; this module provides the knobs
our ablation benchmark (``benchmarks/bench_scaling.py``) turns: the
three databases at arbitrary scale factors, plus a synthetic chain-join
workload whose depth and fan-out are fully controllable.
"""

from __future__ import annotations

import bisect
import random

from ..errors import ConfigurationError
from ..relational.database import Database
from ..core.canonical import JoinPair, SPJASpec


def _zipf_sampler(rng: random.Random, n: int, exponent: float):
    """A seeded sampler of ranks ``0..n-1`` with Zipf weight
    ``1/(rank+1)**exponent`` (rank 0 most popular)."""
    weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
    cumulative: list[float] = []
    total = 0.0
    for w in weights:
        total += w
        cumulative.append(total)

    def sample() -> int:
        return bisect.bisect_left(cumulative, rng.random() * total)

    return sample


def scaled_database(name: str, scale: int) -> Database:
    """One of the evaluation databases at the given scale factor."""
    from .usecases import DATABASES

    return DATABASES[name](scale=scale)


def chain_database(
    relations: int,
    rows_per_relation: int,
    fanout: int = 2,
    seed: int = 99,
    zipf: float = 0.0,
) -> Database:
    """A synthetic chain of relations ``R0 - R1 - ... - Rk``.

    ``R_i`` has attributes ``(id, key, label)``; ``R_i.key`` joins
    ``R_{i+1}.id`` with the given fan-out (each id matched by *fanout*
    keys on average).  A designated "needle" value threads relation 0
    but is dropped from the last relation -- giving every chain query a
    non-trivially missing answer.

    ``zipf`` skews the join-key distribution: ``0.0`` (default) keeps
    the historical uniform draw (byte-identical databases for existing
    seeds); ``> 0.0`` draws keys with Zipf weight
    ``1/(rank+1)**zipf``, concentrating matches on a few hot ids --
    the join-heavy shape the columnar perf-gate suite scales.  Both
    paths are seeded and fully deterministic.
    """
    if relations < 2:
        raise ConfigurationError("a chain needs at least two relations")
    if zipf < 0.0:
        raise ConfigurationError("zipf exponent must be >= 0")
    rng = random.Random(seed)
    key_range = max(1, rows_per_relation // fanout)
    sample_key = (
        _zipf_sampler(rng, key_range, zipf)
        if zipf > 0.0
        else (lambda: rng.randrange(key_range))
    )
    db = Database("chain")
    for index in range(relations):
        db.create_table(f"R{index}", ["id", "key", "label"], key="id")
    for index in range(relations):
        for row in range(rows_per_relation):
            # keys point at ids of the next relation
            db.insert(
                f"R{index}",
                id=row,
                key=sample_key(),
                label=f"r{index}v{row % 10}",
            )
    # the needle: label "needle" exists in R0 but its key chain breaks
    # at the last relation (key points beyond the id range)
    db.insert(
        f"R0",
        id=rows_per_relation,
        key=rows_per_relation + 10**6,
        label="needle",
    )
    return db


def chain_query(relations: int) -> SPJASpec:
    """The natural chain join over :func:`chain_database`."""
    aliases = {f"R{index}": f"R{index}" for index in range(relations)}
    joins = [
        JoinPair(f"R{index}.key", f"R{index + 1}.id", f"k{index}")
        for index in range(relations - 1)
    ]
    return SPJASpec(
        aliases=aliases,
        joins=joins,
        projection=(
            "R0.label",
            f"R{relations - 1}.label",
        ),
    )


def chain_predicate() -> str:
    """The why-not question for the chain workload."""
    return "(R0.label: needle)"


#: defaults of the ``scaling_join`` workload (the columnar gate suite)
SCALING_JOIN_RELATIONS = 3
SCALING_JOIN_ROWS = 2000
SCALING_JOIN_FANOUT = 3
SCALING_JOIN_ZIPF = 1.1
SCALING_JOIN_SEED = 1234


def scaling_join_database(
    rows: int = SCALING_JOIN_ROWS,
    zipf: float = SCALING_JOIN_ZIPF,
    seed: int = SCALING_JOIN_SEED,
) -> Database:
    """The join-heavy scaling workload: a skewed three-relation chain.

    Zipf-skewed keys concentrate join matches on hot ids, so the
    intermediate join results grow superlinearly in *rows* -- the
    regime where batch-at-a-time execution pays off.  Deterministic
    for a given ``(rows, zipf, seed)``.
    """
    return chain_database(
        relations=SCALING_JOIN_RELATIONS,
        rows_per_relation=rows,
        fanout=SCALING_JOIN_FANOUT,
        seed=seed,
        zipf=zipf,
    )


def scaling_join_query() -> SPJASpec:
    """The chain join over :func:`scaling_join_database`."""
    return chain_query(SCALING_JOIN_RELATIONS)


def scaling_join_predicate() -> str:
    """The why-not question for the scaling_join workload."""
    return chain_predicate()
