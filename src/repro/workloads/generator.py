"""Parameterized workload generation for the scaling ablation.

The paper defers "a more extensive study of the impact of various
parameters on runtime" to future work; this module provides the knobs
our ablation benchmark (``benchmarks/bench_scaling.py``) turns: the
three databases at arbitrary scale factors, plus a synthetic chain-join
workload whose depth and fan-out are fully controllable.
"""

from __future__ import annotations

import random

from ..errors import ConfigurationError
from ..relational.database import Database
from ..core.canonical import JoinPair, SPJASpec


def scaled_database(name: str, scale: int) -> Database:
    """One of the evaluation databases at the given scale factor."""
    from .usecases import DATABASES

    return DATABASES[name](scale=scale)


def chain_database(
    relations: int,
    rows_per_relation: int,
    fanout: int = 2,
    seed: int = 99,
) -> Database:
    """A synthetic chain of relations ``R0 - R1 - ... - Rk``.

    ``R_i`` has attributes ``(id, key, label)``; ``R_i.key`` joins
    ``R_{i+1}.id`` with the given fan-out (each id matched by *fanout*
    keys on average).  A designated "needle" value threads relation 0
    but is dropped from the last relation -- giving every chain query a
    non-trivially missing answer.
    """
    if relations < 2:
        raise ConfigurationError("a chain needs at least two relations")
    rng = random.Random(seed)
    db = Database("chain")
    for index in range(relations):
        db.create_table(f"R{index}", ["id", "key", "label"], key="id")
    for index in range(relations):
        for row in range(rows_per_relation):
            # keys point at ids of the next relation
            key = rng.randrange(max(1, rows_per_relation // fanout))
            db.insert(
                f"R{index}",
                id=row,
                key=key,
                label=f"r{index}v{row % 10}",
            )
    # the needle: label "needle" exists in R0 but its key chain breaks
    # at the last relation (key points beyond the id range)
    db.insert(
        f"R0",
        id=rows_per_relation,
        key=rows_per_relation + 10**6,
        label="needle",
    )
    return db


def chain_query(relations: int) -> SPJASpec:
    """The natural chain join over :func:`chain_database`."""
    aliases = {f"R{index}": f"R{index}" for index in range(relations)}
    joins = [
        JoinPair(f"R{index}.key", f"R{index + 1}.id", f"k{index}")
        for index in range(relations - 1)
    ]
    return SPJASpec(
        aliases=aliases,
        joins=joins,
        projection=(
            "R0.label",
            f"R{relations - 1}.label",
        ),
    )


def chain_predicate() -> str:
    """The why-not question for the chain workload."""
    return "(R0.label: needle)"
