"""The imdb database and query Q5 (Sec. 4.1 of the paper).

The paper extracted real data from IMDB / MovieLens; we rebuild a
synthetic equivalent: movies, ratings (joined on the movie *name*, the
renamed output attribute exercised by use case Imdb2), and filming
locations (joined on the movie id).

Story rows:

* ``Avatar`` (2009) fails the ``year > 2009`` selection while its
  rating passes -- Imdb1's split blame between a selection and the
  name join;
* ``Christmas Story`` (2010, rating 9.1) survives both selections and
  the name join, but was filmed only in Toronto, while the
  ``USANewYork`` location rows belong to other movies -- Imdb2's blame
  lands on the location join, and only on it, *because* of the
  valid-successor requirement; the baseline sees survivors for both
  attribute constraints and returns nothing.
"""

from __future__ import annotations

import random

from ..relational.conditions import attr_cmp
from ..relational.database import Database
from ..core.canonical import JoinPair, SPJASpec

_CITIES = (
    "USALosAngeles",
    "USAChicago",
    "UKLondon",
    "FranceParis",
    "CanadaToronto",
)


def build_imdb_db(scale: int = 1, seed: int = 2014) -> Database:
    """Build the imdb database at the given scale factor."""
    rng = random.Random(seed)
    db = Database("imdb")
    db.create_table("Movies", ["id", "name", "year"], key="id")
    db.create_table("Ratings", ["id", "name", "rating"], key="id")
    db.create_table(
        "Locations", ["id", "movieId", "locationId"], key="id"
    )

    _insert_story_rows(db)
    _insert_background_rows(db, rng, scale)
    return db


def _insert_story_rows(db: Database) -> None:
    # Imdb1: Avatar is from 2009 -- killed by year > 2009; its rating
    # would have passed.
    db.insert("Movies", id=18, name="Avatar", year=2009)
    db.insert("Ratings", id=124, name="Avatar", rating=8.2)
    db.insert("Locations", id=7, movieId=18, locationId="USALosAngeles")

    # Imdb2: Christmas Story passes both selections and the name join,
    # but was filmed in Toronto only; USANewYork belongs to others.
    db.insert("Movies", id=4, name="Christmas Story", year=2010)
    db.insert("Ratings", id=245, name="Christmas Story", rating=9.1)
    db.insert("Locations", id=1, movieId=4, locationId="CanadaToronto")

    # Movies that *are* filmed in New York and reach the result -- the
    # survivors that blind the baseline in Imdb2.
    db.insert("Movies", id=30, name="Gotham Nights", year=2011)
    db.insert("Ratings", id=300, name="Gotham Nights", rating=8.7)
    db.insert("Locations", id=2, movieId=30, locationId="USANewYork")
    db.insert("Movies", id=31, name="Harbor Lights", year=2012)
    db.insert("Ratings", id=301, name="Harbor Lights", rating=8.4)
    db.insert("Locations", id=3, movieId=31, locationId="USANewYork")


def _insert_background_rows(
    db: Database, rng: random.Random, scale: int
) -> None:
    for index in range(60 * scale):
        movie_id = 1000 + index
        year = 2000 + rng.randrange(14)
        db.insert(
            "Movies", id=movie_id, name=f"movie{index}", year=year
        )
        db.insert(
            "Ratings",
            id=10_000 + index,
            name=f"movie{index}",
            rating=round(5 + rng.random() * 5, 1),
        )
        for loc in range(rng.randrange(1, 3)):
            db.insert(
                "Locations",
                id=20_000 + index * 3 + loc,
                movieId=movie_id,
                locationId=rng.choice(_CITIES),
            )


def query_q5() -> SPJASpec:
    """Q5: recent, highly rated movies with their filming locations.

    ``pi_{name, L.locationId}(L |><|_movieId
    ((sigma_{M.year>2009} M) |><|_name (sigma_{R.rating>=8} R)))``
    """
    return SPJASpec(
        aliases={"M": "Movies", "R": "Ratings", "L": "Locations"},
        joins=[
            JoinPair("M.name", "R.name", "name"),
            JoinPair("M.id", "L.movieId", "movieId"),
        ],
        selections=[
            attr_cmp("M.year", ">", 2009),
            attr_cmp("R.rating", ">=", 8),
        ],
        projection=("name", "L.locationId"),
    )


IMDB_QUERIES = {"Q5": query_q5}
