"""The 19 evaluation use cases of the paper's Table 4.

Each use case pairs a query of Table 3 with a Why-Not predicate.  The
registry also records, per use case, the *qualitative expectation*
distilled from the paper's Sec. 4.2 discussion (who answers, with which
operator kinds) -- these are asserted by the integration tests and
printed next to the measured answers by the Table 5 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

from ..errors import ConfigurationError
from ..relational.database import Database
from ..core.canonical import CanonicalQuery, QuerySpec, canonicalize
from .crime import CRIME_QUERIES, build_crime_db
from .gov import GOV_QUERIES, build_gov_db
from .imdb import IMDB_QUERIES, build_imdb_db

#: database name -> builder
DATABASES: dict[str, Callable[..., Database]] = {
    "crime": build_crime_db,
    "imdb": build_imdb_db,
    "gov": build_gov_db,
}

#: query name -> (database name, spec builder)
QUERIES: dict[str, tuple[str, Callable[[], QuerySpec]]] = {}
for _name, _builder in CRIME_QUERIES.items():
    QUERIES[_name] = ("crime", _builder)
for _name, _builder in IMDB_QUERIES.items():
    QUERIES[_name] = ("imdb", _builder)
for _name, _builder in GOV_QUERIES.items():
    QUERIES[_name] = ("gov", _builder)


@dataclass(frozen=True)
class UseCase:
    """One evaluation scenario: a query plus a Why-Not predicate."""

    name: str
    query: str
    predicate: str
    #: qualitative expectations from Sec. 4.2 (asserted by tests)
    expect: dict = field(default_factory=dict)

    @property
    def database(self) -> str:
        return QUERIES[self.query][0]


USE_CASES: tuple[UseCase, ...] = (
    UseCase(
        "Crime1",
        "Q1",
        "(Person.name: Hank, Crime.type: 'Car theft')",
        expect={
            # Hank has a sighting but no car theft near his witness:
            # both traces die at the crime join.
            "ned_condensed_ops": {"join"},
            "ned_min_detailed": 2,
        },
    ),
    UseCase(
        "Crime2",
        "Q1",
        "(Person.name: Roger, Crime.type: 'Car theft')",
        expect={
            # Roger was never sighted: blocked at the very first join;
            # the car thefts die at the crime join.
            "ned_condensed_ops": {"join"},
            "ned_condensed_size": 2,
        },
    ),
    UseCase(
        "Crime3",
        "Q2",
        "(Person.name: Roger, Crime.type: 'Car theft')",
        expect={
            # the sector > 99 selection is empty: crimes die there,
            # Roger still dies at the sighting join
            "ned_condensed_ops": {"join", "sigma"},
        },
    ),
    UseCase(
        "Crime4",
        "Q2",
        "(Person.name: Hank, Crime.type: 'Car theft')",
        expect={"ned_condensed_ops": {"join", "sigma"}},
    ),
    UseCase(
        "Crime5",
        "Q2",
        "(Person.name: Hank)",
        expect={
            # THE empty-intermediate-result case: NedExplain blames the
            # join and reports the empty selection as secondary; the
            # baseline blames the selection.
            "ned_condensed_ops": {"join"},
            "ned_secondary_ops": {"sigma"},
            "whynot_ops": {"sigma"},
        },
    ),
    UseCase(
        "Crime6",
        "Q3",
        "(C2.type: Kidnapping)",
        expect={
            # self-join: the baseline falsely blames the C1 selection;
            # NedExplain blames the crime-crime join
            "ned_condensed_ops": {"join"},
            "whynot_ops": {"sigma"},
        },
    ),
    UseCase(
        "Crime7",
        "Q3",
        "(W.name: Susan, C2.type: Kidnapping)",
        expect={
            # blame splits across the two joins for NedExplain; the
            # baseline still reports only the (wrong) C1 selection
            "ned_condensed_ops": {"join"},
            "ned_condensed_size": 2,
            "whynot_ops": {"sigma"},
        },
    ),
    UseCase(
        "Crime8",
        "Q4",
        "(P2.name: Audrey)",
        expect={
            # the baseline believes Audrey is not missing (a P1-side
            # item reaches the result) and returns nothing
            "whynot_empty": True,
            "ned_nonempty": True,
        },
    ),
    UseCase(
        "Crime9",
        "Q8",
        "((Person.name: Betsy, ct: $x), $x > 8)",
        expect={
            # aggregation: (null, sigma) -- the count satisfies ct > 8
            # before the sector selection, not after
            "whynot_na": True,
            "ned_null_entry": True,
            "ned_null_op": "sigma",
        },
    ),
    UseCase(
        "Crime10",
        "Q8",
        "(Person.name: Roger)",
        expect={
            # Roger's trace dies below the breakpoint: a concrete
            # (tid, join) pair deep in the tree
            "whynot_na": True,
            "ned_condensed_ops": {"join"},
            "ned_tid_entries": True,
        },
    ),
    UseCase(
        "Imdb1",
        "Q5",
        "(name: Avatar)",
        expect={
            # Avatar (2009) dies at the year selection; its rating
            # tuple dies at the name join
            "ned_condensed_ops": {"join", "sigma"},
        },
    ),
    UseCase(
        "Imdb2",
        "Q5",
        "(name: 'Christmas Story', L.locationId: USANewYork)",
        expect={
            # renamed attribute + scattered values: the baseline finds
            # survivors for both constraints and returns nothing;
            # NedExplain blames the location join, and only it
            "whynot_empty": True,
            "ned_condensed_ops": {"join"},
            "ned_condensed_size": 1,
        },
    ),
    UseCase(
        "Gov1",
        "Q6",
        "(Co.firstname: Christopher)",
        expect={
            # three Christophers die at the byear selection, MURPHY at
            # the party join
            "ned_condensed_ops": {"join", "sigma"},
            "ned_min_detailed": 4,
        },
    ),
    UseCase(
        "Gov2",
        "Q6",
        "(Co.firstname: Christopher, Co.lastname: MURPHY)",
        expect={"ned_condensed_ops": {"join"}, "ned_condensed_size": 1},
    ),
    UseCase(
        "Gov3",
        "Q6",
        "(Co.firstname: Christopher, Co.lastname: GIBSON)",
        expect={"ned_condensed_ops": {"sigma"}, "ned_condensed_size": 1},
    ),
    UseCase(
        "Gov4",
        "Q7",
        "(sponsorId: 467)",
        expect={
            # a renamed join attribute: stages die at the substage
            # selection, the sponsor at the join above
            "ned_condensed_ops": {"join", "sigma"},
            "ned_min_detailed": 4,
        },
    ),
    UseCase(
        "Gov5",
        "Q7",
        "((SPO.sponsorln: Lugar, E.camount: $x), $x >= 1000)",
        expect={
            # everything concentrates on the sponsor join
            "ned_condensed_ops": {"join"},
            "ned_condensed_size": 1,
        },
    ),
    UseCase(
        "Gov6",
        "Q9",
        "((SPO.sponsorln: Bennett, am: $x), $x = 10870)",
        expect={
            # sum drops from 18700 to 10000 at the substage selection
            "whynot_na": True,
            "ned_null_entry": True,
            "ned_null_op": "sigma",
        },
    ),
    UseCase(
        "Gov7",
        "Q12",
        "(name: JOHN)",
        expect={
            # union: one answer set per branch -- a blocked congressman
            # on the left, no compatible sponsor on the right
            "ned_answer_sets": 2,
            "ned_no_compatible_branch": True,
        },
    ),
)

USE_CASE_INDEX: dict[str, UseCase] = {uc.name: uc for uc in USE_CASES}


# ---------------------------------------------------------------------------
# Cached builders (databases and canonical queries are reused across
# use cases, mirroring the experimental setup)
# ---------------------------------------------------------------------------
@lru_cache(maxsize=None)
def get_database(name: str, scale: int = 1) -> Database:
    """Build (and cache) one of the three evaluation databases."""
    return DATABASES[name](scale=scale)


@lru_cache(maxsize=None)
def get_canonical(query: str, scale: int = 1) -> CanonicalQuery:
    """Canonicalize (and cache) one of the queries of Table 3."""
    db_name, builder = QUERIES[query]
    database = get_database(db_name, scale)
    return canonicalize(builder(), database.schema)


def use_case_setup(
    name: str, scale: int = 1
) -> tuple[UseCase, Database, CanonicalQuery]:
    """Everything needed to run one use case.

    Raises :class:`~repro.errors.ConfigurationError` for a name outside
    Table 4 -- benchmark runners get a message naming the catalog
    instead of a bare :class:`KeyError`.
    """
    try:
        use_case = USE_CASE_INDEX[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown use case {name!r}; known use cases: "
            f"{', '.join(USE_CASE_INDEX)}"
        ) from None
    database = get_database(use_case.database, scale)
    canonical = get_canonical(use_case.query, scale)
    return use_case, database, canonical
