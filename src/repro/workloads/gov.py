"""The gov database and queries Q6/Q7/Q9-Q12 (Sec. 4.1 of the paper).

The paper collected real data on US congressmen, earmarks, and sponsors
(bioguide.congress.gov, usaspending.gov, earmarks.omb.gov); gov is its
largest database (up to 9341 rows).  We rebuild it synthetically with
the same relations and join structure:

* ``Congress``/``AgencyAffiliation`` -- congressmen and their party /
  state affiliation (Q6, Q10);
* ``Earmarks``/``EarmarkStages``/``Sponsors`` -- earmarked spending,
  its legislative stages, and the sponsoring senators (Q7, Q9, Q11).

Story rows drive the Gov1-Gov7 use cases: four Christophers failing
either the birth-year selection or the party join (Gov1-3), sponsor 467
whose earmarks never reach the Senate Committee stage (Gov4), Lugar
whose earmarks are all small (Gov5), Bennett whose earmark total drops
below the asked amount after the substage filter (Gov6), and
congressman JOHN, a Texas Democrat missing from the NY union (Gov7).
"""

from __future__ import annotations

import random

from ..relational.aggregates import AggregateCall
from ..relational.conditions import attr_cmp
from ..relational.database import Database
from ..relational.renaming import Renaming
from ..core.canonical import JoinPair, SPJASpec, UnionSpec

_STATES = ("NY", "CA", "TX", "WA", "IL", "MA", "OH", "FL")
_PARTIES = ("Republican", "Democrat")
_SUBSTAGES = (
    "Senate Committee",
    "House Committee",
    "House Floor",
    "Conference",
)


def build_gov_db(scale: int = 1, seed: int = 7114) -> Database:
    """Build the gov database at the given scale factor."""
    rng = random.Random(seed)
    db = Database("gov")
    db.create_table(
        "Congress", ["id", "firstname", "lastname", "byear"], key="id"
    )
    db.create_table("AgencyAffiliation", ["id", "party", "state"], key="id")
    db.create_table("Earmarks", ["id", "camount"], key="id")
    db.create_table("EarmarkStages", ["id", "earmark", "substage", "sponsor"],
                    key="id")
    db.create_table(
        "Sponsors", ["id", "sponsorln", "party", "state"], key="id"
    )

    _insert_story_rows(db)
    _insert_background_rows(db, rng, scale)
    return db


def _insert_story_rows(db: Database) -> None:
    # --- congressmen (Gov1-Gov3, Gov7) ---------------------------------
    # Three Christophers fail byear > 1970; MURPHY passes it but is a
    # Democrat, so his affiliation dies at the party selection.
    db.insert("Congress", id=569, firstname="Christopher",
              lastname="GIBSON", byear=1950)
    db.insert("AgencyAffiliation", id=569, party="Republican", state="NY")
    db.insert("Congress", id=1495, firstname="Christopher",
              lastname="SMITH", byear=1960)
    db.insert("AgencyAffiliation", id=1495, party="Republican", state="NJ")
    db.insert("Congress", id=773, firstname="Christopher",
              lastname="JONES", byear=1965)
    db.insert("AgencyAffiliation", id=773, party="Republican", state="OH")
    db.insert("Congress", id=1072, firstname="Christopher",
              lastname="MURPHY", byear=1975)
    db.insert("AgencyAffiliation", id=1072, party="Democrat", state="CT")
    # Gov7: congressman JOHN -- a Democrat from Texas (not NY).
    db.insert("Congress", id=772, firstname="Albert",
              lastname="JOHN", byear=1962)
    db.insert("AgencyAffiliation", id=772, party="Democrat", state="TX")
    # Republicans born after 1970, so Q6 has a non-empty result.
    db.insert("Congress", id=901, firstname="Paul", lastname="RYAN",
              byear=1972)
    db.insert("AgencyAffiliation", id=901, party="Republican", state="WI")
    db.insert("Congress", id=902, firstname="Elise", lastname="STEFANIK",
              byear=1984)
    db.insert("AgencyAffiliation", id=902, party="Republican", state="NY")
    # NY Democrats, so Q10 (and the Gov7 union) has a result.
    db.insert("Congress", id=903, firstname="Jerry", lastname="NADLER",
              byear=1947)
    db.insert("AgencyAffiliation", id=903, party="Democrat", state="NY")

    # --- sponsors / earmarks (Gov4-Gov6) -------------------------------
    # Gov4: sponsor 467 is Republican, but none of his earmark stages
    # reaches the Senate Committee.
    db.insert("Sponsors", id=467, sponsorln="Thompson",
              party="Republican", state="TN")
    db.insert("Earmarks", id=15, camount=250)
    db.insert("EarmarkStages", id=80, earmark=15,
              substage="House Committee", sponsor=467)
    db.insert("EarmarkStages", id=78, earmark=15,
              substage="House Floor", sponsor=467)
    db.insert("Earmarks", id=16, camount=180)
    db.insert("EarmarkStages", id=79, earmark=16,
              substage="Conference", sponsor=467)

    # Gov5: Lugar's earmarks are small (< 1000) and none of his stages
    # is a Senate Committee stage.
    db.insert("Sponsors", id=199, sponsorln="Lugar",
              party="Republican", state="IN")
    db.insert("Earmarks", id=324, camount=500)
    db.insert("EarmarkStages", id=81, earmark=324,
              substage="House Floor", sponsor=199)
    db.insert("Earmarks", id=325, camount=750)
    db.insert("EarmarkStages", id=82, earmark=325,
              substage="Conference", sponsor=199)

    # Gov6: Bennett's earmarks sum to 10870 before the substage filter
    # (10000 Senate Committee + 870 House Floor), 10000 after it.
    db.insert("Sponsors", id=88, sponsorln="Bennett",
              party="Republican", state="UT")
    db.insert("Earmarks", id=501, camount=10000)
    db.insert("EarmarkStages", id=83, earmark=501,
              substage="Senate Committee", sponsor=88)
    db.insert("Earmarks", id=502, camount=870)
    db.insert("EarmarkStages", id=84, earmark=502,
              substage="House Floor", sponsor=88)

    # A healthy Republican sponsor whose large, Senate-Committee-staged
    # earmarks reach every result (the survivors of Gov5).
    db.insert("Sponsors", id=533, sponsorln="Cochran",
              party="Republican", state="MS")
    db.insert("Earmarks", id=533, camount=120000)
    db.insert("EarmarkStages", id=85, earmark=533,
              substage="Senate Committee", sponsor=533)
    # NY Democrat sponsors, so Q11 (and the Gov7 union) has a result.
    db.insert("Sponsors", id=640, sponsorln="Schumer",
              party="Democrat", state="NY")
    db.insert("Earmarks", id=640, camount=90000)
    db.insert("EarmarkStages", id=86, earmark=640,
              substage="Senate Committee", sponsor=640)


def _insert_background_rows(
    db: Database, rng: random.Random, scale: int
) -> None:
    """Filler that brings gov to the paper's row-count range."""
    sponsor_ids: list[int] = []
    for index in range(120 * scale):
        sponsor_id = 10_000 + index
        sponsor_ids.append(sponsor_id)
        db.insert(
            "Sponsors",
            id=sponsor_id,
            sponsorln=f"sponsor{index}",
            party=rng.choice(_PARTIES),
            state=rng.choice(_STATES),
        )
    stage_id = 10_000
    for index in range(900 * scale):
        earmark_id = 10_000 + index
        # most earmarks are small; roughly a quarter exceed 1000
        if rng.random() < 0.25:
            camount = 1000 + rng.randrange(50_000)
        else:
            camount = 10 + rng.randrange(990)
        db.insert("Earmarks", id=earmark_id, camount=camount)
        sponsor = rng.choice(sponsor_ids)
        for stage_index in range(rng.randrange(1, 3)):
            # Large earmarks always pass a Senate Committee stage, so
            # Gov5's blame concentrates on the sponsor join (the paper
            # reports a single picky subquery for it).
            if stage_index == 0 and camount >= 1000:
                substage = "Senate Committee"
            else:
                substage = rng.choice(_SUBSTAGES)
            db.insert(
                "EarmarkStages",
                id=stage_id,
                earmark=earmark_id,
                substage=substage,
                sponsor=sponsor,
            )
            stage_id += 1
    for index in range(250 * scale):
        congress_id = 10_000 + index
        db.insert(
            "Congress",
            id=congress_id,
            firstname=f"first{index % 40}",
            lastname=f"LAST{index}",
            byear=1940 + rng.randrange(55),
        )
        db.insert(
            "AgencyAffiliation",
            id=congress_id,
            party=rng.choice(_PARTIES),
            state=rng.choice(_STATES),
        )


# ---------------------------------------------------------------------------
# Queries (Table 3)
# ---------------------------------------------------------------------------
def query_q6() -> SPJASpec:
    """Q6: young Republicans --
    pi_{Co.firstname, Co.lastname}(sigma_party(AA) |><|_id
    sigma_byear(Co))."""
    return SPJASpec(
        aliases={"AA": "AgencyAffiliation", "Co": "Congress"},
        joins=[JoinPair("AA.id", "Co.id", "id")],
        selections=[
            attr_cmp("AA.party", "=", "Republican"),
            attr_cmp("Co.byear", ">", 1970),
        ],
        projection=("Co.firstname", "Co.lastname"),
    )


def query_q7() -> SPJASpec:
    """Q7: Republican-sponsored Senate Committee earmarks."""
    return SPJASpec(
        aliases={
            "E": "Earmarks",
            "ES": "EarmarkStages",
            "SPO": "Sponsors",
        },
        joins=[
            JoinPair("E.id", "ES.earmark", "earmarkId"),
            JoinPair("ES.sponsor", "SPO.id", "sponsorId"),
        ],
        selections=[
            attr_cmp("ES.substage", "=", "Senate Committee"),
            attr_cmp("SPO.party", "=", "Republican"),
        ],
        projection=("sponsorId", "SPO.sponsorln", "E.camount"),
    )


def query_q9() -> SPJASpec:
    """Q9: SPJA -- total Senate Committee earmark amount per
    Republican sponsor."""
    return SPJASpec(
        aliases={
            "E": "Earmarks",
            "ES": "EarmarkStages",
            "SPO": "Sponsors",
        },
        joins=[
            JoinPair("E.id", "ES.earmark", "earmarkId"),
            JoinPair("ES.sponsor", "SPO.id", "sponsorId"),
        ],
        selections=[
            attr_cmp("SPO.party", "=", "Republican"),
            attr_cmp("ES.substage", "=", "Senate Committee"),
        ],
        group_by=("SPO.sponsorln",),
        aggregates=(AggregateCall("sum", "E.camount", "am"),),
    )


def query_q10() -> SPJASpec:
    """Q10: last names of NY Democrat congressmen."""
    return SPJASpec(
        aliases={"Co": "Congress", "AA": "AgencyAffiliation"},
        joins=[JoinPair("Co.id", "AA.id", "id")],
        selections=[
            attr_cmp("AA.party", "=", "Democrat"),
            attr_cmp("AA.state", "=", "NY"),
        ],
        projection=("Co.lastname",),
    )


def query_q11() -> SPJASpec:
    """Q11: last names of NY Democrat sponsors."""
    return SPJASpec(
        aliases={"SPO": "Sponsors"},
        joins=[],
        selections=[
            attr_cmp("SPO.party", "=", "Democrat"),
            attr_cmp("SPO.state", "=", "NY"),
        ],
        projection=("SPO.sponsorln",),
    )


def query_q12() -> UnionSpec:
    """Q12 = Q10 union Q11 (renaming both last names to ``name``)."""
    return UnionSpec(
        left=query_q10(),
        right=query_q11(),
        renaming=Renaming.of(("Co.lastname", "SPO.sponsorln", "name")),
    )


GOV_QUERIES = {
    "Q6": query_q6,
    "Q7": query_q7,
    "Q9": query_q9,
    "Q10": query_q10,
    "Q11": query_q11,
    "Q12": query_q12,
}
