"""The crime database and queries Q1-Q4 / Q8 (Sec. 4.1 of the paper).

The paper uses the Trio sample crime database (crimes, witnesses,
sightings, persons).  We rebuild it synthetically: the schema follows
the joins of Table 3 and the data is shaped so each use case of Table 4
exercises the behaviour Sec. 4.2 describes --

* ``Hank``  has a matching sighting but no car theft happens in his
  witness's sector (Crime1/4/5);
* ``Roger`` was never sighted: his trace dies at the very first join
  (Crime2/3/10);
* kidnappings never share a sector with an ``Aiding`` crime (Crime6/7);
* ``Susan`` witnesses a sector without kidnappings (Crime7);
* ``Audrey`` shares her hair colour only with persons whose names fail
  the ``< 'B'`` filter (Crime8);
* ``Betsy`` is sighted near 13 crimes, only 7 of which lie in sectors
  ``> 80`` (Crime9, the aggregation condition ``ct > 8``).

Row counts scale linearly with *scale* (default ~90 rows, the paper's
smallest database).
"""

from __future__ import annotations

import random

from ..relational.aggregates import AggregateCall
from ..relational.conditions import attr_attr_cmp, attr_cmp
from ..relational.database import Database
from ..core.canonical import JoinPair, SPJASpec

HAIR_COLOURS = ("black", "brown", "red", "blond", "grey")
CLOTHES = ("jeans", "suit", "dress", "coat", "uniform")
CRIME_TYPES = ("Car theft", "Robbery", "Assault", "Fraud")


def build_crime_db(scale: int = 1, seed: int = 1404) -> Database:
    """Build the crime database at the given scale factor."""
    rng = random.Random(seed)
    db = Database("crime")
    db.create_table("Person", ["id", "name", "hair", "clothes"], key="id")
    db.create_table("Crime", ["id", "sector", "type"], key="id")
    db.create_table("Witness", ["id", "name", "sector"], key="id")
    db.create_table(
        "Saw", ["id", "witnessName", "hair", "clothes"], key="id"
    )

    _insert_story_rows(db)
    _insert_background_rows(db, rng, scale)
    return db


def _insert_story_rows(db: Database) -> None:
    """The hand-written rows every use case depends on."""
    # --- persons -------------------------------------------------------
    db.insert("Person", id=2, name="Hank", hair="blond", clothes="jeans")
    # Roger's look is unique: no sighting (and no background sighting)
    # ever matches him, so his trace dies at the very first join.
    db.insert("Person", id=604, name="Roger", hair="silver", clothes="cape")
    db.insert("Person", id=9, name="Betsy", hair="red", clothes="dress")
    db.insert("Person", id=51, name="Audrey", hair="auburn", clothes="suit")
    # Audrey's hair colour ("auburn") is shared only by C/D-named
    # persons, whose names fail the < 'B' filter of Q4.
    db.insert(
        "Person", id=52, name="Chiardola", hair="auburn", clothes="coat"
    )
    db.insert(
        "Person", id=53, name="Davemonet", hair="auburn", clothes="jeans"
    )
    db.insert("Person", id=54, name="Debye", hair="auburn", clothes="dress")
    # One person < 'B' with a *different* hair colour, so the baseline's
    # P1-side Audrey... item analysis has survivors through Q4.
    db.insert("Person", id=55, name="Abel", hair="black", clothes="suit")
    db.insert("Person", id=56, name="Carla", hair="black", clothes="dress")

    # --- witnesses -----------------------------------------------------
    db.insert("Witness", id=1, name="Walter", sector=5)
    db.insert("Witness", id=2, name="Susan", sector=7)
    db.insert("Witness", id=3, name="Wade", sector=60)
    db.insert("Witness", id=4, name="Wilma", sector=81)
    db.insert("Witness", id=5, name="Ward", sector=82)
    db.insert("Witness", id=6, name="Webb", sector=90)
    # Wolf witnesses sector 70 so the Aiding self-join reaches the
    # result for some witness (Crime6's picky join has live siblings).
    db.insert("Witness", id=7, name="Wolf", sector=70)

    # --- sightings -----------------------------------------------------
    # Hank was seen by Walter (sector 5): no car theft there.
    db.insert("Saw", id=1, witnessName="Walter", hair="blond", clothes="jeans")
    # Betsy was seen by Wade (60), Wilma (81), Ward (82), Webb (90).
    db.insert("Saw", id=2, witnessName="Wade", hair="red", clothes="dress")
    db.insert("Saw", id=3, witnessName="Wilma", hair="red", clothes="dress")
    db.insert("Saw", id=4, witnessName="Ward", hair="red", clothes="dress")
    db.insert("Saw", id=5, witnessName="Webb", hair="red", clothes="dress")
    # Roger was never sighted: no Saw row matches (silver, cape).

    # --- crimes --------------------------------------------------------
    # No crime at all in sector 5 (Hank's witness): Hank's trace always
    # dies at the crime join, for both algorithms.
    db.insert("Crime", id=2, sector=40, type="Car theft")
    db.insert("Crime", id=3, sector=41, type="Car theft")
    # Kidnappings live in sectors 60/61 where no 'Aiding' crime exists.
    db.insert("Crime", id=396, sector=60, type="Kidnapping")
    db.insert("Crime", id=85, sector=60, type="Kidnapping")
    db.insert("Crime", id=112, sector=61, type="Kidnapping")
    # Aiding crimes exist, in sectors 70/71; Susan's sector 7 hosts
    # neither a kidnapping nor an Aiding crime.
    db.insert("Crime", id=200, sector=70, type="Aiding")
    db.insert("Crime", id=201, sector=71, type="Aiding")
    # A second crime in sector 70 so the Aiding self-join has output.
    db.insert("Crime", id=202, sector=70, type="Robbery")
    db.insert("Crime", id=203, sector=71, type="Fraud")
    # Betsy's crime counts (Crime9, "ct > 8"): 8 crimes reach her group
    # via sector 60 (2 kidnappings above + 6 frauds below) and 7 via
    # sectors > 80 -- 15 before the sector > 80 selection, 7 after.
    for offset in range(6):
        db.insert("Crime", id=300 + offset, sector=60, type="Fraud")
    for offset in range(7):
        sector = 81 if offset < 3 else (82 if offset < 5 else 90)
        db.insert("Crime", id=320 + offset, sector=sector, type="Assault")


def _insert_background_rows(
    db: Database, rng: random.Random, scale: int
) -> None:
    """Filler rows that scale the database without touching the story.

    Background sectors stay within 20..39 -- below the ``> 99``
    threshold of Q2 (whose selection must stay empty, Sec. 4.2's
    "empty intermediate results") and disjoint from the story sectors.
    Background names are prefixed so they never collide.
    """
    for index in range(30 * scale):
        sector = 20 + rng.randrange(20)
        db.insert(
            "Crime",
            id=10_000 + index,
            sector=sector,
            type=rng.choice(CRIME_TYPES),
        )
    for index in range(15 * scale):
        db.insert(
            "Witness",
            id=1000 + index,
            name=f"w{index}",
            sector=20 + rng.randrange(20),
        )
    for index in range(20 * scale):
        db.insert(
            "Saw",
            id=1000 + index,
            witnessName=f"w{rng.randrange(15 * scale)}",
            hair=rng.choice(HAIR_COLOURS),
            clothes=rng.choice(CLOTHES),
        )
    for index in range(20 * scale):
        db.insert(
            "Person",
            id=1000 + index,
            name=f"p{index}",
            hair=rng.choice(HAIR_COLOURS),
            clothes=rng.choice(CLOTHES),
        )


# ---------------------------------------------------------------------------
# Queries (Table 3)
# ---------------------------------------------------------------------------
def _chain_joins() -> list[JoinPair]:
    """The C-W-S-P join chain, listed P-side first.

    Listing the person-side joins first yields the canonical trees of
    the paper's Fig. 4(a)/(e): the S |><| P join at the bottom (``m0``),
    the crime join on top.
    """
    return [
        JoinPair("Saw.hair", "Person.hair", "hair"),
        JoinPair("Saw.clothes", "Person.clothes", "clothes"),
        JoinPair("Witness.name", "Saw.witnessName", "witnessName"),
        JoinPair("Crime.sector", "Witness.sector", "sector"),
    ]


def query_q1() -> SPJASpec:
    """Q1: pi_{P.name, C.type} (C |><| W |><| S |><| P)."""
    return SPJASpec(
        aliases={
            "Saw": "Saw",
            "Person": "Person",
            "Witness": "Witness",
            "Crime": "Crime",
        },
        joins=_chain_joins(),
        projection=("Person.name", "Crime.type"),
    )


def query_q2() -> SPJASpec:
    """Q2: Q1 with the (empty-result) selection sector > 99 on Crime."""
    spec = query_q1()
    spec.selections = [attr_cmp("Crime.sector", ">", 99)]
    return spec


def query_q3() -> SPJASpec:
    """Q3: self-join of Crime -- witnesses of sectors with an Aiding
    crime (pi_{W.name, C2.type})."""
    return SPJASpec(
        aliases={"C2": "Crime", "C1": "Crime", "W": "Witness"},
        joins=[
            JoinPair("C2.sector", "C1.sector", "sector1"),
            JoinPair("W.sector", "C2.sector", "sector2"),
        ],
        selections=[attr_cmp("C1.type", "=", "Aiding")],
        projection=("W.name", "C2.type"),
    )


def query_q4() -> SPJASpec:
    """Q4: self-join of Person on hair (pi_{P2.name})."""
    return SPJASpec(
        aliases={"P2": "Person", "P1": "Person"},
        joins=[JoinPair("P2.hair", "P1.hair", "hair")],
        selections=[
            attr_cmp("P1.name", "<", "B"),
            attr_attr_cmp("P1.name", "!=", "P2.name"),
        ],
        projection=("P2.name",),
    )


def query_q8() -> SPJASpec:
    """Q8: SPJA -- crimes per person name in sectors > 80."""
    return SPJASpec(
        aliases={
            "Person": "Person",
            "Saw": "Saw",
            "Witness": "Witness",
            "Crime": "Crime",
        },
        joins=_chain_joins(),
        selections=[attr_cmp("Crime.sector", ">", 80)],
        group_by=("Person.name",),
        aggregates=(AggregateCall("count", "Crime.type", "ct"),),
    )


CRIME_QUERIES = {
    "Q1": query_q1,
    "Q2": query_q2,
    "Q3": query_q3,
    "Q4": query_q4,
    "Q8": query_q8,
}
