"""Pluggable storage backends: one durability story for everything.

Before this subsystem the repository had three ad-hoc persistence
paths -- the fsynced :class:`~repro.robustness.journal.BatchJournal`
WAL, the ``databases.json`` registration file, and the per-batch
manifest/result documents -- each with its own atomicity story.  A
:class:`StorageBackend` unifies them behind four primitives:

* **documents** -- whole JSON files written atomically (temp file +
  fsync + rename + *parent-directory fsync*: a rename is not durable
  until the directory entry is on disk, the bug every hand-rolled
  helper has);
* **journals** -- append-only fsynced WALs
  (:class:`~repro.robustness.journal.BatchJournal` routed through the
  backend's I/O shim), keeping the established torn-tail-discard /
  stop-at-first-corruption semantics;
* **snapshots** -- checksummed, generation-numbered copies of a
  document family (``databases.gen-3.snap.json``); a corrupt primary
  document is *repaired* from the newest valid generation instead of
  refusing to start;
* **recovery** -- a scan that runs before the service flips ready:
  stranded temp files and corrupt snapshots are moved into a
  ``quarantine/`` directory (never deleted -- they are evidence), and
  every decision is counted under ``storage.*`` metrics and wrapped
  in a ``storage.recover`` span.

Two implementations ship: :class:`LocalDirBackend` (a directory on the
real filesystem, laid out exactly like the pre-storage-subsystem
``--journal-dir`` so existing journal directories keep resuming) and
:class:`MemoryBackend` (the same logic over :class:`~repro.storage.
io.MemoryIO` -- no durability, same code path, instant tests).  The
layout compatibility is not an accident: ``databases.json``,
``<id>.request.json``, ``<id>.result.json`` and ``<id>.journal.jsonl``
keep their names, so a directory written before this subsystem existed
recovers byte-identically.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Any, Mapping

from ..errors import StorageError
from ..obs import MetricsRegistry, span
from ..obs.trace import metric_counter
from .io import LocalIO, MemoryIO, StorageIO

__all__ = [
    "LocalDirBackend",
    "MemoryBackend",
    "QUARANTINE_KEEP",
    "RecoveryReport",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_KEEP",
    "StorageBackend",
    "atomic_write_text",
    "atomic_write_json",
    "open_backend",
]

SNAPSHOT_FORMAT = "repro.storage.snapshot"
SNAPSHOT_VERSION = 1

#: Generations kept per snapshot family; older ones are pruned.
SNAPSHOT_KEEP = 3

#: Quarantined artifacts kept per backend; recovery evidence past this
#: is pruned oldest-first (counted by ``storage.quarantine.pruned``).
QUARANTINE_KEEP = 32

_SNAPSHOT_RE = re.compile(
    r"^(?P<family>[A-Za-z0-9_-]+)\.gen-(?P<gen>\d+)\.snap\.json$"
)

#: Suffix of in-flight atomic writes; recovery quarantines strays.
TMP_SUFFIX = ".tmp"


def atomic_write_text(
    path: Path, text: str, io: StorageIO | None = None
) -> None:
    """Write *text* to *path* atomically **and durably**.

    temp file -> write -> flush -> fsync -> rename -> fsync(parent
    directory).  The final directory fsync is the step the previous
    ad-hoc helpers skipped: without it a crash after ``os.replace``
    can still lose the rename, resurrecting the old file contents.
    """
    io = io if io is not None else LocalIO()
    path = Path(path)
    tmp = path.with_suffix(path.suffix + TMP_SUFFIX)
    handle = io.open(tmp, "w")
    try:
        io.write(handle, text)
        io.flush(handle)
        io.fsync(handle)
    finally:
        io.close(handle)
    io.replace(tmp, path)
    io.fsync_dir(path.parent)


def atomic_write_json(
    path: Path, document: Mapping[str, Any], io: StorageIO | None = None
) -> None:
    """Atomic + durable JSON document write (stable key order)."""
    atomic_write_text(
        path,
        json.dumps(document, indent=2, sort_keys=True, default=str)
        + "\n",
        io=io,
    )


def _snapshot_checksum(payload: Mapping[str, Any]) -> str:
    canonical = json.dumps(
        {k: v for k, v in payload.items() if k != "checksum"},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class RecoveryReport:
    """What one recovery pass found and did."""

    def __init__(self):
        self.scanned = 0
        self.quarantined: list[str] = []
        self.repaired: list[str] = []
        self.torn_discarded: list[str] = []

    def to_dict(self) -> dict:
        return {
            "scanned": self.scanned,
            "quarantined": list(self.quarantined),
            "repaired": list(self.repaired),
            "torn_discarded": list(self.torn_discarded),
        }

    def __repr__(self) -> str:
        return (
            f"RecoveryReport(scanned={self.scanned}, "
            f"quarantined={len(self.quarantined)}, "
            f"repaired={len(self.repaired)})"
        )


class StorageBackend:
    """One directory-shaped namespace of documents, journals, snapshots.

    All I/O flows through ``self.io`` (a :class:`~repro.storage.io.
    StorageIO`), which is what makes every backend -- local, in-memory,
    simulated -- fault-injectable and crash-enumerable with the same
    code.  Names are plain relative filenames (``databases.json``,
    ``abc123.result.json``); nesting is deliberately unsupported.
    """

    #: short backend kind, reported by ``describe()`` / ``/readyz``
    kind = "abstract"

    def __init__(
        self,
        root: Path,
        io: StorageIO,
        metrics: MetricsRegistry | None = None,
        quarantine_keep: int | None = QUARANTINE_KEEP,
    ):
        self.root = Path(root)
        self.io = io
        self.metrics = metrics
        #: retained quarantine entries (``None`` disables pruning)
        self.quarantine_keep = quarantine_keep
        #: quarantine names in the order this process created them;
        #: entries found on disk but not listed here (a previous run's)
        #: are treated as oldest
        self._quarantine_order: list[str] = []
        io.mkdir(self.root)

    # -- metrics -------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)
        metric_counter(name, n)

    # -- paths ---------------------------------------------------------
    def path_of(self, name: str) -> Path:
        if "/" in name or name.startswith("."):
            raise StorageError(
                f"storage names are flat relative filenames, got "
                f"{name!r}",
                path=name,
            )
        return self.root / name

    def _quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    # -- documents -----------------------------------------------------
    def read_document(self, name: str) -> dict | None:
        """The parsed document, ``None`` when absent.

        A file that exists but does not parse raises
        :class:`~repro.errors.StorageError` -- the caller decides
        between snapshot repair and refusing to start.
        """
        path = self.path_of(name)
        if not self.io.exists(path):
            return None
        text = self.io.read_text(path)
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            self._count("storage.documents.corrupt")
            raise StorageError(
                f"document {path} is corrupt: {exc}", path=str(path)
            ) from exc
        if not isinstance(document, dict):
            self._count("storage.documents.corrupt")
            raise StorageError(
                f"document {path} is not a JSON object",
                path=str(path),
            )
        self._count("storage.documents.read")
        return document

    def write_document(self, name: str, document: Mapping[str, Any]) -> None:
        atomic_write_json(self.path_of(name), document, io=self.io)
        self._count("storage.documents.written")

    def delete_document(self, name: str) -> None:
        self.io.unlink(self.path_of(name))

    def exists(self, name: str) -> bool:
        """Whether the named artifact is present in this backend."""
        return self.io.exists(self.path_of(name))

    def list_documents(self, suffix: str = ".json") -> list[str]:
        return sorted(
            name
            for name in self.io.listdir(self.root)
            if name.endswith(suffix)
            and not name.endswith(TMP_SUFFIX)
            and _SNAPSHOT_RE.match(name) is None
        )

    # -- journals ------------------------------------------------------
    def journal(self, name: str, resume: bool = False):
        """A :class:`~repro.robustness.journal.BatchJournal` at *name*,
        its appends routed through this backend's I/O shim."""
        from ..robustness.journal import BatchJournal

        return BatchJournal(
            self.path_of(name), resume=resume, io=self.io
        )

    # -- snapshots -----------------------------------------------------
    def _snapshot_name(self, family: str, generation: int) -> str:
        return f"{family}.gen-{generation}.snap.json"

    def snapshot_generations(self, family: str) -> list[int]:
        """Existing generation numbers of *family*, ascending."""
        generations = []
        for name in self.io.listdir(self.root):
            match = _SNAPSHOT_RE.match(name)
            if match and match.group("family") == family:
                generations.append(int(match.group("gen")))
        return sorted(generations)

    def write_snapshot(
        self, family: str, document: Mapping[str, Any]
    ) -> int:
        """Write the next checksummed generation of *family*; prune old
        generations past :data:`SNAPSHOT_KEEP`.  Returns the new
        generation number."""
        generations = self.snapshot_generations(family)
        generation = (generations[-1] + 1) if generations else 1
        payload: dict[str, Any] = {
            "format": SNAPSHOT_FORMAT,
            "v": SNAPSHOT_VERSION,
            "family": family,
            "generation": generation,
            "document": dict(document),
        }
        payload["checksum"] = _snapshot_checksum(payload)
        atomic_write_json(
            self.path_of(self._snapshot_name(family, generation)),
            payload,
            io=self.io,
        )
        self._count("storage.snapshots.written")
        for old in generations[: max(0, len(generations) + 1 - SNAPSHOT_KEEP)]:
            self.io.unlink(
                self.path_of(self._snapshot_name(family, old))
            )
            self._count("storage.snapshots.pruned")
        return generation

    def read_snapshot(
        self, family: str, quarantine_corrupt: bool = True
    ) -> tuple[dict, int] | None:
        """The newest *valid* generation of *family* as
        ``(document, generation)``; ``None`` when no generation
        verifies.  Corrupt generations are quarantined (evidence, not
        garbage) and never considered again."""
        for generation in reversed(self.snapshot_generations(family)):
            name = self._snapshot_name(family, generation)
            try:
                payload = json.loads(
                    self.io.read_text(self.path_of(name))
                )
                valid = (
                    isinstance(payload, dict)
                    and payload.get("format") == SNAPSHOT_FORMAT
                    and payload.get("family") == family
                    and payload.get("generation") == generation
                    and isinstance(payload.get("document"), dict)
                    and payload.get("checksum")
                    == _snapshot_checksum(payload)
                )
            except (json.JSONDecodeError, StorageError):
                valid = False
            if valid:
                self._count("storage.snapshots.read")
                return dict(payload["document"]), generation
            self._count("storage.snapshots.corrupt")
            if quarantine_corrupt:
                self.quarantine(name)
        return None

    # -- quarantine + recovery -----------------------------------------
    def quarantine(self, name: str) -> str | None:
        """Move *name* into ``quarantine/``; the quarantined name.

        A corrupt durability artifact is evidence of a disk or crash
        problem, so it is retained rather than deleted -- up to
        ``quarantine_keep`` entries, after which the *oldest* evidence
        is pruned (counted by ``storage.quarantine.pruned``) so a
        crash-looping deployment cannot fill the disk with it.
        Returns ``None`` when the file vanished or cannot be moved (in
        which case it is unlinked as a last resort so recovery still
        converges).
        """
        source = self.path_of(name)
        if not self.io.exists(source):
            return None
        qdir = self._quarantine_dir()
        self.io.mkdir(qdir)
        target = qdir / name
        suffix = 0
        while self.io.exists(target):
            suffix += 1
            target = qdir / f"{name}.{suffix}"
        try:
            self.io.replace(source, target)
        except StorageError:
            self.io.unlink(source)
            self._count("storage.recovery.quarantine_failed")
            return None
        self._count("storage.recovery.quarantined")
        self._quarantine_order.append(target.name)
        self._prune_quarantine()
        return target.name

    def _prune_quarantine(self) -> None:
        """Drop the oldest quarantined evidence past ``quarantine_keep``.

        Entries this process quarantined age in creation order; ones
        inherited from an earlier run (present on disk, not in the
        in-memory order) are considered older still, by sorted name.
        """
        if self.quarantine_keep is None:
            return
        qdir = self._quarantine_dir()
        if not self.io.exists(qdir):
            return
        present = self.io.listdir(qdir)
        excess = len(present) - self.quarantine_keep
        if excess <= 0:
            return
        known = [n for n in self._quarantine_order if n in set(present)]
        inherited = sorted(set(present) - set(known))
        for victim in (inherited + known)[:excess]:
            self.io.unlink(qdir / victim)
            self._count("storage.quarantine.pruned")
        self._quarantine_order = [
            n for n in self._quarantine_order
            if n not in set((inherited + known)[:excess])
        ]

    def recover(self) -> RecoveryReport:
        """The pre-ready recovery scan.

        * stray ``*.tmp`` files (a crash between temp-write and
          rename) are quarantined -- they are uncommitted by
          definition and must never be resurrected;
        * every snapshot generation is verified; corrupt ones are
          quarantined, and a family whose primary document is corrupt
          or missing-but-snapshotted is repaired from its newest valid
          generation.
        """
        report = RecoveryReport()
        with span("storage.recover", category="storage"):
            names = list(self.io.listdir(self.root))
            families: set[str] = set()
            for name in names:
                if name == "quarantine":
                    continue
                report.scanned += 1
                if name.endswith(TMP_SUFFIX):
                    quarantined = self.quarantine(name)
                    if quarantined is not None:
                        report.quarantined.append(name)
                    continue
                match = _SNAPSHOT_RE.match(name)
                if match:
                    families.add(match.group("family"))
            for family in sorted(families):
                self._repair_family(family, report)
            self._count("storage.recovery.runs")
        return report

    def _repair_family(
        self, family: str, report: RecoveryReport
    ) -> None:
        """Verify snapshots of *family*; repair its primary document
        (``<family>.json``) from the newest valid generation when the
        primary is corrupt or missing."""
        primary = f"{family}.json"
        try:
            document = self.read_document(primary)
            needs_repair = document is None
        except StorageError:
            needs_repair = True
            quarantined = self.quarantine(primary)
            if quarantined is not None:
                report.quarantined.append(primary)
        before = set(self.io.listdir(self._quarantine_dir())) if (
            self.io.exists(self._quarantine_dir())
        ) else set()
        snapshot = self.read_snapshot(family)
        after = set(self.io.listdir(self._quarantine_dir())) if (
            self.io.exists(self._quarantine_dir())
        ) else set()
        report.quarantined.extend(sorted(after - before))
        if needs_repair and snapshot is not None:
            restored, generation = snapshot
            self.write_document(primary, restored)
            self._count("storage.recovery.repaired")
            report.repaired.append(
                f"{primary} <- gen-{generation}"
            )

    # -- introspection -------------------------------------------------
    def describe(self) -> dict:
        return {"kind": self.kind, "root": str(self.root)}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self.root)!r})"


class LocalDirBackend(StorageBackend):
    """A directory on the real filesystem (the durable backend).

    The layout is byte-compatible with the pre-storage ``--journal-dir``
    contents; opening an old directory and recovering it produces the
    same results the old code produced, plus snapshot/quarantine
    hygiene the old code lacked.
    """

    kind = "local"

    def __init__(
        self,
        root: Path,
        metrics: MetricsRegistry | None = None,
        io: StorageIO | None = None,
        quarantine_keep: int | None = QUARANTINE_KEEP,
    ):
        super().__init__(
            root,
            io if io is not None else LocalIO(),
            metrics,
            quarantine_keep=quarantine_keep,
        )


class MemoryBackend(StorageBackend):
    """The same backend logic over an in-memory filesystem.

    Nothing survives the process -- which is exactly the point: the
    service's ``--storage memory`` runs the full journaling/recovery
    code path (idempotent request replay, batch result retrieval)
    without touching disk, and tests get a backend that cannot leak
    tempdirs.
    """

    kind = "memory"

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        quarantine_keep: int | None = QUARANTINE_KEEP,
    ):
        super().__init__(
            Path("/memory"),
            MemoryIO(),
            metrics,
            quarantine_keep=quarantine_keep,
        )


def open_backend(
    kind: str,
    root: Path | None = None,
    metrics: MetricsRegistry | None = None,
    replicas: int = 1,
    write_quorum: int | None = None,
    read_quorum: int | None = None,
) -> StorageBackend:
    """Construct the backend selected by ``--storage``.

    ``local`` needs *root* (the journal directory); ``memory`` ignores
    it.  ``replicas > 1`` wraps the chosen kind in a
    :class:`~repro.storage.replicated.ReplicatedBackend`: N child
    backends (``<root>/replica-<i>/`` directories, or N private
    in-memory file tables) behind one quorum coordinator.  Unknown
    kinds raise :class:`~repro.errors.StorageError` so a typo'd
    ``--storage`` fails at startup, not at first write.
    """
    if replicas > 1:
        from .replicated import build_replicated_backend

        return build_replicated_backend(
            kind,
            root=root,
            metrics=metrics,
            replicas=replicas,
            write_quorum=write_quorum,
            read_quorum=read_quorum,
        )
    if kind == "memory":
        return MemoryBackend(metrics=metrics)
    if kind == "local":
        if root is None:
            raise StorageError(
                "the local storage backend needs a root directory "
                "(--journal-dir)"
            )
        return LocalDirBackend(root, metrics=metrics)
    raise StorageError(
        f"unknown storage backend {kind!r}; choose local or memory"
    )
