"""The fault-injectable I/O shim under every storage backend.

Every byte the storage subsystem persists -- journal records, request
manifests, result documents, registration snapshots -- flows through a
:class:`StorageIO`, never through bare ``open``/``os.replace``.  That
single chokepoint buys two things:

* **deterministic disk faults.**  :class:`LocalIO` routes each
  primitive through the :func:`~repro.robustness.faults.fault_point`
  sites of :data:`~repro.robustness.faults.IO_FAULT_SITES`, so a
  seeded :class:`~repro.robustness.faults.FaultPlan` can make the disk
  misbehave exactly once, at exactly the chosen call -- the same
  adversarial treatment the engine sites have had since the first
  chaos suite.  The shim *imitates* the failure rather than merely
  raising: ``io.write_short`` and ``io.enospc`` land a partial write
  before failing (what a real short write / full disk leaves behind),
  ``io.torn_rename`` strands the temp file, ``io.eio`` fails reads and
  directory listings, and ``io.fsync_lost`` silently skips the fsync
  -- a lying disk whose damage only a later crash reveals;

* **a simulatable disk.**  :class:`MemoryIO` implements the same
  interface over an in-memory file table, which is what the
  in-memory backend runs on and what the crash-state enumeration
  harness (:mod:`repro.storage.crashsim`) extends with an operation
  log and ALICE-style durability modelling.

The interface is deliberately narrow -- open/write/flush/fsync/close,
whole-file reads, replace + directory fsync, listdir/mkdir/unlink --
because those are the only primitives a write-ahead log and an
atomic-rename document store need.
"""

from __future__ import annotations

import errno as _errno
import io as _stdio
import os
import threading
from pathlib import Path

from ..errors import InjectedFaultError, StorageError
from ..robustness.faults import fault_point

__all__ = [
    "LocalIO",
    "MemoryIO",
    "StorageIO",
    "fsync_lost",
    "read_fault",
    "rename_fault",
    "write_fault",
]


def _fires(site: str) -> bool:
    """True when the active fault plan fires at *site*.

    The engine sites let :func:`fault_point` raise straight through;
    the I/O shim instead turns a firing into the *behaviour* of the
    named disk fault, so the injected exception is consumed here and
    replaced by what a disk would actually have done.
    """
    try:
        fault_point(site)
    except InjectedFaultError:
        return True
    return False


def write_fault(text: str, path) -> tuple[str, StorageError | None]:
    """What an injected write fault lands on disk before failing.

    Returns ``(prefix_that_lands, error)``; error is ``None`` on the
    healthy path.  Shared by the real and the simulated shim so both
    disks misbehave identically for the same seed.
    """
    if _fires("io.write_short"):
        return text[: max(1, len(text) // 2)], StorageError(
            f"short write to {path} (injected EIO after partial "
            "write)",
            path=str(path),
            errno=_errno.EIO,
        )
    if _fires("io.enospc"):
        return text[: max(1, len(text) // 3)], StorageError(
            f"no space left on device writing {path} "
            "(injected ENOSPC)",
            path=str(path),
            errno=_errno.ENOSPC,
        )
    return text, None


def read_fault(path) -> StorageError | None:
    """The injected unreadable-file fault (``io.eio``), if armed."""
    if _fires("io.eio"):
        return StorageError(
            f"I/O error reading {path} (injected EIO)",
            path=str(path),
            errno=_errno.EIO,
        )
    return None


def rename_fault(src, dst) -> StorageError | None:
    """The injected torn-rename fault: the rename never happens and
    the temp file is stranded for recovery to quarantine."""
    if _fires("io.torn_rename"):
        return StorageError(
            f"rename {src} -> {dst} failed (injected EIO); "
            "temp file left behind",
            path=str(dst),
            errno=_errno.EIO,
        )
    return None


def fsync_lost() -> bool:
    """True when the lying-disk fault (``io.fsync_lost``) is armed:
    the fsync must silently "succeed" while persisting nothing."""
    return _fires("io.fsync_lost")


class StorageIO:
    """The primitive surface a storage backend writes through.

    Handles returned by :meth:`open` are opaque; all mutation goes
    through the shim (``io.write(handle, text)``) so a fault plan --
    or the crash simulator's op log -- sees every byte.
    """

    # -- handles -------------------------------------------------------
    def open(self, path: Path, mode: str):
        raise NotImplementedError

    def write(self, handle, text: str) -> None:
        raise NotImplementedError

    def flush(self, handle) -> None:
        raise NotImplementedError

    def fsync(self, handle) -> None:
        raise NotImplementedError

    def close(self, handle) -> None:
        raise NotImplementedError

    def closed(self, handle) -> bool:
        raise NotImplementedError

    # -- whole files ---------------------------------------------------
    def read_text(self, path: Path) -> str:
        raise NotImplementedError

    def exists(self, path: Path) -> bool:
        raise NotImplementedError

    def is_dir(self, path: Path) -> bool:
        raise NotImplementedError

    def listdir(self, path: Path) -> list[str]:
        raise NotImplementedError

    def mkdir(self, path: Path) -> None:
        raise NotImplementedError

    def unlink(self, path: Path) -> None:
        raise NotImplementedError

    def replace(self, src: Path, dst: Path) -> None:
        raise NotImplementedError

    def fsync_dir(self, path: Path) -> None:
        raise NotImplementedError

    # -- conveniences shared by the implementations --------------------
    def write_text(self, path: Path, text: str, durable: bool = True):
        """Plain (non-atomic) whole-file write; ``durable`` fsyncs."""
        handle = self.open(path, "w")
        try:
            self.write(handle, text)
            self.flush(handle)
            if durable:
                self.fsync(handle)
        finally:
            self.close(handle)


class LocalIO(StorageIO):
    """The real filesystem, with the disk-fault sites armed.

    ``open_hook`` (used by :class:`~repro.robustness.journal.
    BatchJournal`'s root-safe permission tests) replaces the builtin
    ``open`` for handle creation; everything else is plain ``os``.
    """

    def __init__(self, open_hook=None):
        self._open_hook = open_hook

    # -- handles -------------------------------------------------------
    def open(self, path: Path, mode: str):
        error = read_fault(path)
        if error is not None:
            raise error
        opener = self._open_hook or (
            lambda p, m: open(p, m, encoding="utf-8")
        )
        try:
            return opener(path, mode)
        except OSError as exc:
            raise StorageError(
                f"cannot open {path}: {exc}",
                path=str(path),
                errno=exc.errno,
            ) from exc

    def write(self, handle, text: str) -> None:
        landed, error = write_fault(
            text, getattr(handle, "name", "?")
        )
        try:
            # on an injected fault only the prefix lands -- and the
            # torn bytes STAY on disk, which is exactly what
            # torn-tail discard must survive
            handle.write(landed)
            if error is not None:
                handle.flush()
        except OSError as exc:
            raise StorageError(
                f"write to {getattr(handle, 'name', '?')} failed: "
                f"{exc}",
                path=str(getattr(handle, "name", "?")),
                errno=exc.errno,
            ) from exc
        if error is not None:
            raise error

    def flush(self, handle) -> None:
        handle.flush()

    def fsync(self, handle) -> None:
        if fsync_lost():
            # the lying disk: fsync "succeeds" but persists nothing.
            # Invisible on a healthy run; the crash-state harness is
            # what proves recovery survives it.
            return
        os.fsync(handle.fileno())

    def close(self, handle) -> None:
        handle.close()

    def closed(self, handle) -> bool:
        return handle.closed

    # -- whole files ---------------------------------------------------
    def read_text(self, path: Path) -> str:
        error = read_fault(path)
        if error is not None:
            raise error
        try:
            return Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise StorageError(
                f"cannot read {path}: {exc}",
                path=str(path),
                errno=exc.errno,
            ) from exc

    def exists(self, path: Path) -> bool:
        return Path(path).exists()

    def is_dir(self, path: Path) -> bool:
        return Path(path).is_dir()

    def listdir(self, path: Path) -> list[str]:
        error = read_fault(path)
        if error is not None:
            raise error
        try:
            return sorted(os.listdir(path))
        except OSError as exc:
            raise StorageError(
                f"cannot list {path}: {exc}",
                path=str(path),
                errno=exc.errno,
            ) from exc

    def mkdir(self, path: Path) -> None:
        try:
            Path(path).mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StorageError(
                f"cannot create directory {path}: {exc}",
                path=str(path),
                errno=exc.errno,
            ) from exc

    def unlink(self, path: Path) -> None:
        try:
            Path(path).unlink()
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise StorageError(
                f"cannot remove {path}: {exc}",
                path=str(path),
                errno=exc.errno,
            ) from exc

    def replace(self, src: Path, dst: Path) -> None:
        # an injected torn rename never happens: the temp file is
        # stranded next to the (old) destination, exactly what a crash
        # between write and rename leaves for recovery to quarantine
        error = rename_fault(src, dst)
        if error is not None:
            raise error
        try:
            os.replace(src, dst)
        except OSError as exc:
            raise StorageError(
                f"cannot rename {src} -> {dst}: {exc}",
                path=str(dst),
                errno=exc.errno,
            ) from exc

    def fsync_dir(self, path: Path) -> None:
        """fsync the *directory*: a rename is not durable until the
        directory entry itself is on disk (the missing half of most
        hand-rolled atomic-write helpers)."""
        if fsync_lost():
            return
        try:
            fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
        except OSError:
            return  # platforms without directory fds: best effort
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


class _MemoryHandle:
    """One open file of a :class:`MemoryIO`."""

    __slots__ = (
        "path",
        "mode",
        "buffer",
        "closed",
        "name",
        "logged_len",  # used by the crash simulator's op log
    )

    def __init__(self, path: str, mode: str):
        self.path = path
        self.name = path
        self.mode = mode
        self.buffer = _stdio.StringIO()
        self.closed = False
        self.logged_len = 0


class MemoryIO(StorageIO):
    """An in-memory filesystem speaking the same primitive surface.

    Files live in one dict; directories are implicit (any prefix of a
    stored path "exists").  Thread-safe under one lock -- worker
    threads of a parallel batch append through one shim.  Subclasses
    (the crash simulator) override the mutation points to record an
    operation log and model durability.
    """

    def __init__(self):
        self.files: dict[str, str] = {}
        self.dirs: set[str] = {"/"}
        self._lock = threading.RLock()

    # -- path helpers --------------------------------------------------
    @staticmethod
    def _key(path: Path) -> str:
        return str(Path(path))

    def _parent_exists(self, key: str) -> bool:
        parent = str(Path(key).parent)
        with self._lock:
            if parent in self.dirs:
                return True
            return any(
                str(Path(existing).parent) == parent
                for existing in self.files
            )

    # -- handles -------------------------------------------------------
    def open(self, path: Path, mode: str):
        key = self._key(path)
        if mode not in ("r", "w", "a"):
            raise StorageError(
                f"MemoryIO supports r/w/a, got {mode!r}", path=key
            )
        with self._lock:
            if mode == "r":
                if key not in self.files:
                    raise StorageError(
                        f"cannot open {key}: no such file",
                        path=key,
                        errno=_errno.ENOENT,
                    )
            elif not self._parent_exists(key):
                raise StorageError(
                    f"cannot open {key}: parent directory missing",
                    path=key,
                    errno=_errno.ENOENT,
                )
            handle = _MemoryHandle(key, mode)
            if mode == "a" and key in self.files:
                handle.buffer.write(self.files[key])
            elif mode == "r":
                handle.buffer.write(self.files[key])
                handle.buffer.seek(0)
            if mode == "w":
                self.files[key] = ""
            return handle

    def write(self, handle: _MemoryHandle, text: str) -> None:
        if handle.closed or handle.mode == "r":
            raise StorageError(
                f"handle for {handle.path} is not writable",
                path=handle.path,
            )
        handle.buffer.write(text)

    def flush(self, handle: _MemoryHandle) -> None:
        # flush reaches the "page cache": the file table sees the
        # bytes (subsequent reads observe them) but only fsync makes
        # them durable in the crash simulator's model
        with self._lock:
            self.files[handle.path] = handle.buffer.getvalue()

    def fsync(self, handle: _MemoryHandle) -> None:
        self.flush(handle)

    def close(self, handle: _MemoryHandle) -> None:
        if not handle.closed and handle.mode in ("w", "a"):
            self.flush(handle)
        handle.closed = True

    def closed(self, handle: _MemoryHandle) -> bool:
        return handle.closed

    # -- whole files ---------------------------------------------------
    def read_text(self, path: Path) -> str:
        key = self._key(path)
        with self._lock:
            if key not in self.files:
                raise StorageError(
                    f"cannot read {key}: no such file",
                    path=key,
                    errno=_errno.ENOENT,
                )
            return self.files[key]

    def exists(self, path: Path) -> bool:
        key = self._key(path)
        with self._lock:
            if key in self.files or key in self.dirs:
                return True
            return any(f.startswith(key + os.sep) for f in self.files)

    def is_dir(self, path: Path) -> bool:
        key = self._key(path)
        with self._lock:
            if key in self.dirs:
                return True
            return any(f.startswith(key + os.sep) for f in self.files)

    def listdir(self, path: Path) -> list[str]:
        key = self._key(path)
        with self._lock:
            names = {
                str(Path(f).name)
                for f in self.files
                if str(Path(f).parent) == key
            }
            names |= {
                str(Path(d).name)
                for d in self.dirs
                if str(Path(d).parent) == key and d != key
            }
        return sorted(names)

    def mkdir(self, path: Path) -> None:
        with self._lock:
            self.dirs.add(self._key(path))

    def unlink(self, path: Path) -> None:
        with self._lock:
            self.files.pop(self._key(path), None)

    def replace(self, src: Path, dst: Path) -> None:
        skey, dkey = self._key(src), self._key(dst)
        with self._lock:
            if skey not in self.files:
                raise StorageError(
                    f"cannot rename {skey}: no such file",
                    path=skey,
                    errno=_errno.ENOENT,
                )
            self.files[dkey] = self.files.pop(skey)

    def fsync_dir(self, path: Path) -> None:
        pass

    # -- introspection -------------------------------------------------
    def snapshot_files(self) -> dict[str, str]:
        """A frozen copy of the file table (tests and the simulator)."""
        with self._lock:
            return dict(self.files)
