"""Crash-state enumeration: the proof layer of the storage subsystem.

In the spirit of ALICE and CrashMonkey: instead of trusting that the
write-ahead protocol is crash-consistent, *enumerate what a crash can
leave behind and run recovery on every one of those states*.

The pieces:

* :class:`SimIO` -- a :class:`~repro.storage.io.MemoryIO` that records
  every logical I/O operation (truncate, append, fsync, rename,
  directory fsync, unlink) into an :class:`OpLog`, and imitates the
  same injected disk faults as the real shim (a lying ``fsync``
  records *no* fsync op, so its data stays volatile in the model --
  which is the truth);

* :class:`CrashSim` -- replays a prefix of the op log into a
  two-layer filesystem model (inode data vs. directory namespace,
  each with its own durable/volatile split) and enumerates the
  **legal post-crash states**: for volatile inode data every in-order
  prefix of the pending appends, a torn cut inside the last append,
  and an out-of-order block loss (a later append persisted while an
  earlier one reads back as zeros -- disks really do this); for
  volatile namespace operations (creates, renames, unlinks not yet
  covered by a directory fsync) every subset taken in log order;

* :func:`enumerate_crash_states` -- ``(prefix, files)`` for every op
  prefix of a recorded workload, where ``files`` maps path -> content
  exactly as a post-crash mount would show them;

* :func:`materialize` -- loads one crash state into a fresh
  :class:`~repro.storage.io.MemoryIO` so recovery code (journal load,
  backend recover, batch resume) runs against it unmodified.

The acceptance harness in ``tests/test_crashsim.py`` records a
journaled ``workers=4`` batch, then for every crash prefix and every
legal state: loads the surviving journal, checks that no committed
record is lost and no uncommitted record is resurrected, resumes the
batch, and asserts the resumed outcomes are byte-identical to the
clean run -- across 25+ fault seeds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

from .io import (
    MemoryIO,
    fsync_lost,
    read_fault,
    rename_fault,
    write_fault,
)

__all__ = [
    "CrashSim",
    "MAX_STATES_PER_PREFIX",
    "Op",
    "OpLog",
    "SimIO",
    "enumerate_crash_states",
    "journal_commit_horizon",
    "materialize",
]

#: Cap on enumerated states per crash prefix: per-file content choices
#: and namespace subsets multiply, and a pathological workload must not
#: turn the harness into a combinatorial bomb.  64 is far above what
#: the journaling protocol produces (it fsyncs after every append,
#: keeping the volatile set tiny).
MAX_STATES_PER_PREFIX = 64


@dataclass(frozen=True)
class Op:
    """One logical I/O operation, in program order."""

    kind: str  # truncate | append | fsync | rename | fsync_dir | unlink
    path: str
    data: str = ""
    dst: str = ""

    def __repr__(self) -> str:
        extra = f", {len(self.data)}B" if self.kind == "append" else ""
        dst = f" -> {self.dst}" if self.kind == "rename" else ""
        return f"Op({self.kind} {self.path}{dst}{extra})"


class OpLog:
    """The recorded operation sequence of one workload."""

    def __init__(self):
        self.ops: list[Op] = []

    def record(self, op: Op) -> None:
        self.ops.append(op)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __getitem__(self, index):
        return self.ops[index]


class SimIO(MemoryIO):
    """An op-logging, fault-imitating in-memory disk.

    The cache layer (what reads observe) is the inherited
    :class:`MemoryIO` file table; durability is *not* modelled here --
    it is derived later by :class:`CrashSim` from the op log, which is
    the whole point: one recorded run yields every crash state.
    """

    def __init__(self):
        super().__init__()
        self.log = OpLog()

    # -- handles -------------------------------------------------------
    def open(self, path: Path, mode: str):
        if mode == "r":
            error = read_fault(path)
            if error is not None:
                raise error
        handle = super().open(path, mode)
        if mode == "w":
            with self._lock:
                self.log.record(Op("truncate", handle.path))
        # bytes below this mark are already in the log
        handle.logged_len = len(handle.buffer.getvalue())
        return handle

    def write(self, handle, text: str) -> None:
        landed, error = write_fault(text, handle.path)
        super().write(handle, landed)
        if error is not None:
            self.flush(handle)
            raise error

    def flush(self, handle) -> None:
        with self._lock:
            content = handle.buffer.getvalue()
            logged = getattr(handle, "logged_len", 0)
            if len(content) > logged:
                self.log.record(
                    Op("append", handle.path, data=content[logged:])
                )
                handle.logged_len = len(content)
            self.files[handle.path] = content

    def fsync(self, handle) -> None:
        self.flush(handle)
        if fsync_lost():
            return  # the lying disk: no fsync ever reaches the log
        with self._lock:
            self.log.record(Op("fsync", handle.path))

    def read_text(self, path: Path) -> str:
        error = read_fault(path)
        if error is not None:
            raise error
        return super().read_text(path)

    def listdir(self, path: Path) -> list[str]:
        error = read_fault(path)
        if error is not None:
            raise error
        return super().listdir(path)

    def replace(self, src: Path, dst: Path) -> None:
        error = rename_fault(src, dst)
        if error is not None:
            raise error
        with self._lock:
            super().replace(src, dst)
            self.log.record(
                Op("rename", self._key(src), dst=self._key(dst))
            )

    def unlink(self, path: Path) -> None:
        key = self._key(path)
        with self._lock:
            existed = key in self.files
            super().unlink(path)
            if existed:
                self.log.record(Op("unlink", key))

    def fsync_dir(self, path: Path) -> None:
        if fsync_lost():
            return
        with self._lock:
            self.log.record(Op("fsync_dir", self._key(path)))


# ---------------------------------------------------------------------------
# The filesystem model: inode data layer + directory namespace layer
# ---------------------------------------------------------------------------
@dataclass
class _Inode:
    """Data-layer state of one inode."""

    durable: str | None = None  # content at last fsync (None: never)
    existed_durably: bool = False
    volatile: list[Op] = field(default_factory=list)  # since last fsync

    def cache_content(self) -> str:
        content = self.durable if self.existed_durably else ""
        for op in self.volatile:
            if op.kind == "truncate":
                content = ""
            else:
                content = (content or "") + op.data
        return content or ""


@dataclass(frozen=True)
class _NsOp:
    """One volatile namespace operation (awaiting its dir fsync)."""

    kind: str  # creat | rename | unlink
    path: str
    dst: str = ""
    inode: int = -1

    @property
    def directories(self) -> tuple[str, ...]:
        dirs = {str(Path(self.path).parent)}
        if self.kind == "rename":
            dirs.add(str(Path(self.dst).parent))
        return tuple(dirs)


class CrashSim:
    """Replays an op-log prefix and enumerates legal crash states."""

    def __init__(self, log: OpLog):
        self.log = log

    # -- model construction --------------------------------------------
    def _replay(self, prefix: int):
        """Apply ``log[:prefix]``.

        Returns ``(inodes, names, durable_names, volatile_ns)``:
        ``inodes`` keyed by inode id; ``names`` the cache namespace
        (path -> inode id, what the live process saw); ``durable_names``
        the namespace entries already on disk; ``volatile_ns`` the
        namespace operations not yet covered by a directory fsync, in
        log order.
        """
        inodes: dict[int, _Inode] = {}
        names: dict[str, int] = {}
        durable_names: dict[str, int] = {}
        volatile_ns: list[_NsOp] = []
        next_id = itertools.count()

        def creat(path: str) -> int:
            ino = next(next_id)
            inodes[ino] = _Inode()
            names[path] = ino
            volatile_ns.append(_NsOp("creat", path, inode=ino))
            return ino

        for op in self.log[:prefix]:
            if op.kind == "truncate":
                ino = names.get(op.path)
                if ino is None:
                    ino = creat(op.path)
                # truncate-in-place on an existing inode, or the
                # initial (empty) state of a fresh one -- either way
                # the zero length is itself volatile
                inodes[ino].volatile.append(op)
            elif op.kind == "append":
                ino = names.get(op.path)
                if ino is None:  # open("a") on a missing file creates
                    ino = creat(op.path)
                inodes[ino].volatile.append(op)
            elif op.kind == "fsync":
                ino = names.get(op.path)
                if ino is None:
                    continue
                node = inodes[ino]
                node.durable = node.cache_content()
                node.existed_durably = True
                node.volatile = []
                # fsync of a brand-new file also persists its
                # directory entry on mainstream journaling filesystems
                # (ext4/xfs/btrfs log the creat with the data); ALICE
                # treats this as safe and so do we
                durable_names[op.path] = ino
                volatile_ns = [
                    ns
                    for ns in volatile_ns
                    if not (ns.kind == "creat" and ns.path == op.path)
                ]
            elif op.kind == "rename":
                ino = names.pop(op.path)
                names[op.dst] = ino
                volatile_ns.append(
                    _NsOp("rename", op.path, dst=op.dst, inode=ino)
                )
            elif op.kind == "unlink":
                names.pop(op.path, None)
                volatile_ns.append(_NsOp("unlink", op.path))
            elif op.kind == "fsync_dir":
                # persists the *current* entries of that directory:
                # live entries become durable, durable-but-removed
                # entries disappear, and its pending ns ops retire
                for path, ino in names.items():
                    if str(Path(path).parent) == op.path:
                        durable_names[path] = ino
                for path in [
                    p
                    for p in durable_names
                    if str(Path(p).parent) == op.path and p not in names
                ]:
                    del durable_names[path]
                volatile_ns = [
                    ns
                    for ns in volatile_ns
                    if op.path not in ns.directories
                ]
        return inodes, names, durable_names, volatile_ns

    # -- content choices -----------------------------------------------
    @staticmethod
    def _content_choices(node: _Inode) -> list[str | None]:
        """The legal on-disk contents of one inode after a crash.

        ``None`` means no data ever persisted for an inode that never
        existed durably -- a directory entry pointing at it exposes no
        file.
        """
        base = node.durable if node.existed_durably else None
        if not node.volatile:
            return [base]
        choices: list[str | None] = [base]
        # in-order prefixes of the volatile ops
        content = base or ""
        applied: list[str] = []
        for op in node.volatile:
            if op.kind == "truncate":
                content = ""
            else:
                content += op.data
            applied.append(content)
        choices.extend(applied)
        # a torn cut inside the final volatile append
        last = node.volatile[-1]
        if last.kind == "append" and len(last.data) > 1:
            before = applied[-2] if len(applied) >= 2 else (base or "")
            choices.append(before + last.data[: len(last.data) // 2])
        # out-of-order block loss: a later append persisted while an
        # earlier one reads back as zeros (lost data blocks under a
        # persisted size) -- the state torn-tail discard plus
        # stop-at-first-corruption must survive
        appends = [op for op in node.volatile if op.kind == "append"]
        if len(appends) >= 2:
            zeroed = (base or "") + "\x00" * len(appends[0].data)
            for op in appends[1:]:
                zeroed += op.data
            choices.append(zeroed)
        # dedupe, preserving order
        seen: set[str | None] = set()
        unique: list[str | None] = []
        for choice in choices:
            if choice not in seen:
                seen.add(choice)
                unique.append(choice)
        return unique

    # -- state assembly ------------------------------------------------
    def states_at(self, prefix: int) -> Iterator[dict[str, str]]:
        """Every legal post-crash file table after ``log[:prefix]``.

        Yields dicts mapping path -> content; paths without an entry
        do not exist in that state.
        """
        inodes, _names, durable_names, volatile_ns = self._replay(
            prefix
        )

        # namespace choices: each volatile ns op either reached disk
        # or did not, applied in log order
        ns_count = len(volatile_ns)
        if 2**ns_count > MAX_STATES_PER_PREFIX:
            # too many to exhaust: every in-order prefix (the states
            # an ordered metadata journal can produce), nothing, all
            ns_subsets: list[tuple[bool, ...]] = [
                tuple(i < k for i in range(ns_count))
                for k in range(ns_count + 1)
            ]
        else:
            ns_subsets = list(
                itertools.product((False, True), repeat=ns_count)
            )

        # content choices for every inode, computed once
        content_options = {
            ino: self._content_choices(node)
            for ino, node in inodes.items()
        }

        emitted = 0
        seen_states: set[tuple] = set()
        for ns_applied in ns_subsets:
            # resolve the namespace: durable entries plus applied ops
            resolved: dict[str, int] = dict(durable_names)
            for ns, applied in zip(volatile_ns, ns_applied):
                if not applied:
                    continue
                if ns.kind == "creat":
                    resolved[ns.path] = ns.inode
                elif ns.kind == "rename":
                    resolved.pop(ns.path, None)
                    resolved[ns.dst] = ns.inode
                elif ns.kind == "unlink":
                    resolved.pop(ns.path, None)
            # the content product ranges only over inodes this
            # namespace can reach: unreferenced inodes would multiply
            # the product with indistinguishable states
            used = sorted(set(resolved.values()))
            for contents in itertools.product(
                *(content_options[ino] for ino in used)
            ):
                content_of = dict(zip(used, contents))
                files: dict[str, str] = {}
                for name in sorted(resolved):
                    content = content_of[resolved[name]]
                    if content is None:
                        continue  # inode with no persisted data
                    files[name] = content
                key = tuple(sorted(files.items()))
                if key in seen_states:
                    continue
                seen_states.add(key)
                yield dict(files)
                emitted += 1
                if emitted >= MAX_STATES_PER_PREFIX:
                    return


def enumerate_crash_states(
    log: OpLog,
) -> Iterator[tuple[int, dict[str, str]]]:
    """``(prefix, files)`` for every crash point of a recorded run.

    Prefix 0 is the state before any operation; prefix ``len(log)``
    is a crash immediately after the final operation (which, for a
    workload ending in fsyncs, includes the fully-durable state).
    """
    sim = CrashSim(log)
    for prefix in range(len(log) + 1):
        for files in sim.states_at(prefix):
            yield prefix, files


def materialize(
    files: Mapping[str, str], root: Path | None = None
) -> MemoryIO:
    """Load one crash state into a fresh :class:`MemoryIO`.

    Recovery code (journal load, backend recover, batch resume) then
    runs against it exactly as it would against a real post-crash
    directory.  *root* is pre-created so parent-directory checks pass
    even for states where no file survived.
    """
    io = MemoryIO()
    if root is not None:
        io.mkdir(Path(root))
    for path, content in files.items():
        io.mkdir(Path(path).parent)
        io.files[str(Path(path))] = content
    return io


def journal_commit_horizon(
    log: OpLog, journal_path: str, prefix: int
) -> int:
    """How many journal bytes are *committed* at crash prefix *prefix*.

    A byte is committed once an ``fsync`` of the journal file after
    its append has executed before the crash.  Because appends to one
    file persist no later than the file's next fsync, every legal
    crash state preserves exactly these bytes (and may preserve more,
    possibly torn).
    """
    appended = 0
    committed = 0
    for op in log[:prefix]:
        if op.path != journal_path:
            continue
        if op.kind == "truncate":
            appended = 0
            committed = 0
        elif op.kind == "append":
            appended += len(op.data)
        elif op.kind == "fsync":
            committed = appended
    return committed
