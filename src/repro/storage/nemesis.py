"""Jepsen-style nemesis + consistency checker for replicated storage.

:func:`run_nemesis` drives the acceptance proof of the replication
layer, one seed at a time:

1. stand up a 3-replica (by default) :class:`~repro.storage.
   replicated.ReplicatedBackend` whose children run on the crashsim's
   recording :class:`~repro.storage.crashsim.SimIO`, so every byte
   each replica applies is observable;
2. run a journaled ``workers=4`` why-not batch (the same chain
   workload the crash-state harness uses) while a seeded **nemesis**
   injects partitions and replica kills on an operation-count schedule
   and a seeded :class:`~repro.robustness.faults.FaultPlan` drops,
   delays, and duplicates individual deliveries through the
   :data:`~repro.robustness.faults.NET_FAULT_SITES`;
3. record the coordinator's ground truth -- which journal appends and
   document writes reached write quorum and were acknowledged, and
   which failed;
4. heal every link, run a full anti-entropy pass, and **check**, from
   the per-replica files and op logs:

   * no quorum-acknowledged journal record or document is lost -- every
     acked artifact is present, byte-for-byte, on *every* replica;
   * no un-acknowledged write survives repair -- a partial append the
     caller saw fail never resurrects into the namespace;
   * the replicas converge **byte-identical** (quarantined evidence,
     which is deliberately replica-local, excluded);
   * a quorum resume replays every acknowledged outcome verbatim;
   * a second anti-entropy pass is a no-op (repair is idempotent).

Every decision is deterministic from the seed (the batch runs under a
:class:`~repro.obs.clock.ManualClock`, so even the simulated network
delays cost no wall time), which is what lets CI run ≥25 seeds and a
red seed reproduce locally with plain pytest.

CLI::

    python -m repro.storage.nemesis --seeds 25 --workers 4 \
        --artifact-dir nemesis-artifacts

writes per-replica journals and op logs for every failing seed and
exits nonzero if any seed violates an invariant.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import QuorumError, StorageError
from ..obs.clock import ManualClock, use_clock
from ..robustness.breaker import CircuitBreakerBoard
from ..robustness.faults import FaultPlan, FaultSpec, inject
from .backend import StorageBackend
from .crashsim import SimIO
from .remote import RemoteIO, ReplicaTransport
from .replicated import ReplicatedBackend, _parse_envelope

__all__ = [
    "Nemesis",
    "NemesisEvent",
    "NemesisResult",
    "nemesis_schedule",
    "run_nemesis",
]

#: The journaled batch the nemesis fires at: the chain workload the
#: crash-state harness established, with enough questions to keep a
#: 4-worker pool busy.
QUESTIONS = [
    "(R0.label: needle)",
    "(R0.label: r0v1)",
    "(R1.label: r1v2)",
    "(R1.label: ghost)",
    "(R2.label: r2v3)",
]

JOURNAL_NAME = "batch.journal.jsonl"
REQUEST_DOC = "batch.request.json"
RESULT_DOC = "batch.result.json"


@dataclass(frozen=True)
class NemesisEvent:
    """One scheduled attack: at the *at_op*-th transport delivery
    (cluster-wide), apply *action* to *replica* for *duration* further
    deliveries, then heal/restart it."""

    at_op: int
    action: str  # "partition" | "kill"
    replica: str
    duration: int

    def to_dict(self) -> dict:
        return {
            "at_op": self.at_op,
            "action": self.action,
            "replica": self.replica,
            "duration": self.duration,
        }


def nemesis_schedule(
    seed: int, replica_ids: list[str], events: int = 3
) -> list[NemesisEvent]:
    """The seeded attack schedule: sticky windows, one replica at a
    time.

    Windows never overlap, so at most one replica is partitioned or
    dead at any moment and a W=2/N=3 quorum stays satisfiable -- the
    batch is expected to *complete* while degraded, which is the
    property under test.  (Quorum-losing schedules are exercised
    separately: the transient drop faults can still co-fire inside a
    window and fail an individual append.)
    """
    rng = random.Random(f"nemesis:{seed}")
    schedule: list[NemesisEvent] = []
    cursor = rng.randrange(5, 40)
    for _ in range(events):
        duration = rng.randrange(30, 150)
        schedule.append(
            NemesisEvent(
                at_op=cursor,
                action=rng.choice(("partition", "kill")),
                replica=rng.choice(replica_ids),
                duration=duration,
            )
        )
        cursor += duration + rng.randrange(10, 80)
    return schedule


def transient_plan(seed: int) -> FaultPlan:
    """Seeded one-shot network faults (drops, delays, duplicates)
    layered on top of the sticky nemesis windows."""
    rng = random.Random(f"nemesis-net:{seed}")
    specs = []
    for site in ("net.drop", "net.delay", "net.dup"):
        for _ in range(rng.randrange(1, 3)):
            specs.append(
                FaultSpec(
                    site, at_call=rng.randrange(400), kind="error"
                )
            )
    return FaultPlan(specs, seed=seed)


class Nemesis:
    """Applies the schedule as the cluster's operation count advances.

    Installed as the transports' ``observer``: every delivery (to any
    replica) ticks the global op clock, activates due events, and
    heals expired ones.  Thread-safe -- the workers of a parallel
    batch deliver concurrently.
    """

    def __init__(
        self,
        schedule: list[NemesisEvent],
        transports: dict[str, ReplicaTransport] | None = None,
    ):
        self.transports = dict(transports or {})
        self._pending = sorted(schedule, key=lambda e: e.at_op)
        self._active: list[tuple[int, NemesisEvent]] = []
        self.applied: list[NemesisEvent] = []
        self.ops = 0
        self._lock = threading.Lock()

    def observe(self, _replica_id: str) -> None:
        with self._lock:
            self.ops += 1
            now = self.ops
            for end, event in list(self._active):
                if now >= end:
                    self._heal(event)
                    self._active.remove((end, event))
            while self._pending and self._pending[0].at_op <= now:
                event = self._pending.pop(0)
                transport = self.transports.get(event.replica)
                if transport is None:
                    continue
                if event.action == "partition":
                    transport.partition()
                else:
                    transport.kill()
                self.applied.append(event)
                self._active.append((now + event.duration, event))

    def _heal(self, event: NemesisEvent) -> None:
        transport = self.transports.get(event.replica)
        if transport is None:
            return
        if event.action == "partition":
            transport.heal()
        else:
            transport.restart()

    def heal_all(self) -> None:
        with self._lock:
            self._active.clear()
            self._pending.clear()
            for transport in self.transports.values():
                transport.heal()
                transport.restart()


@dataclass
class NemesisResult:
    """Everything one seed produced, checked and explainable."""

    seed: int
    events: list[NemesisEvent]
    violations: list[str]
    acked_indexes: list[int]
    unacked_indexes: list[int]
    batch_error: str | None
    repair: dict
    repair_second: dict
    #: replica id -> final journal file text (artifact on failure)
    journals: dict[str, str] = field(default_factory=dict)
    #: replica id -> transport delivery log (op, status)
    op_logs: dict[str, list[tuple[str, str]]] = field(
        default_factory=dict
    )

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "events": [e.to_dict() for e in self.events],
            "violations": list(self.violations),
            "acked_indexes": list(self.acked_indexes),
            "unacked_indexes": list(self.unacked_indexes),
            "batch_error": self.batch_error,
            "repair": self.repair,
            "repair_second": self.repair_second,
        }


def _build_cluster(
    replicas: int,
    write_quorum: int,
    read_quorum: int,
    observer,
) -> tuple[ReplicatedBackend, list[SimIO]]:
    children: list[StorageBackend] = []
    transports: list[ReplicaTransport] = []
    sims: list[SimIO] = []
    for index in range(replicas):
        transport = ReplicaTransport(str(index), observer=observer)
        sim = SimIO()
        child = StorageBackend(
            Path(f"/replica-{index}"), RemoteIO(sim, transport)
        )
        child.kind = "sim"
        children.append(child)
        transports.append(transport)
        sims.append(sim)
    backend = ReplicatedBackend(
        children,
        transports,
        write_quorum=write_quorum,
        read_quorum=read_quorum,
        root=Path("/nemesis"),
        # zero cooldown: an opened breaker immediately half-opens, so a
        # healed replica is probed (and rejoins) on the next delivery
        breakers=CircuitBreakerBoard(min_calls=2, cooldown_s=0.0),
    )
    return backend, sims


def _replica_files(sim: SimIO, index: int) -> dict[str, str]:
    """The replica's live file table, root prefix stripped and
    quarantined evidence (deliberately replica-local) excluded."""
    prefix = f"/replica-{index}"
    out = {}
    for path, text in sim.snapshot_files().items():
        if not path.startswith(prefix):
            continue
        rel = path[len(prefix):]
        if rel.startswith("/quarantine/"):
            continue
        out[rel] = text
    return out


def run_nemesis(
    seed: int,
    replicas: int = 3,
    write_quorum: int = 2,
    read_quorum: int = 2,
    workers: int = 4,
    events: int = 3,
) -> NemesisResult:
    """One seeded nemesis run: attack, heal, repair, verify."""
    from ..core import NedExplain, canonicalize
    from ..relational import EvaluationCache
    from ..workloads.generator import chain_database, chain_query

    database = chain_database(3, rows_per_relation=12)
    canonical = canonicalize(chain_query(3), database.schema)

    replica_ids = [str(i) for i in range(replicas)]
    schedule = nemesis_schedule(seed, replica_ids, events=events)
    nemesis = Nemesis(schedule)
    backend, sims = _build_cluster(
        replicas, write_quorum, read_quorum, nemesis.observe
    )
    nemesis.transports = {
        t.replica_id: t for t in backend.transports
    }

    batch_error: str | None = None
    engine = NedExplain(
        canonical, database=database, cache=EvaluationCache()
    )
    journal = backend.journal(JOURNAL_NAME)
    with use_clock(ManualClock()):
        with inject(transient_plan(seed)):
            try:
                backend.write_document(
                    REQUEST_DOC,
                    {"questions": QUESTIONS, "seed": seed},
                )
            except (QuorumError, StorageError) as exc:
                batch_error = f"request write: {exc}"
            try:
                outcomes = engine.explain_each(
                    QUESTIONS, journal=journal, workers=workers
                )
                backend.write_document(
                    RESULT_DOC,
                    {
                        "seed": seed,
                        "levels": [
                            o.degradation_level for o in outcomes
                        ],
                    },
                )
                backend.write_snapshot(
                    "batch", {"seed": seed, "questions": len(QUESTIONS)}
                )
            except Exception as exc:  # quorum loss aborts the batch
                batch_error = f"{type(exc).__name__}: {exc}"

    acked_records = {
        index: journal.loaded_records()[index]
        for index in journal.acked_indexes
    }
    unacked = {
        index: copies
        for index, copies in journal.ack_copies.items()
        if index not in journal.acked_indexes
    }
    acked_documents = dict(backend.acked_documents)
    journal.close()

    nemesis.heal_all()
    # pre-repair copy counts decide the fate of un-acked records: an
    # append the caller saw fail is *indeterminate* -- if it still
    # reached W durable copies it is committed and must converge
    # everywhere; below W it must be rolled back everywhere
    journal_rel = f"/{JOURNAL_NAME}"
    pre_copies: dict[int, int] = {}
    for index_, sim in enumerate(sims):
        table = _replica_files(sim, index_)
        for rec_index in ReplicatedBackend._parse_journal_text(
            table.get(journal_rel, "")
        ):
            pre_copies[rec_index] = pre_copies.get(rec_index, 0) + 1

    # heal through the real entrypoint: per-replica recovery first
    # (stranded *.tmp files from dropped renames are quarantined),
    # then the full anti-entropy reconciliation
    recovery = backend.recover()
    repair = recovery.anti_entropy
    violations: list[str] = []
    if repair is None or not repair.full:
        violations.append(
            "anti-entropy after heal_all was not a full pass"
        )
        repair = repair or backend.anti_entropy()

    # -- invariants over the per-replica files -------------------------
    tables = [
        _replica_files(sim, index) for index, sim in enumerate(sims)
    ]
    parsed = [
        ReplicatedBackend._parse_journal_text(
            table.get(journal_rel, "")
        )
        for table in tables
    ]
    for index, record in sorted(acked_records.items()):
        for rid, records in enumerate(parsed):
            held = records.get(index)
            if held is None:
                violations.append(
                    f"acked record {index} missing from replica "
                    f"{rid} after repair"
                )
            elif held[1]["checksum"] != record["checksum"]:
                violations.append(
                    f"acked record {index} diverged on replica {rid}"
                )
    for index in sorted(unacked):
        survivors = [
            rid
            for rid, records in enumerate(parsed)
            if index in records
        ]
        if pre_copies.get(index, 0) >= write_quorum:
            # indeterminate append that did commit: must be everywhere
            if len(survivors) != replicas:
                violations.append(
                    f"indeterminate record {index} reached quorum "
                    f"but is only on replicas {survivors} after "
                    "repair"
                )
        elif survivors:
            violations.append(
                f"un-acked sub-quorum record {index} survives on "
                f"replicas {survivors} after repair"
            )
    for rid, records in enumerate(parsed):
        for index in records:
            if index not in acked_records and index not in unacked:
                violations.append(
                    f"record {index} on replica {rid} was never "
                    "written by this run"
                )
    for name, seq in sorted(acked_documents.items()):
        for rid, table in enumerate(tables):
            raw = table.get(f"/{name}")
            envelope = None
            if raw is not None:
                try:
                    envelope = _parse_envelope(
                        json.loads(raw), name
                    )
                except json.JSONDecodeError:
                    envelope = None
            if envelope is None:
                violations.append(
                    f"acked document {name} missing/corrupt on "
                    f"replica {rid} after repair"
                )
            elif envelope[0] < seq:
                # a higher sequence is legal (an indeterminate later
                # write that still reached W durable copies commits);
                # anything below the acked sequence is a lost write
                violations.append(
                    f"acked document {name} regressed to seq "
                    f"{envelope[0]} on replica {rid} (acked seq "
                    f"{seq})"
                )
    first = tables[0]
    for rid, table in enumerate(tables[1:], start=1):
        if table != first:
            only_first = sorted(set(first) - set(table))
            only_other = sorted(set(table) - set(first))
            diff = sorted(
                k
                for k in set(first) & set(table)
                if first[k] != table[k]
            )
            violations.append(
                f"replica {rid} not byte-identical to replica 0 "
                f"after repair (only-0={only_first}, "
                f"only-{rid}={only_other}, differ={diff})"
            )

    # -- the resumed batch replays every acked outcome verbatim --------
    try:
        resumed = backend.journal(JOURNAL_NAME, resume=True)
        for index, record in sorted(acked_records.items()):
            replayed = resumed.completed(
                index, record["question"]
            )
            if replayed != record["outcome"]:
                violations.append(
                    f"resume replays a different outcome at index "
                    f"{index}"
                )
        resumed.close()
    except Exception as exc:
        violations.append(f"resume failed after repair: {exc}")

    repair_second = backend.anti_entropy()
    if repair_second.changes:
        violations.append(
            f"anti-entropy is not idempotent: second pass made "
            f"{repair_second.changes} changes"
        )

    return NemesisResult(
        seed=seed,
        events=schedule,
        violations=violations,
        acked_indexes=sorted(acked_records),
        unacked_indexes=sorted(unacked),
        batch_error=batch_error,
        repair=repair.to_dict(),
        repair_second=repair_second.to_dict(),
        journals={
            str(i): table.get(journal_rel, "")
            for i, table in enumerate(tables)
        },
        op_logs={
            t.replica_id: list(t.ops) for t in backend.transports
        },
    )


def _write_artifacts(result: NemesisResult, directory: Path) -> None:
    target = directory / f"seed-{result.seed}"
    target.mkdir(parents=True, exist_ok=True)
    (target / "summary.json").write_text(
        json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    for rid, text in result.journals.items():
        (target / f"replica-{rid}.journal.jsonl").write_text(
            text, encoding="utf-8"
        )
    for rid, ops in result.op_logs.items():
        (target / f"replica-{rid}.oplog.jsonl").write_text(
            "".join(
                json.dumps({"op": op, "status": status}) + "\n"
                for op, status in ops
            ),
            encoding="utf-8",
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.storage.nemesis",
        description=(
            "Jepsen-style consistency check of the replicated "
            "storage backend across seeded network-fault schedules."
        ),
    )
    parser.add_argument("--seeds", type=int, default=25)
    parser.add_argument("--first-seed", type=int, default=0)
    parser.add_argument("--replicas", type=int, default=3)
    parser.add_argument("--write-quorum", type=int, default=2)
    parser.add_argument("--read-quorum", type=int, default=2)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--artifact-dir", type=Path, default=None)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    failures = 0
    summaries = []
    for seed in range(args.first_seed, args.first_seed + args.seeds):
        result = run_nemesis(
            seed,
            replicas=args.replicas,
            write_quorum=args.write_quorum,
            read_quorum=args.read_quorum,
            workers=args.workers,
        )
        summaries.append(result.to_dict())
        status = "ok" if result.ok else "FAIL"
        if not args.json:
            print(
                f"seed {seed}: {status} "
                f"(acked={len(result.acked_indexes)}"
                f"/{len(QUESTIONS)}, "
                f"events={len(result.events)}, "
                f"repairs={result.repair['documents_repaired']}"
                f"+{result.repair['journal_records_propagated']}j, "
                f"batch_error={result.batch_error or 'none'})"
            )
        if not result.ok:
            failures += 1
            for violation in result.violations:
                print(f"  violation: {violation}", file=sys.stderr)
            if args.artifact_dir is not None:
                _write_artifacts(result, args.artifact_dir)
    if args.json:
        print(
            json.dumps(
                {
                    "seeds": len(summaries),
                    "failures": failures,
                    "results": summaries,
                },
                indent=2,
                sort_keys=True,
            )
        )
    elif failures:
        print(f"{failures} of {len(summaries)} seeds FAILED")
    else:
        print(f"all {len(summaries)} seeds ok")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
