"""Quorum-replicated storage: N child backends behind one coordinator.

A :class:`ReplicatedBackend` fans every document write, journal
append, and snapshot out to N child backends, each reached through its
own :class:`~repro.storage.remote.RemoteIO` transport, and applies
classic leaderless-quorum rules (W + R > N):

* **writes** carry a coordinator sequence number inside a checksummed
  envelope and must be acknowledged by at least W replicas; fewer acks
  raise :class:`~repro.errors.QuorumError` and the write is *not*
  acknowledged to the caller (anti-entropy will roll the partial copies
  back);
* **reads** gather replies from every reachable replica and demand at
  least R of them; the highest-sequence valid envelope wins, and any
  read replica holding a stale, corrupt, or missing copy is
  **read-repaired** with the winner on the spot;
* **journals** (:class:`ReplicatedJournal`) append each record to
  every open replica journal through the same transports, require W
  fsynced acknowledgements per record, and on resume merge the valid
  records of at least R replicas -- a record fsynced on one replica
  but lost to a partition on another is still replayed;
* **anti-entropy** (:meth:`ReplicatedBackend.anti_entropy`) reconciles
  divergent replicas from their checksummed artifacts: documents and
  snapshot generations present on at least W replicas are propagated
  everywhere, partial (< W copies -- never acknowledged) writes are
  rolled back once every replica is reachable, and journal files are
  rewritten to a canonical byte-identical form.  The nemesis harness
  (:mod:`repro.storage.nemesis`) asserts exactly these invariants.

Failure of a single replica (partition, kill, slow link) therefore
degrades to quorum-satisfied operation instead of an error; the
service reports the degraded replica in ``/readyz`` via
:meth:`ReplicatedBackend.health` and keeps serving.  Each replica has
a circuit breaker (site ``replica.<id>``) so a dead replica stops
costing a failed delivery per operation once its breaker opens.
"""

from __future__ import annotations

import json
import hashlib
import threading
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from ..errors import (
    JournalError,
    QuorumError,
    ReplicaUnavailableError,
    StorageError,
)
from ..obs import MetricsRegistry, span
from ..robustness.breaker import CircuitBreakerBoard
from ..robustness.journal import (
    JOURNAL_VERSION,
    _checksum as _record_checksum,
    question_digest,
    verify_record,
)
from .backend import (
    RecoveryReport,
    SNAPSHOT_FORMAT,
    SNAPSHOT_KEEP,
    SNAPSHOT_VERSION,
    StorageBackend,
    _SNAPSHOT_RE,
    _snapshot_checksum,
    atomic_write_text,
)
from .io import LocalIO, MemoryIO, StorageIO
from .remote import RemoteIO, ReplicaTransport

__all__ = [
    "AntiEntropyReport",
    "DOC_FORMAT",
    "ReplicatedBackend",
    "ReplicatedJournal",
    "ReplicatedRecoveryReport",
    "build_replicated_backend",
    "default_quorums",
]

#: Format tag of the replicated document envelope.
DOC_FORMAT = "repro.storage.replicated-doc"
DOC_VERSION = 1


def default_quorums(replicas: int) -> tuple[int, int]:
    """The (W, R) pair used when the flags leave them unset: a write
    majority, and the smallest read quorum that still overlaps it."""
    write_quorum = replicas // 2 + 1
    return write_quorum, replicas - write_quorum + 1


def _envelope_checksum(envelope: Mapping[str, Any]) -> str:
    canonical = json.dumps(
        {k: v for k, v in envelope.items() if k != "checksum"},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _make_envelope(name: str, seq: int, document: Mapping[str, Any]) -> dict:
    envelope: dict[str, Any] = {
        "format": DOC_FORMAT,
        "v": DOC_VERSION,
        "name": name,
        "seq": seq,
        "document": dict(document),
    }
    envelope["checksum"] = _envelope_checksum(envelope)
    return envelope


def _parse_envelope(raw: Any, name: str) -> tuple[int, str, dict] | None:
    """``(seq, checksum, envelope)`` when *raw* is a valid envelope for
    *name*; a bare (pre-replication) document is wrapped as sequence 0
    so it can be read -- and repaired over -- rather than rejected."""
    if not isinstance(raw, dict):
        return None
    if raw.get("format") != DOC_FORMAT:
        legacy = _make_envelope(name, 0, raw)
        return 0, legacy["checksum"], legacy
    if (
        raw.get("name") != name
        or not isinstance(raw.get("seq"), int)
        or not isinstance(raw.get("document"), dict)
        or raw.get("checksum") != _envelope_checksum(raw)
    ):
        return None
    return int(raw["seq"]), str(raw["checksum"]), dict(raw)


class AntiEntropyReport:
    """What one anti-entropy pass reconciled."""

    def __init__(self, replicas: list[str], full: bool):
        #: replica ids that were reachable for this pass
        self.replicas = list(replicas)
        #: True when *every* replica was reachable -- only a full pass
        #: may roll back partial (never-acknowledged) writes
        self.full = full
        self.documents_checked = 0
        self.documents_repaired = 0
        self.documents_rolled_back = 0
        self.journal_records_propagated = 0
        self.journal_records_dropped = 0
        self.journals_rewritten = 0
        self.snapshots_propagated = 0
        self.snapshots_pruned = 0

    @property
    def changes(self) -> int:
        return (
            self.documents_repaired
            + self.documents_rolled_back
            + self.journal_records_propagated
            + self.journal_records_dropped
            + self.snapshots_propagated
            + self.snapshots_pruned
        )

    def to_dict(self) -> dict:
        return {
            "replicas": list(self.replicas),
            "full": self.full,
            "documents_checked": self.documents_checked,
            "documents_repaired": self.documents_repaired,
            "documents_rolled_back": self.documents_rolled_back,
            "journal_records_propagated": self.journal_records_propagated,
            "journal_records_dropped": self.journal_records_dropped,
            "journals_rewritten": self.journals_rewritten,
            "snapshots_propagated": self.snapshots_propagated,
            "snapshots_pruned": self.snapshots_pruned,
        }

    def __repr__(self) -> str:
        return (
            f"AntiEntropyReport(full={self.full}, "
            f"changes={self.changes})"
        )


class ReplicatedRecoveryReport(RecoveryReport):
    """Per-replica recovery merged with the anti-entropy outcome."""

    def __init__(self):
        super().__init__()
        #: replica ids skipped because they were unreachable
        self.skipped: list[str] = []
        self.anti_entropy: AntiEntropyReport | None = None

    def to_dict(self) -> dict:
        out = super().to_dict()
        out["skipped_replicas"] = list(self.skipped)
        out["anti_entropy"] = (
            self.anti_entropy.to_dict()
            if self.anti_entropy is not None
            else None
        )
        return out


class ReplicatedJournal:
    """The :class:`~repro.robustness.journal.BatchJournal` surface over
    one journal name on every replica.

    Appends go to each replica whose journal is open (replicas that
    were unreachable at construction are re-opened lazily once their
    transport heals); a record counts as committed only when at least
    W replicas durably acknowledged it.  A sub-quorum append raises
    :class:`~repro.errors.JournalError` -- the partial copies it may
    have landed are exactly what a *full* anti-entropy pass rolls
    back, because the caller was never told the record committed.

    ``acked_indexes`` / ``ack_copies`` expose the commit bookkeeping
    the Jepsen-style checker verifies against the per-replica files.
    """

    def __init__(self, backend: "ReplicatedBackend", name: str, resume: bool):
        self.name = name
        self.path = backend.path_of(name)
        self.resume = resume
        self._backend = backend
        self._lock = threading.RLock()
        self._journals: dict[str, Any] = {}
        self._records: dict[int, dict] = {}
        self._appended = 0
        self.discarded = 0
        #: indexes whose append reached write quorum this run
        self.acked_indexes: set[int] = set()
        #: every replica that durably acknowledged each index
        self.ack_copies: dict[int, tuple[str, ...]] = {}
        for rid, child, transport in backend.each_replica():
            if not transport.reachable:
                continue
            self._try_open(rid, child, resume)
        open_count = len(self._journals)
        needed = backend.write_quorum
        if resume:
            needed = max(needed, backend.read_quorum)
        if open_count < needed:
            self.close()
            raise JournalError(
                f"journal {name}: only {open_count} of "
                f"{len(backend.children)} replica journals opened; "
                f"{needed} needed for quorum"
            )

    def _try_open(self, rid: str, child: StorageBackend, resume: bool) -> bool:
        try:
            journal = child.journal(self.name, resume=resume)
        except (JournalError, StorageError):
            self._backend.breaker_failure(rid)
            return False
        self._backend.breaker_success(rid)
        self.discarded += journal.discarded
        for index, record in journal.loaded_records().items():
            known = self._records.get(index)
            if known is None:
                self._records[index] = record
            elif known["checksum"] != record["checksum"]:
                journal.close()
                raise JournalError(
                    f"replica {rid} journal {self.name} disagrees at "
                    f"index {index} with an already-merged replica -- "
                    "refusing to merge unrelated runs"
                )
        self._journals[rid] = journal
        return True

    # -- BatchJournal surface ------------------------------------------
    def completed(self, index: int, question: str) -> dict | None:
        with self._lock:
            record = self._records.get(index)
        if record is None:
            return None
        if (
            record["question"] != question
            or record["qdigest"] != question_digest(question)
        ):
            raise JournalError(
                f"replicated journal {self.name} records question "
                f"{record['question']!r} at index {index}, but the "
                f"batch being resumed asks {question!r} there -- "
                "refusing to merge unrelated runs"
            )
        return record["outcome"]

    def record(
        self, index: int, question: str, outcome: Mapping[str, Any]
    ) -> None:
        """Append one outcome to every open replica; require W acks."""
        backend = self._backend
        with self._lock:
            # a replica that was down at open may be reachable again:
            # rejoin it (resume=True loads what it already has) so a
            # healed replica starts receiving appends mid-batch
            for rid, child, transport in backend.each_replica():
                if rid in self._journals or not transport.reachable:
                    continue
                self._try_open(rid, child, resume=True)
            acks: list[str] = []
            for rid in list(self._journals):
                journal = self._journals[rid]
                try:
                    journal.record(index, question, outcome)
                except (JournalError, StorageError):
                    backend.breaker_failure(rid)
                    backend.count("replica.nacks")
                    continue
                backend.breaker_success(rid)
                backend.count("replica.acks")
                acks.append(rid)
            self.ack_copies[index] = tuple(acks)
            if len(acks) < backend.write_quorum:
                backend.count("storage.quorum.failed")
                raise JournalError(
                    f"journal append at index {index} reached only "
                    f"{len(acks)} of {backend.write_quorum} required "
                    f"replica acks"
                )
            entry: dict[str, Any] = {
                "v": JOURNAL_VERSION,
                "index": index,
                "question": question,
                "qdigest": question_digest(question),
                "outcome": dict(outcome),
            }
            entry["checksum"] = _record_checksum(entry)
            self._records[index] = entry
            self._appended += 1
            self.acked_indexes.add(index)

    def loaded_records(self) -> dict[int, dict]:
        with self._lock:
            return dict(self._records)

    @property
    def replayable_count(self) -> int:
        with self._lock:
            return len(self._records) - self._appended

    def close(self) -> None:
        with self._lock:
            for journal in self._journals.values():
                try:
                    journal.close()
                except StorageError:
                    pass

    def __enter__(self) -> "ReplicatedJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:
        return (
            f"ReplicatedJournal({self.name!r}, "
            f"replicas={sorted(self._journals)}, "
            f"records={len(self)})"
        )


class ReplicatedBackend(StorageBackend):
    """N child backends, one durability story, quorum consistency.

    The coordinator holds no data of its own: ``self.io`` is ``None``
    on purpose, and every inherited method that would touch it is
    overridden to fan out across ``self.children`` instead.  Children
    are ordinary :class:`StorageBackend` instances whose I/O shim is a
    :class:`~repro.storage.remote.RemoteIO`, so each leg of a fan-out
    is one (faultable) network delivery per primitive.
    """

    kind = "replicated"

    def __init__(
        self,
        children: list[StorageBackend],
        transports: list[ReplicaTransport],
        write_quorum: int | None = None,
        read_quorum: int | None = None,
        metrics: MetricsRegistry | None = None,
        root: Path | str | None = None,
        breakers: CircuitBreakerBoard | None = None,
    ):
        n = len(children)
        if n < 1 or len(transports) != n:
            raise StorageError(
                "a replicated backend needs one transport per child "
                f"backend (got {n} children, {len(transports)} "
                "transports)"
            )
        default_w, default_r = default_quorums(n)
        self.write_quorum = (
            default_w if write_quorum is None else int(write_quorum)
        )
        self.read_quorum = (
            default_r if read_quorum is None else int(read_quorum)
        )
        if not 1 <= self.write_quorum <= n:
            raise StorageError(
                f"write quorum must be in [1, {n}], got "
                f"{self.write_quorum}"
            )
        if not 1 <= self.read_quorum <= n:
            raise StorageError(
                f"read quorum must be in [1, {n}], got "
                f"{self.read_quorum}"
            )
        if self.write_quorum + self.read_quorum <= n:
            raise StorageError(
                f"quorums must overlap: W + R > N required, got "
                f"W={self.write_quorum} R={self.read_quorum} N={n}"
            )
        # deliberately no super().__init__: the coordinator owns no
        # filesystem -- self.io stays None so an un-overridden base
        # method fails loudly instead of silently using one replica
        self.root = Path(root) if root is not None else Path("/replicated")
        self.io = None
        self.metrics = metrics
        self.children = list(children)
        self.transports = list(transports)
        self.replica_ids = [t.replica_id for t in transports]
        self.breakers = breakers
        self._seq_lock = threading.Lock()
        self._seq = 0
        #: highest sequence number acknowledged per replica
        self.replica_seq: dict[str, int] = {
            rid: 0 for rid in self.replica_ids
        }
        #: the checker's ground truth: last acked seq per document name
        self.acked_documents: dict[str, int] = {}

    # -- plumbing ------------------------------------------------------
    def each_replica(
        self,
    ) -> Iterator[tuple[str, StorageBackend, ReplicaTransport]]:
        return zip(self.replica_ids, self.children, self.transports)

    def count(self, name: str, n: int = 1) -> None:
        self._count(name, n)

    def breaker_success(self, rid: str) -> None:
        if self.breakers is not None:
            self.breakers.record_success(f"replica.{rid}")

    def breaker_failure(self, rid: str) -> None:
        if self.breakers is not None:
            self.breakers.record_failure(f"replica.{rid}")

    def _breaker_allows(self, rid: str) -> bool:
        if self.breakers is None:
            return True
        return self.breakers.allow(f"replica.{rid}")

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    def _observe_seq(self, seq: int) -> None:
        with self._seq_lock:
            if seq > self._seq:
                self._seq = seq

    def _fan_out(
        self, fn: Callable[[StorageBackend], Any], seq: int | None = None
    ) -> list[str]:
        """Apply *fn* to every replica; the ids that acknowledged."""
        acks: list[str] = []
        for rid, child, _transport in self.each_replica():
            if not self._breaker_allows(rid):
                self.count("replica.nacks")
                continue
            try:
                fn(child)
            except StorageError:
                self.breaker_failure(rid)
                self.count("replica.nacks")
                continue
            self.breaker_success(rid)
            self.count("replica.acks")
            acks.append(rid)
            if seq is not None and seq > self.replica_seq.get(rid, 0):
                self.replica_seq[rid] = seq
        return acks

    def _gather(
        self, fn: Callable[[StorageBackend], Any], what: str
    ) -> list[tuple[str, Any]]:
        """One reply per replica that answered; ``None`` values mean
        the replica answered but its copy is corrupt or unusable.
        Raises :class:`~repro.errors.QuorumError` below R replies."""
        replies: list[tuple[str, Any]] = []
        for rid, child, _transport in self.each_replica():
            if not self._breaker_allows(rid):
                continue
            try:
                value = fn(child)
            except ReplicaUnavailableError:
                self.breaker_failure(rid)
                continue
            except StorageError:
                # the replica is up but its artifact is damaged: that
                # is a reply (it counts toward R) with no usable value
                self.breaker_success(rid)
                replies.append((rid, None))
                continue
            self.breaker_success(rid)
            replies.append((rid, value))
        if len(replies) < self.read_quorum:
            self.count("storage.quorum.failed")
            raise QuorumError(
                f"{what}: only {len(replies)} of "
                f"{self.read_quorum} required replicas replied",
                acks=len(replies),
                required=self.read_quorum,
            )
        return replies

    # -- documents -----------------------------------------------------
    def write_document(self, name: str, document: Mapping[str, Any]) -> None:
        self.path_of(name)  # validate the name before any delivery
        seq = self._next_seq()
        envelope = _make_envelope(name, seq, document)
        acks = self._fan_out(
            lambda child: child.write_document(name, envelope), seq=seq
        )
        if len(acks) < self.write_quorum:
            self.count("storage.quorum.failed")
            raise QuorumError(
                f"write of {name} reached only {len(acks)} of "
                f"{self.write_quorum} required replicas",
                acks=len(acks),
                required=self.write_quorum,
                path=name,
            )
        self.acked_documents[name] = seq
        self.count("storage.documents.written")

    def read_document(self, name: str) -> dict | None:
        replies = self._gather(
            lambda child: child.read_document(name), f"read of {name}"
        )
        parsed: list[tuple[str, tuple[int, str, dict] | None]] = []
        for rid, raw in replies:
            if raw is None:
                parsed.append((rid, None))
            else:
                parsed.append((rid, _parse_envelope(raw, name)))
        candidates = [p for _rid, p in parsed if p is not None]
        if not candidates:
            missing_everywhere = all(raw is None for _rid, raw in replies)
            if missing_everywhere:
                return None
            raise StorageError(
                f"document {name} is corrupt on every replica that "
                "replied",
                path=name,
            )
        winner_seq, winner_sum, winner = max(
            candidates, key=lambda c: (c[0], c[1])
        )
        self._observe_seq(winner_seq)
        stale = [
            rid
            for rid, p in parsed
            if p is None or (p[0], p[1]) != (winner_seq, winner_sum)
        ]
        if stale:
            with span("storage.read_repair", category="storage"):
                for rid in stale:
                    child = self.children[self.replica_ids.index(rid)]
                    try:
                        child.write_document(name, winner)
                    except StorageError:
                        self.breaker_failure(rid)
                        continue
                    self.count("replica.read_repairs")
        self.count("storage.documents.read")
        return dict(winner["document"])

    def delete_document(self, name: str) -> None:
        path = self.path_of(name)
        acks = self._fan_out(lambda child: child.delete_document(name))
        if len(acks) < self.write_quorum:
            raise QuorumError(
                f"delete of {name} reached only {len(acks)} of "
                f"{self.write_quorum} required replicas",
                acks=len(acks),
                required=self.write_quorum,
                path=str(path),
            )
        self.acked_documents.pop(name, None)

    def list_documents(self, suffix: str = ".json") -> list[str]:
        replies = self._gather(
            lambda child: child.list_documents(suffix),
            f"listing of *{suffix}",
        )
        names: set[str] = set()
        for _rid, listing in replies:
            if listing is not None:
                names.update(listing)
        return sorted(names)

    def exists(self, name: str) -> bool:
        path = self.path_of(name)
        replies = self._gather(
            lambda child: child.io.exists(child.path_of(name)),
            f"existence of {name}",
        )
        return any(bool(value) for _rid, value in replies)

    # -- journals ------------------------------------------------------
    def journal(self, name: str, resume: bool = False) -> ReplicatedJournal:
        self.path_of(name)
        return ReplicatedJournal(self, name, resume=resume)

    # -- snapshots -----------------------------------------------------
    def snapshot_generations(self, family: str) -> list[int]:
        replies = self._gather(
            lambda child: child.snapshot_generations(family),
            f"snapshot generations of {family}",
        )
        generations: set[int] = set()
        for _rid, gens in replies:
            if gens is not None:
                generations.update(gens)
        return sorted(generations)

    def write_snapshot(
        self, family: str, document: Mapping[str, Any]
    ) -> int:
        generations = self.snapshot_generations(family)
        generation = (generations[-1] + 1) if generations else 1
        payload: dict[str, Any] = {
            "format": SNAPSHOT_FORMAT,
            "v": SNAPSHOT_VERSION,
            "family": family,
            "generation": generation,
            "document": dict(document),
        }
        payload["checksum"] = _snapshot_checksum(payload)
        name = self._snapshot_name(family, generation)
        prune = generations[: max(0, len(generations) + 1 - SNAPSHOT_KEEP)]

        def write_one(child: StorageBackend) -> None:
            # bypass child.write_snapshot: every replica must store the
            # SAME generation payload, not invent its own numbering
            child.write_document(name, payload)
            for old in prune:
                child.io.unlink(
                    child.path_of(self._snapshot_name(family, old))
                )

        acks = self._fan_out(write_one)
        if len(acks) < self.write_quorum:
            self.count("storage.quorum.failed")
            raise QuorumError(
                f"snapshot {family} gen-{generation} reached only "
                f"{len(acks)} of {self.write_quorum} required replicas",
                acks=len(acks),
                required=self.write_quorum,
                path=name,
            )
        self.count("storage.snapshots.written")
        return generation

    def read_snapshot(
        self, family: str, quarantine_corrupt: bool = True
    ) -> tuple[dict, int] | None:
        replies = self._gather(
            lambda child: child.read_snapshot(
                family, quarantine_corrupt=False
            ),
            f"snapshot of {family}",
        )
        best: tuple[int, dict] | None = None
        for _rid, value in replies:
            if value is None:
                continue
            document, generation = value
            if best is None or generation > best[0]:
                best = (generation, dict(document))
        if best is None:
            return None
        generation, document = best
        payload: dict[str, Any] = {
            "format": SNAPSHOT_FORMAT,
            "v": SNAPSHOT_VERSION,
            "family": family,
            "generation": generation,
            "document": dict(document),
        }
        payload["checksum"] = _snapshot_checksum(payload)
        name = self._snapshot_name(family, generation)
        for rid, value in replies:
            if value is not None and value[1] == generation:
                continue
            child = self.children[self.replica_ids.index(rid)]
            try:
                child.write_document(name, payload)
            except StorageError:
                continue
            self.count("replica.read_repairs")
        self.count("storage.snapshots.read")
        return dict(document), generation

    # -- quarantine ----------------------------------------------------
    def quarantine(self, name: str) -> str | None:
        moved: str | None = None
        for rid, child, transport in self.each_replica():
            if not transport.reachable:
                continue
            try:
                result = child.quarantine(name)
            except StorageError:
                self.breaker_failure(rid)
                continue
            if result is not None and moved is None:
                moved = result
        return moved

    # -- recovery + anti-entropy ---------------------------------------
    def recover(self) -> ReplicatedRecoveryReport:
        report = ReplicatedRecoveryReport()
        with span("storage.recover", category="storage"):
            for rid, child, transport in self.each_replica():
                if not transport.reachable:
                    report.skipped.append(rid)
                    continue
                try:
                    sub = child.recover()
                except StorageError:
                    self.breaker_failure(rid)
                    report.skipped.append(rid)
                    continue
                report.scanned += sub.scanned
                report.quarantined.extend(
                    f"replica-{rid}:{name}" for name in sub.quarantined
                )
                report.repaired.extend(
                    f"replica-{rid}:{name}" for name in sub.repaired
                )
                report.torn_discarded.extend(
                    f"replica-{rid}:{name}"
                    for name in sub.torn_discarded
                )
            report.anti_entropy = self.anti_entropy()
            self._count("storage.recovery.runs")
        return report

    def _reachable(self) -> list[tuple[str, StorageBackend]]:
        return [
            (rid, child)
            for rid, child, transport in self.each_replica()
            if transport.reachable
        ]

    def anti_entropy(self) -> AntiEntropyReport:
        """Reconcile the reachable replicas.

        A *partial* pass (some replica unreachable) only propagates
        artifacts already provably committed -- present on at least W
        of the reachable replicas -- and never removes anything: a
        record with fewer visible copies might still be committed via
        the unreachable replica.  A *full* pass additionally rolls
        back partial writes (every copy visible, still < W: the client
        was told the write failed) and rewrites journals to canonical
        byte-identical form, which is the convergence the nemesis
        checker asserts.
        """
        reachable = self._reachable()
        report = AntiEntropyReport(
            [rid for rid, _ in reachable],
            full=len(reachable) == len(self.children),
        )
        if len(reachable) < max(self.write_quorum, self.read_quorum):
            # not enough of the cluster visible to prove anything
            return report
        with span(
            "storage.anti_entropy",
            category="storage",
            replicas=len(reachable),
            full=report.full,
        ):
            self._reconcile_documents(reachable, report)
            self._reconcile_journals(reachable, report)
            self._reconcile_snapshots(reachable, report)
        self.count("replica.anti_entropy.runs")
        if report.changes:
            self.count("replica.anti_entropy.changes", report.changes)
        return report

    def _reconcile_documents(
        self,
        reachable: list[tuple[str, StorageBackend]],
        report: AntiEntropyReport,
    ) -> None:
        names: set[str] = set()
        for _rid, child in reachable:
            try:
                names.update(child.list_documents(".json"))
            except StorageError:
                continue
        for name in sorted(names):
            report.documents_checked += 1
            held: dict[str, tuple[int, str, dict] | None] = {}
            texts: dict[str, str | None] = {}
            for rid, child in reachable:
                try:
                    text = child.io.read_text(child.path_of(name))
                except StorageError:
                    held[rid] = None
                    texts[rid] = None
                    continue
                texts[rid] = text
                try:
                    raw = json.loads(text)
                except json.JSONDecodeError:
                    held[rid] = None
                    continue
                held[rid] = _parse_envelope(raw, name)
            copies: dict[tuple[int, str], list[str]] = {}
            envelopes: dict[tuple[int, str], dict] = {}
            for rid, parsed in held.items():
                if parsed is None:
                    continue
                seq, checksum, envelope = parsed
                key = (seq, checksum)
                copies.setdefault(key, []).append(rid)
                envelopes[key] = envelope
            committed = [
                key
                for key, holders in copies.items()
                if len(holders) >= self.write_quorum
            ]
            if committed:
                winner_key = max(committed)
                winner = envelopes[winner_key]
                # replicas must converge on *bytes*, not just parsed
                # meaning: a bare legacy copy and its envelope wrap
                # share a (seq, checksum) identity but not a
                # serialization, so repair targets the canonical text
                canonical = (
                    json.dumps(
                        winner, indent=2, sort_keys=True, default=str
                    )
                    + "\n"
                )
                self._observe_seq(winner_key[0])
                for rid, child in reachable:
                    parsed = held[rid]
                    if texts[rid] == canonical:
                        continue
                    if parsed is not None and not report.full and (
                        (parsed[0], parsed[1]) not in committed
                        and parsed[0] > winner_key[0]
                    ):
                        # a higher-seq partial copy may yet be the
                        # committed version via an unreachable replica;
                        # a partial pass must not overwrite it
                        continue
                    try:
                        atomic_write_text(
                            child.path_of(name), canonical, io=child.io
                        )
                    except StorageError:
                        self.breaker_failure(rid)
                        continue
                    report.documents_repaired += 1
            elif report.full:
                # every copy visible and none reached quorum: the
                # write was never acknowledged -- quarantine every
                # partial copy so it cannot resurrect (evidence, not
                # garbage, per the recovery doctrine)
                for rid, child in reachable:
                    if held[rid] is None:
                        continue
                    try:
                        child.quarantine(name)
                    except StorageError:
                        self.breaker_failure(rid)
                        continue
                    report.documents_rolled_back += 1

    def _journal_names(
        self, reachable: list[tuple[str, StorageBackend]]
    ) -> list[str]:
        names: set[str] = set()
        for _rid, child in reachable:
            try:
                listing = child.io.listdir(child.root)
            except StorageError:
                continue
            names.update(
                n for n in listing if n.endswith(".jsonl")
            )
        return sorted(names)

    @staticmethod
    def _parse_journal_text(text: str) -> dict[int, tuple[str, dict]]:
        """index -> (line, record) for the trustworthy prefix of a
        journal file, with the torn-tail / stop-at-first-corruption
        rules of :class:`~repro.robustness.journal.BatchJournal`."""
        out: dict[int, tuple[str, dict]] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            if not verify_record(record):
                break
            out[int(record["index"])] = (line, record)
        return out

    def _reconcile_journals(
        self,
        reachable: list[tuple[str, StorageBackend]],
        report: AntiEntropyReport,
    ) -> None:
        for name in self._journal_names(reachable):
            held: dict[str, dict[int, tuple[str, dict]]] = {}
            for rid, child in reachable:
                path = child.path_of(name)
                try:
                    text = (
                        child.io.read_text(path)
                        if child.io.exists(path)
                        else ""
                    )
                except StorageError:
                    text = ""
                held[rid] = self._parse_journal_text(text)
            copies: dict[tuple[int, str], list[str]] = {}
            lines: dict[tuple[int, str], str] = {}
            for rid, records in held.items():
                for index, (line, record) in records.items():
                    key = (index, str(record["checksum"]))
                    copies.setdefault(key, []).append(rid)
                    lines[key] = line
            committed = {
                key
                for key, holders in copies.items()
                if len(holders) >= self.write_quorum
            }
            canonical_keys = sorted(committed)
            if report.full:
                canonical = "".join(
                    lines[key] + "\n" for key in canonical_keys
                )
                for rid, child in reachable:
                    current_keys = {
                        (index, str(record["checksum"]))
                        for index, (_line, record) in held[rid].items()
                    }
                    if current_keys == committed:
                        continue
                    try:
                        atomic_write_text(
                            child.path_of(name), canonical, io=child.io
                        )
                    except StorageError:
                        self.breaker_failure(rid)
                        continue
                    report.journals_rewritten += 1
                    report.journal_records_dropped += len(
                        current_keys - committed
                    )
                    report.journal_records_propagated += len(
                        committed - current_keys
                    )
            else:
                for rid, child in reachable:
                    current_keys = {
                        (index, str(record["checksum"]))
                        for index, (_line, record) in held[rid].items()
                    }
                    missing = [
                        key
                        for key in canonical_keys
                        if key not in current_keys
                    ]
                    if not missing:
                        continue
                    try:
                        handle = child.io.open(child.path_of(name), "a")
                        try:
                            for key in missing:
                                child.io.write(handle, lines[key] + "\n")
                            child.io.flush(handle)
                            child.io.fsync(handle)
                        finally:
                            child.io.close(handle)
                    except StorageError:
                        self.breaker_failure(rid)
                        continue
                    report.journal_records_propagated += len(missing)

    def _reconcile_snapshots(
        self,
        reachable: list[tuple[str, StorageBackend]],
        report: AntiEntropyReport,
    ) -> None:
        found: dict[tuple[str, int], dict[str, dict | None]] = {}
        for rid, child in reachable:
            try:
                listing = child.io.listdir(child.root)
            except StorageError:
                continue
            for name in listing:
                match = _SNAPSHOT_RE.match(name)
                if match is None:
                    continue
                family = match.group("family")
                generation = int(match.group("gen"))
                try:
                    payload = json.loads(
                        child.io.read_text(child.path_of(name))
                    )
                    valid = (
                        isinstance(payload, dict)
                        and payload.get("format") == SNAPSHOT_FORMAT
                        and payload.get("family") == family
                        and payload.get("generation") == generation
                        and isinstance(payload.get("document"), dict)
                        and payload.get("checksum")
                        == _snapshot_checksum(payload)
                    )
                except (json.JSONDecodeError, StorageError):
                    valid = False
                found.setdefault((family, generation), {})[rid] = (
                    payload if valid else None
                )
        committed_by_family: dict[str, list[int]] = {}
        for (family, generation), holders in found.items():
            valid_holders = [
                rid for rid, payload in holders.items()
                if payload is not None
            ]
            if len(valid_holders) >= self.write_quorum:
                committed_by_family.setdefault(family, []).append(
                    generation
                )
        for family, generations in committed_by_family.items():
            keep = sorted(generations)[-SNAPSHOT_KEEP:]
            for generation in keep:
                name = self._snapshot_name(family, generation)
                holders = found[(family, generation)]
                payload = next(
                    p for p in holders.values() if p is not None
                )
                for rid, child in reachable:
                    if holders.get(rid) is not None:
                        continue
                    try:
                        child.write_document(name, payload)
                    except StorageError:
                        self.breaker_failure(rid)
                        continue
                    report.snapshots_propagated += 1
        if report.full:
            # drop generations that never reached quorum (un-acked) or
            # fell past the keep horizon, everywhere
            for (family, generation), holders in sorted(found.items()):
                keep = sorted(
                    committed_by_family.get(family, [])
                )[-SNAPSHOT_KEEP:]
                if generation in keep:
                    continue
                name = self._snapshot_name(family, generation)
                for rid, child in reachable:
                    if rid not in holders:
                        continue
                    try:
                        if generation in committed_by_family.get(
                            family, []
                        ):
                            # committed but superseded: plain prune
                            child.io.unlink(child.path_of(name))
                        else:
                            child.quarantine(name)
                    except StorageError:
                        self.breaker_failure(rid)
                        continue
                    report.snapshots_pruned += 1

    # -- introspection -------------------------------------------------
    def health(self) -> dict:
        """Per-replica reachability for ``/readyz``."""
        states = (
            self.breakers.states() if self.breakers is not None else {}
        )
        replicas = []
        degraded = []
        reachable_count = 0
        for rid, _child, transport in self.each_replica():
            info = transport.describe()
            info["breaker"] = states.get(f"replica.{rid}", "closed")
            info["seq"] = self.replica_seq.get(rid, 0)
            replicas.append(info)
            if info["reachable"] and info["breaker"] != "open":
                reachable_count += 1
            else:
                degraded.append(rid)
        return {
            "replicas": replicas,
            "n": len(self.children),
            "write_quorum": self.write_quorum,
            "read_quorum": self.read_quorum,
            "degraded": degraded,
            "quorum_ok": reachable_count
            >= max(self.write_quorum, self.read_quorum),
        }

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "root": str(self.root),
            "replicas": len(self.children),
            "write_quorum": self.write_quorum,
            "read_quorum": self.read_quorum,
            "children": [child.describe() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"ReplicatedBackend(n={len(self.children)}, "
            f"W={self.write_quorum}, R={self.read_quorum})"
        )


def build_replicated_backend(
    kind: str,
    root: Path | None = None,
    metrics: MetricsRegistry | None = None,
    replicas: int = 3,
    write_quorum: int | None = None,
    read_quorum: int | None = None,
    breakers: CircuitBreakerBoard | None = None,
) -> ReplicatedBackend:
    """Stand up N local-dir or in-memory replicas behind one coordinator.

    ``local`` lays the replicas out as ``<root>/replica-<i>/`` so a
    restarted service re-opens the same replica directories; ``memory``
    gives each replica its own private file table.
    """
    if kind == "local" and root is None:
        raise StorageError(
            "the replicated local backend needs a root directory "
            "(--journal-dir)"
        )
    children: list[StorageBackend] = []
    transports: list[ReplicaTransport] = []
    for index in range(replicas):
        rid = str(index)
        transport = ReplicaTransport(rid)
        if kind == "memory":
            child_io: StorageIO = MemoryIO()
            child_root = Path(f"/replica-{index}")
        elif kind == "local":
            child_io = LocalIO()
            child_root = Path(root) / f"replica-{index}"
        else:
            raise StorageError(
                f"unknown replicated backend kind {kind!r}; choose "
                "local or memory"
            )
        child = StorageBackend(
            child_root, RemoteIO(child_io, transport), metrics=None
        )
        child.kind = kind
        children.append(child)
        transports.append(transport)
    if breakers is None:
        breakers = CircuitBreakerBoard(min_calls=2, cooldown_s=5.0)
    return ReplicatedBackend(
        children,
        transports,
        write_quorum=write_quorum,
        read_quorum=read_quorum,
        metrics=metrics,
        root=root if root is not None else Path("/replicated"),
        breakers=breakers,
    )
