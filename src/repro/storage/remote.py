"""The network transport shim between a coordinator and one replica.

The replicated backend (:mod:`repro.storage.replicated`) never touches
a child backend's :class:`~repro.storage.io.StorageIO` directly: every
primitive is wrapped in a :class:`RemoteIO`, which routes the call
through a :class:`ReplicaTransport` -- the simulated network path to
that replica.  The transport is where the network misbehaves, in the
same deterministic, seed-driven way the disk does in
:mod:`repro.storage.io`:

* **one-shot faults** come from the ambient
  :class:`~repro.robustness.faults.FaultPlan` through the
  :data:`~repro.robustness.faults.NET_FAULT_SITES` sites --
  ``net.drop`` loses exactly one delivery, ``net.delay`` holds one for
  a deterministic pause on the injectable clock, ``net.dup`` applies a
  write twice (a retransmitted but already-applied message);

* **sticky faults** flip transport state and stay until healed --
  ``net.partition`` cuts the link (the replica is alive but
  unreachable), ``replica.down`` kills the replica process (requests
  fail until :meth:`ReplicaTransport.restart`), ``replica.slow`` makes
  every later delivery pay the delay.  The nemesis harness
  (:mod:`repro.storage.nemesis`) drives the same switches directly on
  an operation-count schedule.

Faults fire on the *request path*: a dropped or partitioned delivery
never reaches the child shim, so the operation either applies on the
replica and is acknowledged, or does not apply at all.  (Ack-path loss
-- applied but unacknowledged -- is modelled by ``net.dup``'s inverse:
the coordinator treats a missing ack as a failed leg, and anti-entropy
reconciles any replica the retransmission did land on.)

Every delivery is observable: the transport keeps a bounded op log
(``ops``) the Jepsen-style checker reads, calls an optional observer
hook (how the nemesis counts global operations), and bumps ``net.*`` /
``replica.*`` metric counters on the ambient tracer.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable

from ..errors import InjectedFaultError, ReplicaUnavailableError
from ..obs.clock import current_clock
from ..obs.trace import metric_counter
from ..robustness.faults import fault_point
from .io import StorageIO

__all__ = ["RemoteIO", "ReplicaTransport"]

#: Simulated one-way latency a slow/delayed delivery pays, in seconds.
#: Charged on the *injectable* clock, so a ManualClock test advances
#: virtual time while the wall clock never waits.
TRANSPORT_DELAY_S = 0.002

#: Delivery records kept per transport (a ring, oldest dropped).
OP_LOG_KEEP = 4096


def _fires(site: str) -> bool:
    """True when the active fault plan fires at *site* (consumed)."""
    try:
        fault_point(site)
    except InjectedFaultError:
        return True
    return False


class ReplicaTransport:
    """The (simulated) network path from the coordinator to one replica.

    Thread-safe: worker threads of a parallel batch deliver through one
    transport.  Sticky state (``partitioned`` / ``down`` / ``slow``)
    is mutated either by the fault sites or directly by the nemesis;
    :meth:`heal` and :meth:`restart` are the operator's repair actions.
    """

    def __init__(
        self,
        replica_id: str,
        delay_s: float = TRANSPORT_DELAY_S,
        observer: Callable[[str], None] | None = None,
    ):
        self.replica_id = replica_id
        self.delay_s = delay_s
        #: called (with the replica id) at the start of every delivery,
        #: before any fault decision -- the nemesis's operation clock
        self.observer = observer
        self._lock = threading.RLock()
        self.partitioned = False
        self.down = False
        self.slow = False
        self.delivered = 0
        self.failed = 0
        #: bounded delivery log: ``(op, "ok" | failure reason)``
        self.ops: list[tuple[str, str]] = []

    # -- nemesis / operator switches -----------------------------------
    def partition(self) -> None:
        with self._lock:
            self.partitioned = True

    def heal(self) -> None:
        with self._lock:
            self.partitioned = False
            self.slow = False

    def kill(self) -> None:
        with self._lock:
            self.down = True

    def restart(self) -> None:
        with self._lock:
            self.down = False

    @property
    def reachable(self) -> bool:
        with self._lock:
            return not (self.partitioned or self.down)

    # -- delivery ------------------------------------------------------
    def _log(self, op: str, status: str) -> None:
        with self._lock:
            self.ops.append((op, status))
            if len(self.ops) > OP_LOG_KEEP:
                del self.ops[: len(self.ops) - OP_LOG_KEEP]
            if status == "ok":
                self.delivered += 1
            else:
                self.failed += 1

    def _refuse(self, op: str, reason: str) -> ReplicaUnavailableError:
        self._log(op, reason)
        metric_counter(f"replica.unreachable.{self.replica_id}")
        return ReplicaUnavailableError(
            f"replica {self.replica_id} unreachable for {op} "
            f"({reason})",
            replica=self.replica_id,
            reason=reason,
        )

    def deliver(self, op: str, fn, mutating: bool = False):
        """Send one operation across the link and return its result.

        Fault order mirrors a real request: the sticky link state is
        consulted first (a partitioned or dead replica never sees the
        message), then the one-shot drop, then the delay, then the
        actual application -- and only a *mutating* operation can be
        duplicated, because re-applying a read is invisible.
        """
        if self.observer is not None:
            self.observer(self.replica_id)
        # one-shot plan sites may flip the sticky switches first
        if _fires("net.partition"):
            self.partition()
        if _fires("replica.down"):
            self.kill()
        if _fires("replica.slow"):
            with self._lock:
                self.slow = True
        with self._lock:
            down, partitioned, slow = (
                self.down, self.partitioned, self.slow,
            )
        if down:
            raise self._refuse(op, "down")
        if partitioned:
            raise self._refuse(op, "partitioned")
        if _fires("net.drop"):
            metric_counter("net.dropped")
            raise self._refuse(op, "dropped")
        if slow or _fires("net.delay"):
            metric_counter("net.delayed")
            current_clock().sleep(self.delay_s)
        result = fn()
        if mutating and _fires("net.dup"):
            # a retransmission of an already-applied message: the
            # operation lands twice.  Idempotent ops (mkdir, unlink)
            # absorb it; a replica that rejects the replay (a rename
            # whose source is gone) changes nothing -- the first
            # application already succeeded and its ack stands.
            metric_counter("net.duplicated")
            try:
                fn()
            except Exception:
                pass
            self._log(op, "ok+dup")
        else:
            self._log(op, "ok")
        return result

    def describe(self) -> dict:
        with self._lock:
            return {
                "replica": self.replica_id,
                "reachable": not (self.partitioned or self.down),
                "partitioned": self.partitioned,
                "down": self.down,
                "slow": self.slow,
                "delivered": self.delivered,
                "failed": self.failed,
            }

    def __repr__(self) -> str:
        state = "up" if self.reachable else "unreachable"
        return f"ReplicaTransport({self.replica_id!r}, {state})"


class RemoteIO(StorageIO):
    """A :class:`StorageIO` that reaches its child through a transport.

    Every primitive -- handle writes, fsyncs, renames, listings -- is
    one delivery; a replica that is partitioned, down, or dropped by
    the plan raises :class:`~repro.errors.ReplicaUnavailableError`
    instead of touching the child.  Mutations are flagged so the
    duplicate-delivery fault only replays operations a retransmission
    could actually replay.
    """

    def __init__(self, child: StorageIO, transport: ReplicaTransport):
        self.child = child
        self.transport = transport

    def _send(self, op: str, fn, mutating: bool = False):
        return self.transport.deliver(op, fn, mutating=mutating)

    # -- handles -------------------------------------------------------
    def open(self, path: Path, mode: str):
        # never dup-able: a duplicated open would orphan a handle
        return self._send(
            f"open:{path}", lambda: self.child.open(path, mode)
        )

    def write(self, handle, text: str) -> None:
        # NOT dup-able: duplicating a stream write would tear the
        # record framing; retransmission semantics live on the
        # whole-file and rename ops
        return self._send(
            "write", lambda: self.child.write(handle, text)
        )

    def flush(self, handle) -> None:
        return self._send("flush", lambda: self.child.flush(handle))

    def fsync(self, handle) -> None:
        return self._send("fsync", lambda: self.child.fsync(handle))

    def close(self, handle) -> None:
        # closing the local end of a stream never crosses the network
        return self.child.close(handle)

    def closed(self, handle) -> bool:
        return self.child.closed(handle)

    # -- whole files ---------------------------------------------------
    def read_text(self, path: Path) -> str:
        return self._send(
            f"read:{path}", lambda: self.child.read_text(path)
        )

    def exists(self, path: Path) -> bool:
        return self._send(
            f"exists:{path}", lambda: self.child.exists(path)
        )

    def is_dir(self, path: Path) -> bool:
        return self._send(
            f"is_dir:{path}", lambda: self.child.is_dir(path)
        )

    def listdir(self, path: Path) -> list[str]:
        return self._send(
            f"listdir:{path}", lambda: self.child.listdir(path)
        )

    def mkdir(self, path: Path) -> None:
        return self._send(
            f"mkdir:{path}",
            lambda: self.child.mkdir(path),
            mutating=True,
        )

    def unlink(self, path: Path) -> None:
        return self._send(
            f"unlink:{path}",
            lambda: self.child.unlink(path),
            mutating=True,
        )

    def replace(self, src: Path, dst: Path) -> None:
        return self._send(
            f"replace:{dst}",
            lambda: self.child.replace(src, dst),
            mutating=True,
        )

    def fsync_dir(self, path: Path) -> None:
        return self._send(
            f"fsync_dir:{path}", lambda: self.child.fsync_dir(path)
        )
