"""Crash-consistent pluggable storage for the why-not service.

Three layers, bottom up:

* :mod:`~repro.storage.io` -- the fault-injectable I/O shim
  (:class:`StorageIO`): every open/write/fsync/rename/listdir the
  subsystem performs flows through one primitive surface with
  deterministic disk-fault sites
  (:data:`~repro.robustness.faults.IO_FAULT_SITES`).  Implementations:
  :class:`LocalIO` (the real filesystem) and :class:`MemoryIO` (an
  in-memory file table speaking the same interface);

* :mod:`~repro.storage.backend` -- :class:`StorageBackend`: documents
  (atomic durable JSON writes, including the parent-directory fsync),
  journals (the established fsynced WAL), checksummed
  generation-numbered snapshots, and a pre-ready recovery scan that
  quarantines or repairs corrupt artifacts under ``storage.*``
  metrics.  :class:`LocalDirBackend` keeps the pre-existing
  ``--journal-dir`` layout byte-compatible; :class:`MemoryBackend`
  runs the same logic without a disk;

* :mod:`~repro.storage.crashsim` -- the ALICE/CrashMonkey-style
  crash-state enumeration harness: :class:`SimIO` records an operation
  log, :class:`CrashSim` enumerates every legal post-crash filesystem
  state (fsync reordering, torn appends, lost renames), and the test
  suite runs real recovery on each one.
"""

from .backend import (
    LocalDirBackend,
    MemoryBackend,
    QUARANTINE_KEEP,
    RecoveryReport,
    SNAPSHOT_KEEP,
    StorageBackend,
    atomic_write_json,
    atomic_write_text,
    open_backend,
)
from .crashsim import (
    CrashSim,
    Op,
    OpLog,
    SimIO,
    enumerate_crash_states,
    journal_commit_horizon,
    materialize,
)
from .io import LocalIO, MemoryIO, StorageIO
from .remote import RemoteIO, ReplicaTransport
from .replicated import (
    AntiEntropyReport,
    ReplicatedBackend,
    ReplicatedJournal,
    ReplicatedRecoveryReport,
    build_replicated_backend,
    default_quorums,
)

__all__ = [
    "AntiEntropyReport",
    "CrashSim",
    "LocalDirBackend",
    "LocalIO",
    "MemoryBackend",
    "MemoryIO",
    "Op",
    "OpLog",
    "QUARANTINE_KEEP",
    "RecoveryReport",
    "RemoteIO",
    "ReplicaTransport",
    "ReplicatedBackend",
    "ReplicatedJournal",
    "ReplicatedRecoveryReport",
    "SNAPSHOT_KEEP",
    "SimIO",
    "StorageBackend",
    "StorageIO",
    "atomic_write_json",
    "atomic_write_text",
    "build_replicated_backend",
    "default_quorums",
    "enumerate_crash_states",
    "journal_commit_horizon",
    "materialize",
    "open_backend",
]
