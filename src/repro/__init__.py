"""repro -- NedExplain: query-based why-not provenance.

A complete, self-contained reproduction of *"Query-Based Why-Not
Provenance with NedExplain"* (Bidoit, Herschel, Tzompanaki, EDBT 2014):

* :mod:`repro.relational` -- relational substrate (data model, SPJA
  algebra, lineage-tracing evaluator, in-memory database, SQL frontend);
* :mod:`repro.core` -- the NedExplain algorithm and its formal
  framework (c-tuples, compatibility, canonical trees, picky
  subqueries, detailed/condensed/secondary answers);
* :mod:`repro.baseline` -- the Why-Not algorithm of Chapman & Jagadish
  (SIGMOD 2009), the paper's comparison baseline, reproduced with its
  documented shortcomings;
* :mod:`repro.workloads` -- the crime / imdb / gov evaluation
  databases, queries Q1-Q12 and use cases of Tables 3-4;
* :mod:`repro.bench` -- the harness regenerating Table 5 and
  Figures 5-6, plus the machine-readable ``BENCH_*.json`` artifacts;
* :mod:`repro.obs` -- zero-dependency tracing and metrics
  (span trees over the Fig. 5 phases, operator cardinalities, cache
  and budget counters) with JSON-lines / Chrome-trace exporters.

Quick start::

    from repro import Database, SPJASpec, JoinPair, canonicalize, NedExplain

    db = Database()
    ...  # create tables, insert rows
    canonical = canonicalize(spec, db.schema)
    report = NedExplain(canonical, database=db).explain(
        "(P.name: Hank, C.type: 'Car theft')"
    )
    print(report.summary())
"""

from . import baseline, bench, core, obs, relational, robustness, workloads
from .core import (
    CanonicalQuery,
    CTuple,
    JoinPair,
    NedExplain,
    NedExplainConfig,
    NedExplainReport,
    Predicate,
    SPJASpec,
    UnionSpec,
    canonical_from_tree,
    canonicalize,
    nedexplain,
    parse_predicate,
    why_not,
)
from .core.repairs import suggest_repairs, verify_repair
from .errors import (
    BatchError,
    BudgetExceededError,
    ConfigurationError,
    ReproError,
)
from .obs import (
    ManualClock,
    MetricsRegistry,
    Tracer,
    current_tracer,
    render_trace,
    tracing,
    use_clock,
    write_chrome_trace,
    write_trace_jsonl,
)
from .robustness import (
    BatchJournal,
    Budget,
    CancellationToken,
    CircuitBreaker,
    CircuitBreakerBoard,
    DegradationLadder,
    ExecutionContext,
    FailureInfo,
    FaultPlan,
    ParallelExecutor,
    QuestionOutcome,
    ReplayedOutcome,
    RetryPolicy,
    execution_context,
)
from .relational import (
    AggregateCall,
    CacheStats,
    Database,
    DatabaseInstance,
    EvaluationCache,
    Renaming,
    Tuple,
    attr_attr_cmp,
    attr_cmp,
    evaluate_query,
    get_default_cache,
    query_fingerprint,
)
from .relational.csv_io import load_database, save_database
from .relational.sql import sql_to_canonical


def explain_sql(
    database: Database,
    sql: str,
    why_not_question: str,
    config: NedExplainConfig | None = None,
) -> NedExplainReport:
    """One-call convenience API: SQL in, why-not answers out.

    >>> report = explain_sql(db, "SELECT ...", "(A.name: Homer)")
    >>> print(report.summary())
    """
    canonical = sql_to_canonical(sql, database.schema)
    engine = NedExplain(canonical, database=database, config=config)
    return engine.explain(why_not_question)


def explain_batch(
    database: Database,
    sql: str,
    why_not_questions,
    config: NedExplainConfig | None = None,
    cache: EvaluationCache | None = None,
    budget: Budget | None = None,
) -> tuple[NedExplainReport, ...]:
    """Answer many why-not questions over one SQL query, batched.

    The query is evaluated once (through *cache*, defaulting to the
    process-wide shared cache); each question only recomputes its own
    compatible sets and TabQ columns.  Returns one report per question,
    in order.

    The batch is fault-isolating: when any question fails, a
    :class:`~repro.errors.BatchError` is raised whose ``outcomes``
    attribute still holds one result per question (answered questions
    are never lost).  Use :func:`explain_outcomes` to get the
    per-question outcomes without the exception.

    >>> reports = explain_batch(db, "SELECT ...",
    ...                         ["(A.name: Homer)", "(A.name: Vergil)"])
    """
    canonical = sql_to_canonical(sql, database.schema)
    engine = NedExplain(
        canonical, database=database, config=config, cache=cache
    )
    return engine.explain_many(why_not_questions, budget=budget)


def explain_outcomes(
    database: Database,
    sql: str,
    why_not_questions,
    config: NedExplainConfig | None = None,
    cache: EvaluationCache | None = None,
    budget: Budget | None = None,
    retry: RetryPolicy | None = None,
    fallback_baseline: bool = False,
    journal: BatchJournal | None = None,
    workers: int = 1,
    queue_size: int | None = None,
    shed_after: int | None = None,
    batch_deadline_s: float | None = None,
    cancel: CancellationToken | None = None,
):
    """Fault-isolating variant of :func:`explain_batch`.

    Always returns one :class:`~repro.robustness.QuestionOutcome` per
    question -- a report, or a structured failure (error class, phase,
    budget spent) when that question failed.  Never raises for a
    per-question failure.  The resilience knobs (*retry*,
    *fallback_baseline*, *journal*) and the parallel-executor knobs
    (*workers*, *queue_size*, *shed_after*, *batch_deadline_s*,
    *cancel*) are forwarded to
    :meth:`~repro.core.nedexplain.NedExplain.explain_each`.
    """
    canonical = sql_to_canonical(sql, database.schema)
    engine = NedExplain(
        canonical, database=database, config=config, cache=cache
    )
    return engine.explain_each(
        why_not_questions,
        budget=budget,
        retry=retry,
        fallback_baseline=fallback_baseline,
        journal=journal,
        workers=workers,
        queue_size=queue_size,
        shed_after=shed_after,
        batch_deadline_s=batch_deadline_s,
        cancel=cancel,
    )


__version__ = "1.0.0"

__all__ = [
    "AggregateCall",
    "BatchError",
    "BatchJournal",
    "Budget",
    "BudgetExceededError",
    "CacheStats",
    "CancellationToken",
    "CanonicalQuery",
    "CircuitBreaker",
    "CircuitBreakerBoard",
    "ConfigurationError",
    "CTuple",
    "Database",
    "DatabaseInstance",
    "DegradationLadder",
    "EvaluationCache",
    "ExecutionContext",
    "FailureInfo",
    "FaultPlan",
    "JoinPair",
    "ManualClock",
    "MetricsRegistry",
    "NedExplain",
    "NedExplainConfig",
    "NedExplainReport",
    "ParallelExecutor",
    "Predicate",
    "QuestionOutcome",
    "Renaming",
    "ReplayedOutcome",
    "ReproError",
    "RetryPolicy",
    "SPJASpec",
    "Tracer",
    "Tuple",
    "UnionSpec",
    "attr_attr_cmp",
    "attr_cmp",
    "baseline",
    "bench",
    "canonical_from_tree",
    "canonicalize",
    "core",
    "current_tracer",
    "evaluate_query",
    "execution_context",
    "explain_batch",
    "explain_outcomes",
    "explain_sql",
    "get_default_cache",
    "load_database",
    "nedexplain",
    "obs",
    "parse_predicate",
    "query_fingerprint",
    "relational",
    "render_trace",
    "robustness",
    "save_database",
    "sql_to_canonical",
    "suggest_repairs",
    "tracing",
    "use_clock",
    "verify_repair",
    "why_not",
    "workloads",
    "write_chrome_trace",
    "write_trace_jsonl",
]
