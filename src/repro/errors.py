"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class SchemaError(ReproError):
    """A relation schema, tuple type, or database schema is malformed.

    Raised, for instance, when a tuple is inserted into a relation whose
    schema it does not match, or when two joined subqueries share input
    relation aliases (violating Def. 2.2's disjointness requirement).
    """


class QueryError(ReproError):
    """A query tree is structurally invalid.

    Examples: a projection referencing attributes outside its child's
    target type, a union of incompatible target types, or a renaming
    whose triples do not mention the joined types.
    """


class ConditionError(ReproError):
    """A selection / join / c-tuple condition is malformed."""


class RenamingError(QueryError):
    """A renaming (Def. 2.1) is inconsistent with the types it maps."""


class EvaluationError(ReproError):
    """Evaluation of a well-formed query failed on a given instance."""


class IntegrityError(ReproError):
    """A database integrity constraint (key, not-null) was violated."""


class UnknownRelationError(ReproError):
    """A referenced relation does not exist in the database."""


class WhyNotQuestionError(ReproError):
    """A Why-Not question (predicate / c-tuple, Defs. 2.4-2.6) is invalid.

    Raised when the question's type is not contained in the query's
    target type, when a condition references an unbound variable, or
    when the predicate is empty.
    """


class UnsupportedQueryError(ReproError):
    """The algorithm cannot handle this query class.

    The Why-Not baseline raises this for aggregation queries: the
    original implementation did not support aggregation (its rows are
    reported as "n.a." in the paper's Table 5).
    """


class SqlSyntaxError(ReproError):
    """The SQL frontend could not lex or parse the input text."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class ConfigurationError(ReproError):
    """A tunable (cache size, workload parameter, budget limit) is
    invalid -- the caller configured the library inconsistently."""


class BudgetExceededError(ReproError):
    """An execution budget was exhausted mid-evaluation.

    Raised cooperatively by the tick checks that
    :class:`repro.robustness.budget.ExecutionContext` threads through
    the evaluator, the compatible-set computation, and the NedExplain
    traversal.  Carries enough state for the caller to return an
    explicit best-effort answer instead of nothing:

    ``resource``
        which limit was hit (``"deadline"``, ``"rows"``,
        ``"comparisons"``, or ``"injected"`` for fault injection);
    ``spent``
        a :class:`repro.robustness.budget.BudgetSpent` snapshot;
    ``phase``
        the algorithm phase active when the budget ran out;
    ``partial``
        the partially-filled TabQ of the in-flight c-tuple, if the
        traversal had started one;
    ``partial_answer``
        a degraded :class:`repro.core.answers.WhyNotAnswer` built from
        the detailed entries accumulated before exhaustion.
    """

    def __init__(
        self,
        message: str,
        resource: str | None = None,
        spent=None,
        phase: str | None = None,
        partial=None,
    ):
        super().__init__(message)
        self.resource = resource
        self.spent = spent
        self.phase = phase
        self.partial = partial
        self.partial_answer = None


class InjectedFaultError(ReproError):
    """A deterministic fault injected by :mod:`repro.robustness.faults`.

    Only ever raised while a :class:`~repro.robustness.faults.FaultPlan`
    is installed (the chaos test suite); carries the named site and the
    invocation index at which the plan fired.
    """

    def __init__(
        self,
        message: str,
        site: str | None = None,
        call_index: int | None = None,
    ):
        super().__init__(message)
        self.site = site
        self.call_index = call_index


class LoadShedError(ReproError):
    """A question was refused admission by the load-shedding policy.

    Raised (as the structured ``error`` of a shed
    :class:`~repro.robustness.outcomes.QuestionOutcome`, never as an
    escaping exception) when a batch runs with ``shed_after=N`` and the
    question arrived after the admission quota was spent.  A shed
    question did no work at all -- re-submitting it without the quota
    produces the normal answer.
    """

    def __init__(self, message: str, index: int | None = None):
        super().__init__(message)
        self.index = index


class CancelledError(ReproError):
    """A question was cancelled before it started.

    Attached to the explicit ``cancelled`` outcomes a draining batch
    produces for its not-yet-started questions -- after a SIGINT/SIGTERM
    drain request or once the batch deadline passed.  In-flight
    questions are never interrupted (cancellation is cooperative); a
    cancelled question simply never ran and can be recomputed by a
    resumed batch.
    """

    def __init__(self, message: str, reason: str | None = None):
        super().__init__(message)
        self.reason = reason


class JournalError(ReproError):
    """A batch journal cannot be trusted for the requested resume.

    Raised when a journal record at some index names a different
    question than the batch being resumed -- replaying it would silently
    merge two unrelated runs.  Torn or corrupt trailing records are
    *not* an error: the write-ahead log simply stops replaying at the
    first record that fails its checksum (crash-safety by design).
    """


class StorageError(ReproError):
    """A storage backend operation failed.

    Raised by :mod:`repro.storage` for disk-level failures (short
    writes, ``ENOSPC``, ``EIO``, torn renames) and for corrupt
    artifacts the recovery protocol refuses to trust.  ``path`` names
    the artifact involved and ``errno`` carries the OS error number
    when the failure came from the operating system (or from the
    fault-injection shim imitating it).
    """

    def __init__(
        self,
        message: str,
        path: str | None = None,
        errno: int | None = None,
    ):
        super().__init__(message)
        self.path = path
        self.errno = errno


class ReplicaUnavailableError(StorageError):
    """A replica could not be reached through its transport.

    Raised by :class:`repro.storage.remote.RemoteIO` when the simulated
    network drops the operation, the replica is partitioned away, or
    its process is down.  Carries the replica id so quorum accounting
    and the per-replica circuit breakers know *which* leg failed.
    """

    def __init__(
        self,
        message: str,
        replica: str | None = None,
        reason: str | None = None,
        path: str | None = None,
    ):
        super().__init__(message, path=path)
        self.replica = replica
        self.reason = reason


class QuorumError(StorageError):
    """Too few replicas acknowledged an operation.

    Raised by :class:`repro.storage.replicated.ReplicatedBackend` when
    a write lands on fewer than W replicas or a read can gather fewer
    than R replies.  ``acks`` and ``required`` carry the quorum
    arithmetic for the error envelope and the metrics.
    """

    def __init__(
        self,
        message: str,
        acks: int | None = None,
        required: int | None = None,
        path: str | None = None,
    ):
        super().__init__(message, path=path)
        self.acks = acks
        self.required = required


class QuotaExceededError(ReproError):
    """A tenant exhausted its request quota.

    Raised (and mapped to HTTP 429 by the service layer) when the
    tenant's token bucket has no token for the request.  Carries the
    seconds until the bucket refills enough to admit one request, so
    callers -- and the ``Retry-After`` response header -- can tell the
    client exactly when retrying becomes useful.
    """

    def __init__(
        self,
        message: str,
        tenant: str | None = None,
        retry_after_s: float | None = None,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_s = retry_after_s


class ServiceError(ReproError):
    """A why-not service request failed at the HTTP layer.

    Raised by :mod:`repro.service.client` for transport failures
    (connection refused, timeouts, malformed responses) and by
    :meth:`~repro.service.client.ServiceResponse.raise_for_status` for
    error envelopes the server returned.  ``status`` carries the HTTP
    status code when one was received (``None`` for transport errors).
    """

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


class BatchError(ReproError):
    """At least one question of a fault-isolated batch failed.

    The batch still ran to completion: ``outcomes`` holds one
    :class:`repro.robustness.outcomes.QuestionOutcome` per question, in
    question order, so no answered question is lost to the failure.
    """

    def __init__(self, message: str, outcomes=()):
        super().__init__(message)
        self.outcomes = tuple(outcomes)
