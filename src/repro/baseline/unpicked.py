"""Unpicked data items -- the Why-Not baseline's notion of compatibles.

The Why-Not algorithm of Chapman & Jagadish (SIGMOD 2009) selects
*unpicked data items*: "input tuples that contain pieces of data of the
missing answer" (paper, Sec. 1).  Two deliberate differences from
NedExplain's compatibility (Def. 2.8) reproduce the baseline's
documented failures:

* matching is **per attribute-value pair, independently** -- the
  requirement that pairs referencing one relation co-occur in one tuple
  is absent, so a question like *(name: Homer, price: 49)* is "found"
  even when the two values never meet in one result tuple;
* attributes are matched by **unqualified name** against every
  relation -- the question's ``C2.type`` also selects items from the
  self-joined alias ``C1`` (the Crime6/Crime7 failure), and a renamed
  output attribute like Imdb2's ``name`` selects from every relation
  exposing a ``name`` column.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.algebra import Join, Query, Union
from ..relational.conditions import Var, is_satisfiable
from ..relational.instance import DatabaseInstance
from ..relational.tuples import Tuple, Value, unqualified_name
from ..core.whynot_question import CTuple, Predicate


@dataclass(frozen=True)
class AttributeConstraint:
    """One attribute-value pair of the question, taken in isolation."""

    #: the attribute as written in the question (possibly qualified)
    attribute: str
    #: the unqualified names used for matching (the attribute's own
    #: short name, expanded through the query's renamings)
    short_names: frozenset[str]
    #: constant value, or None when the entry is a variable
    constant: Value | None
    #: variable name when the entry is a variable
    variable: str | None
    #: the c-tuple's condition (checked for satisfiability per binding)
    ctuple: CTuple

    def matches(self, value: Value) -> bool:
        if self.variable is None:
            return value == self.constant
        return is_satisfiable(
            self.ctuple.condition, {self.variable: value}
        )


@dataclass(frozen=True)
class UnpickedItem:
    """A source tuple selected for one attribute constraint."""

    tuple: Tuple
    alias: str
    constraint: AttributeConstraint

    @property
    def tid(self) -> str:
        assert self.tuple.tid is not None
        return self.tuple.tid


def _renaming_origins(root: Query) -> dict[str, list[str]]:
    """Map renamed attribute -> its origin attributes, per join/union."""
    origins: dict[str, list[str]] = {}
    for node in root.postorder():
        if isinstance(node, (Join, Union)):
            for triple in node.renaming:
                origins.setdefault(triple.new, []).extend(
                    (triple.left, triple.right)
                )
    return origins


def _expanded_short_names(attribute: str, root: Query) -> frozenset[str]:
    """Unqualified names the constraint may match.

    The original algorithm knows the workflow structure, so an output
    attribute introduced by a renaming is matched through its origins
    -- but, crucially, *without* keeping the alias qualification.
    """
    origins = _renaming_origins(root)
    expanded: set[str] = set()
    frontier = [attribute]
    while frontier:
        current = frontier.pop()
        if current in origins:
            frontier.extend(origins[current])
        else:
            expanded.add(unqualified_name(current))
    return frozenset(expanded)


def attribute_constraints(
    predicate: Predicate, root: Query
) -> list[AttributeConstraint]:
    """Split the question into independent attribute constraints."""
    out: list[AttributeConstraint] = []
    for tc in predicate:
        for attribute, entry in tc.entries():
            short_names = _expanded_short_names(attribute, root)
            if isinstance(entry, Var):
                constraint = AttributeConstraint(
                    attribute=attribute,
                    short_names=short_names,
                    constant=None,
                    variable=entry.name,
                    ctuple=tc,
                )
            else:
                constraint = AttributeConstraint(
                    attribute=attribute,
                    short_names=short_names,
                    constant=entry,
                    variable=None,
                    ctuple=tc,
                )
            out.append(constraint)
    return out


def find_unpicked_items(
    predicate: Predicate, instance: DatabaseInstance, root: Query
) -> list[UnpickedItem]:
    """All unpicked data items over the query input instance.

    Every relation whose schema exposes an attribute with one of the
    constraint's unqualified names is searched -- including other
    aliases of a self-joined relation.
    """
    items: list[UnpickedItem] = []
    constraints = attribute_constraints(predicate, root)
    for alias in instance.relation_names():
        relation = instance.relation(alias)
        schema_attrs = {
            unqualified_name(a): a for a in relation.schema.type
        }
        for constraint in constraints:
            matched = [
                schema_attrs[name]
                for name in sorted(constraint.short_names)
                if name in schema_attrs
            ]
            if not matched:
                continue
            for t in relation:
                if any(constraint.matches(t[q]) for q in matched):
                    items.append(
                        UnpickedItem(
                            tuple=t, alias=alias, constraint=constraint
                        )
                    )
    return items
