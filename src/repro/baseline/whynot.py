"""The Why-Not algorithm (Chapman & Jagadish, SIGMOD 2009), bottom-up.

This is the paper's comparison baseline, re-implemented as described in
its Sections 1 and 4 -- *including the shortcomings the paper
documents*, which the test suite asserts explicitly:

* items matched per attribute-value by unqualified name (self-join
  confusion, scattered-value blindness) -- see
  :mod:`repro.baseline.unpicked`;
* plain (non-valid) successor tracing -- see
  :mod:`repro.baseline.tracing`;
* a constraint whose item reaches the final result makes the algorithm
  "believe the answer is not missing": no blame is reported for it
  (the Crime8 / Imdb2 behaviour);
* the returned *frontier* keeps only the picky manipulations closest
  to the sources (deepest in the tree), which is why the paper's
  Table 5 shows a single subquery per use case where NedExplain's
  detailed answer splits blame across several;
* no aggregation support: :class:`~repro.errors.UnsupportedQueryError`
  is raised (the "n.a." rows of Table 5);
* each item is traced independently over the full intermediate results
  (the per-item lineage lookups that, through Trio, dominated the
  original implementation's runtime -- the reason behind Fig. 6's
  ordering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import UnsupportedQueryError
from ..obs.clock import perf_counter
from ..robustness.budget import (
    Budget,
    ExecutionContext,
    current_context,
    execution_context,
)
from ..relational.algebra import Aggregate, Difference, Query
from ..relational.database import Database
from ..relational.evalcache import EvaluationCache, get_default_cache
from ..relational.evaluator import EvaluationResult, evaluate
from ..relational.instance import DatabaseInstance
from ..core.canonical import CanonicalQuery
from ..core.whynot_question import CTuple, Predicate, parse_predicate
from .tracing import ItemTrace, trace_item, trace_item_top_down
from .unpicked import UnpickedItem, find_unpicked_items


@dataclass
class WhyNotBaselineReport:
    """Output of one Why-Not run."""

    #: frontier picky manipulations (the algorithm's answer)
    answers: tuple[Query, ...] = ()
    #: all item traces, for inspection
    traces: tuple[ItemTrace, ...] = ()
    #: constraints whose items reached the result ("not missing")
    satisfied_constraints: tuple[str, ...] = ()
    #: wall-clock milliseconds, split in two phases
    phase_times_ms: dict[str, float] = field(default_factory=dict)

    @property
    def answer_labels(self) -> tuple[str, ...]:
        return tuple(q.name or q.describe() for q in self.answers)

    @property
    def total_time_ms(self) -> float:
        return sum(self.phase_times_ms.values())

    def is_empty(self) -> bool:
        return not self.answers

    def to_dict(self) -> dict:
        """JSON-ready view (the ``--json`` CLI report format; also the
        shape journalled for baseline-fallback outcomes)."""
        return {
            "answers": list(self.answer_labels),
            "satisfied_constraints": list(self.satisfied_constraints),
            "phase_times_ms": dict(self.phase_times_ms),
            "total_time_ms": self.total_time_ms,
        }

    def summary(self) -> str:
        lines = []
        if self.answers:
            lines.append("answers: " + ", ".join(self.answer_labels))
        else:
            lines.append("answers: (none)")
        if self.satisfied_constraints:
            lines.append(
                "believed not missing: "
                + ", ".join(self.satisfied_constraints)
            )
        return "\n".join(lines)


class WhyNotBaseline:
    """Bottom-up Why-Not over the same canonical trees as NedExplain.

    Parameters mirror :class:`~repro.core.nedexplain.NedExplain` so the
    benchmark harness can swap algorithms freely.
    """

    def __init__(
        self,
        canonical: CanonicalQuery,
        database: Database | None = None,
        instance: DatabaseInstance | None = None,
        strategy: str = "bottom-up",
        cache: EvaluationCache | None = None,
        use_cache: bool = True,
    ):
        if (database is None) == (instance is None):
            raise UnsupportedQueryError(
                "provide exactly one of database / instance"
            )
        if strategy not in ("bottom-up", "top-down"):
            raise UnsupportedQueryError(
                f"unknown traversal strategy {strategy!r}; the original "
                "algorithm offers 'bottom-up' and 'top-down'"
            )
        self.strategy = strategy
        self.canonical = canonical
        if database is not None:
            self.instance = database.input_instance(canonical.aliases)
        else:
            assert instance is not None
            self.instance = instance
        #: evaluation cache shared with NedExplain (None = evaluate
        #: from scratch on every explain call, the pre-cache behaviour)
        self.cache: EvaluationCache | None = None
        if use_cache:
            self.cache = cache if cache is not None else get_default_cache()
        self._check_supported()

    def _check_supported(self) -> None:
        for node in self.canonical.root.postorder():
            if isinstance(node, Aggregate):
                raise UnsupportedQueryError(
                    "the Why-Not baseline does not support aggregation "
                    "(reported as n.a. in the paper's Table 5)"
                )
            if isinstance(node, Difference):
                raise UnsupportedQueryError(
                    "the Why-Not baseline handles monotone workflows "
                    "only; set difference is unsupported"
                )

    # ------------------------------------------------------------------
    def explain(
        self,
        predicate: Predicate | CTuple | str,
        budget: Budget | None = None,
    ) -> WhyNotBaselineReport:
        """Run the Why-Not algorithm for *predicate*.

        With a *budget*, evaluation and tracing are tick-checked; on
        exhaustion a :class:`~repro.errors.BudgetExceededError`
        propagates (the baseline has no notion of a partial answer --
        NedExplain's degraded reports are part of what the re-design
        adds over it).
        """
        if budget is not None and current_context() is None:
            with execution_context(ExecutionContext(budget)):
                return self.explain(predicate)
        if isinstance(predicate, str):
            predicate = parse_predicate(predicate)
        if isinstance(predicate, CTuple):
            predicate = Predicate.of(predicate)

        phases: dict[str, float] = {}
        started = perf_counter()
        items = find_unpicked_items(
            predicate, self.instance, self.canonical.root
        )
        phases["UnpickedFinder"] = (perf_counter() - started) * 1000.0

        started = perf_counter()
        # The original implementation evaluates the workflow through
        # Trio and then looks lineage up per item; we evaluate once
        # (served from the shared cache when enabled) and trace each
        # item independently over the intermediate results.
        if self.cache is not None:
            result = self.cache.get_or_evaluate(
                self.canonical.root, self.instance, self.canonical.aliases
            )
        else:
            result = evaluate(self.canonical.root, self.instance)
        tracer = (
            trace_item if self.strategy == "bottom-up"
            else trace_item_top_down
        )
        traces = tuple(
            tracer(self.canonical.root, result, item) for item in items
        )
        answers, satisfied = self._frontier(traces)
        phases["Tracing"] = (perf_counter() - started) * 1000.0

        return WhyNotBaselineReport(
            answers=answers,
            traces=traces,
            satisfied_constraints=satisfied,
            phase_times_ms=phases,
        )

    def _frontier(
        self, traces: tuple[ItemTrace, ...]
    ) -> tuple[tuple[Query, ...], tuple[str, ...]]:
        """Frontier picky manipulations over all traced items.

        A constraint with any surviving item is considered satisfied
        ("the answer is not missing") and produces no blame.  Among the
        remaining blamed manipulations, only the ones closest to the
        sources (maximal depth) are kept.
        """
        survived_constraints = {
            trace.item.constraint.attribute
            for trace in traces
            if trace.survived
        }
        blamed = [
            trace
            for trace in traces
            if not trace.survived
            and trace.item.constraint.attribute not in survived_constraints
            and trace.blamed is not None
        ]
        if not blamed:
            return (), tuple(sorted(survived_constraints))
        deepest = max(trace.blamed_depth for trace in blamed)
        seen: set[int] = set()
        answers: list[Query] = []
        for trace in blamed:
            if trace.blamed_depth != deepest:
                continue
            assert trace.blamed is not None
            if id(trace.blamed) not in seen:
                seen.add(id(trace.blamed))
                answers.append(trace.blamed)
        return tuple(answers), tuple(sorted(survived_constraints))


def whynot(
    canonical: CanonicalQuery,
    predicate: Predicate | CTuple | str,
    database: Database | None = None,
    instance: DatabaseInstance | None = None,
) -> WhyNotBaselineReport:
    """One-shot API mirroring :func:`repro.core.nedexplain.nedexplain`."""
    return WhyNotBaseline(
        canonical, database=database, instance=instance
    ).explain(predicate)
