"""Successor tracing for the Why-Not baseline.

The baseline traces each unpicked item *independently* through the
query tree, following **plain** successors: any output tuple whose
lineage contains the item (no validity requirement -- the "too
permissive notion of successor tuple" the paper criticises in Sec. 1).

For one item, the *blaming manipulation* is the first subquery on the
item's leaf-to-root path whose output contains no successor of the
item.  When that subquery is a join whose other input is empty, the
blame is redirected down to the lowest subquery that produced the empty
set (this is how the original algorithm answers use case Crime5 with
the empty selection rather than the join above it).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QueryError
from ..relational.algebra import Query, RelationLeaf
from ..relational.evaluator import EvaluationResult
from ..relational.tuples import Tuple
from ..robustness.budget import current_context
from .unpicked import UnpickedItem


@dataclass(frozen=True)
class ItemTrace:
    """Outcome of tracing one unpicked item."""

    item: UnpickedItem
    #: the manipulation blamed for losing the item (None = survived)
    blamed: Query | None
    #: True when a successor of the item reaches the query result
    survived: bool
    #: depth of the blamed node in the tree (root = 0); -1 if survived
    blamed_depth: int = -1


def leaf_of(root: Query, alias: str) -> RelationLeaf:
    """The leaf reading *alias*."""
    for leaf in root.leaves():
        if leaf.alias == alias:
            return leaf
    raise QueryError(f"no leaf for alias {alias!r}")


def path_to_root(root: Query, node: Query) -> list[Query]:
    """Nodes from *node* (exclusive) up to the root (inclusive)."""
    path: list[Query] = []
    current = node
    while current is not root:
        parent = root.parent_of(current)
        assert parent is not None
        path.append(parent)
        current = parent
    return path


def _derives_from(candidate: Tuple, tid: str) -> bool:
    """Recursive lineage lookup for one candidate tuple.

    This walks the derivation (parent) chains instead of consulting the
    evaluator's precomputed base-lineage sets: it models the original
    implementation's per-item lineage queries through Trio -- the
    overhead source the paper blames for Why-Not's runtime (Sec. 4.3).
    NedExplain, by contrast, matches tuple identifiers directly (its
    "queries directly to the underlying Postgres database based on
    their unique identifiers").
    """
    if candidate.tid == tid:
        return True
    return any(
        _derives_from(parent, tid) for parent in candidate.parents
    )


def trace_item(
    root: Query, result: EvaluationResult, item: UnpickedItem
) -> ItemTrace:
    """Trace one unpicked item bottom-up (plain successors)."""
    tid = item.tid
    leaf = leaf_of(root, item.alias)
    context = current_context()
    for node in path_to_root(root, leaf):
        if context is not None:
            # one lineage lookup per output candidate of this node
            context.tick_comparisons(len(result.output(node)))
        has_successor = any(
            _derives_from(t, tid) for t in result.output(node)
        )
        if not has_successor:
            blamed = _redirect_to_empty_source(node, result)
            return ItemTrace(
                item=item,
                blamed=blamed,
                survived=False,
                blamed_depth=root.depth_of(blamed),
            )
    return ItemTrace(item=item, blamed=None, survived=True)


def trace_item_top_down(
    root: Query, result: EvaluationResult, item: UnpickedItem
) -> ItemTrace:
    """Top-down variant of the Why-Not traversal.

    The original paper proposes two traversal orders and states they
    return the same answers, differing only in efficiency (our Sec. 4
    quotes this).  Top-down starts at the root: an item with a
    successor in the final result is settled with a single lookup;
    otherwise the walk descends until successors appear, blaming the
    manipulation just above that point.
    """
    tid = item.tid
    leaf = leaf_of(root, item.alias)
    path = path_to_root(root, leaf)  # leaf-adjacent ... root
    context = current_context()
    blamed_candidate: Query | None = None
    for node in reversed(path):
        if context is not None:
            context.tick_comparisons(len(result.output(node)))
        has_successor = any(
            _derives_from(t, tid) for t in result.output(node)
        )
        if has_successor:
            break
        blamed_candidate = node
    if blamed_candidate is None:
        return ItemTrace(item=item, blamed=None, survived=True)
    blamed = _redirect_to_empty_source(blamed_candidate, result)
    return ItemTrace(
        item=item,
        blamed=blamed,
        survived=False,
        blamed_depth=root.depth_of(blamed),
    )


def _redirect_to_empty_source(
    node: Query, result: EvaluationResult
) -> Query:
    """Redirect blame from a starving operator to the empty producer.

    When a binary manipulation lost the item because one of its inputs
    was empty, descend into the empty side down to the lowest subquery
    that still received input but produced nothing.
    """
    current = node
    while True:
        empty_child = None
        for child in current.children:
            if not result.output(child) and result.flat_input(child):
                empty_child = child
                break
        if empty_child is None:
            return current
        current = empty_child
