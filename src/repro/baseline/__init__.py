"""The Why-Not baseline (Chapman & Jagadish, SIGMOD 2009).

The paper's comparison point, reproduced bottom-up *with its documented
shortcomings* so the comparative evaluation (Table 5, Fig. 6) can be
regenerated.  See :mod:`repro.baseline.whynot` for the full list of
reproduced behaviours.
"""

from .tracing import (
    ItemTrace,
    leaf_of,
    path_to_root,
    trace_item,
    trace_item_top_down,
)
from .unpicked import (
    AttributeConstraint,
    UnpickedItem,
    attribute_constraints,
    find_unpicked_items,
)
from .whynot import WhyNotBaseline, WhyNotBaselineReport, whynot

__all__ = [
    "AttributeConstraint",
    "ItemTrace",
    "UnpickedItem",
    "WhyNotBaseline",
    "WhyNotBaselineReport",
    "attribute_constraints",
    "find_unpicked_items",
    "leaf_of",
    "path_to_root",
    "trace_item",
    "trace_item_top_down",
    "whynot",
]
