"""The columnar evaluation engine and its lossless row conversion.

:func:`evaluate_columnar` drives the batch operators of
:mod:`repro.columnar.ops` over a query tree, mirroring the row
engine's per-node protocol (fault points, deadline checks, operator
counters) while producing :class:`~repro.columnar.table.Batch`\\ es
instead of tuple lists.  The :class:`ColumnarResult` it returns stores
one batch per node and converts **on demand** -- and exactly once --
to a row :class:`~repro.relational.evaluator.EvaluationResult` whose
tuples, lineage, and parent links are indistinguishable from a row
evaluation (the differential suites assert this across every Table 4
use case and randomized workloads).

The conversion boundary is the deliberate cost split: batch execution
never builds per-row ``Tuple`` objects, dicts, or hashes; the row view
pays that price once per cache entry, only when a consumer (TabQ, the
compatible finder, reports) actually needs row objects.
"""

from __future__ import annotations

import threading

from ..errors import EvaluationError
from ..obs.trace import current_tracer
from ..relational.algebra import (
    Aggregate,
    Difference,
    Join,
    Project,
    Query,
    RelationLeaf,
    Select,
    Union,
    validate_tree,
)
from ..relational.evaluator import _EVAL_SERIALS, EvaluationResult
from ..relational.instance import DatabaseInstance
from ..relational.tuples import Tuple
from ..robustness.budget import current_context
from ..robustness.faults import fault_point
from .ops import (
    NodeObserver,
    apply_aggregate,
    apply_difference,
    apply_join,
    apply_leaf,
    apply_project,
    apply_select,
    apply_union,
)
from .table import Batch, columnar_table


class ColumnarResult:
    """Per-node batches of one columnar evaluation.

    Keyed by node identity with strong node references (the same
    id-reuse safety contract as
    :class:`~repro.relational.evaluator.EvaluationResult`).  The row
    view is memoized: the first consumer pays the conversion, every
    later one -- including every cache hit -- shares it.
    """

    def __init__(self, root: Query):
        self.root = root
        self._batches: dict[int, Batch] = {}
        self._nodes: dict[int, Query] = {}
        self._row_view: EvaluationResult | None = None
        self._view_lock = threading.Lock()

    def set_batch(self, node: Query, batch: Batch) -> None:
        self._nodes[id(node)] = node
        self._batches[id(node)] = batch

    def batch(self, node: Query) -> Batch:
        try:
            return self._batches[id(node)]
        except KeyError:
            raise EvaluationError(
                f"node {node!r} was not evaluated"
            ) from None

    @property
    def result_batch(self) -> Batch:
        """The root's output batch, i.e. ``Q(I)`` columnar."""
        return self.batch(self.root)

    def check_complete(self) -> None:
        """Assert every node of the tree has a batch (cache invariant)."""
        for node in self.root.postorder():
            self.batch(node)

    # ------------------------------------------------------------------
    # Lossless conversion
    # ------------------------------------------------------------------
    def row_view(self) -> EvaluationResult:
        """The (memoized) row-engine view of this evaluation."""
        with self._view_lock:
            if self._row_view is None:
                self._row_view = self._convert()
            return self._row_view

    def _convert(self) -> EvaluationResult:
        view = EvaluationResult(self.root)
        outputs: dict[int, list[Tuple]] = {}
        for node in self.root.postorder():
            batch = self.batch(node)
            if isinstance(node, RelationLeaf):
                assert batch.source is not None
                stored = list(batch.source)
                view.set_node(node, [list(stored)], stored)
                outputs[id(node)] = stored
                continue
            child_outs = [outputs[id(c)] for c in node.children]
            out = self._convert_node(node, batch, child_outs)
            view.set_node(node, [list(co) for co in child_outs], out)
            outputs[id(node)] = out
        return view

    @staticmethod
    def _convert_node(
        node: Query, batch: Batch, child_outs: list[list[Tuple]]
    ) -> list[Tuple]:
        attrs = batch.attrs
        cols = [batch.column(a) for a in attrs]
        value_rows = list(zip(*cols)) if batch.nrows else []
        lineage = batch.lineage
        model = batch.parents
        out: list[Tuple] = []
        if model is None:
            raise EvaluationError(
                f"batch of {node!r} has no parent model"
            )
        kind = model[0]
        if kind == "rows":
            parents = child_outs[0]
            for row, i in enumerate(model[1]):
                out.append(
                    Tuple(
                        dict(zip(attrs, value_rows[row])),
                        lineage=lineage[row],
                        parents=(parents[i],),
                    )
                )
        elif kind == "tagged":
            for row, (slot, i) in enumerate(model[1]):
                out.append(
                    Tuple(
                        dict(zip(attrs, value_rows[row])),
                        lineage=lineage[row],
                        parents=(child_outs[slot][i],),
                    )
                )
        elif kind == "pairs":
            left_out, right_out = child_outs
            for row, (li, ri) in enumerate(model[1]):
                out.append(
                    Tuple(
                        dict(zip(attrs, value_rows[row])),
                        lineage=lineage[row],
                        parents=(left_out[li], right_out[ri]),
                    )
                )
        elif kind == "groups":
            parents = child_outs[0]
            for row, group in enumerate(model[1]):
                out.append(
                    Tuple(
                        dict(zip(attrs, value_rows[row])),
                        lineage=lineage[row],
                        parents=tuple(parents[i] for i in group),
                    )
                )
        else:  # pragma: no cover - defensive
            raise EvaluationError(
                f"unknown parent model {kind!r} for {node!r}"
            )
        return out

    def rebind(self, new_root: Query) -> EvaluationResult:
        """Row view re-keyed onto a structurally equal tree."""
        view = self.row_view()
        if view.root is new_root:
            return view
        return view.rebind(new_root)


def evaluate_columnar(
    root: Query, instance: DatabaseInstance
) -> ColumnarResult:
    """Evaluate *root* over *instance* batch-at-a-time.

    Observable protocol parity with the row
    :func:`~repro.relational.evaluator.evaluate`: one
    ``operator.apply`` fault point and one deadline check per node,
    one ``evaluator.operators`` counter increment and one
    ``evaluator.rows_out`` observation per node, and budget row /
    comparison *totals* identical to the per-tuple loops.  Operator
    spans are per batch (chunk), tagged ``batch_index`` /
    ``batch_size`` / ``eval``; ``evaluator.batches`` counts them.
    """
    validate_tree(root)
    result = ColumnarResult(root)
    context = current_context()
    tracer = current_tracer()
    serial = next(_EVAL_SERIALS)
    for index, node in enumerate(root.postorder()):
        fault_point("operator.apply")
        if context is not None:
            context.check_deadline()
        obs = NodeObserver(tracer, context, node, index, serial)
        if isinstance(node, RelationLeaf):
            table = columnar_table(instance, node.alias)
            batch = apply_leaf(node, table.batch, obs)
        elif isinstance(node, Select):
            batch = apply_select(node, result.batch(node.child), obs)
        elif isinstance(node, Project):
            batch = apply_project(node, result.batch(node.child), obs)
        elif isinstance(node, Join):
            batch = apply_join(
                node,
                result.batch(node.left),
                result.batch(node.right),
                obs,
            )
        elif isinstance(node, Union):
            batch = apply_union(
                node,
                result.batch(node.left),
                result.batch(node.right),
                obs,
            )
        elif isinstance(node, Difference):
            batch = apply_difference(
                node,
                result.batch(node.left),
                result.batch(node.right),
                obs,
            )
        elif isinstance(node, Aggregate):
            batch = apply_aggregate(
                node, result.batch(node.child), obs
            )
        else:
            raise EvaluationError(
                f"columnar engine cannot evaluate node {node!r}"
            )
        if tracer is not None:
            tracer.metrics.counter("evaluator.operators").inc()
            tracer.metrics.counter("evaluator.batches").inc(
                obs.batches
            )
            tracer.metrics.histogram("evaluator.rows_out").observe(
                batch.nrows
            )
        result.set_batch(node, batch)
    return result
