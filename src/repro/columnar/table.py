"""Columnar storage: interned dictionaries, bitmaps, and batches.

The columnar engine stores a relation as one array per attribute plus
an interned-value :class:`Dictionary` per column (distinct values get
small integer codes; predicates are then decided once per *distinct*
value instead of once per row).  Selection vectors are
:class:`Bitmap` bitsets over row positions, combined with integer
bitwise operations.

Losslessness is non-negotiable: the row engine distinguishes ``5``
from ``5.0`` and ``True`` from ``1`` inside value dictionaries even
though Python hashes them equal, so the interner keys codes by
``(value.__class__, value)`` and decoding always returns the exact
original object.

A :class:`ColumnarTable` wraps one stored relation of a query input
instance.  Tables -- and the join hash indexes built on them -- are
memoized per ``(instance.data_key, alias)`` in a small LRU, so a query
served repeatedly from the evaluation cache scans and hashes each
stored relation once, not once per evaluation (the "hash tables built
once per cache entry" of the design).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Iterable, Iterator, Sequence

from ..errors import EvaluationError, UnknownRelationError
from ..relational.instance import DatabaseInstance, RelationInstance
from ..relational.tuples import Tuple, Value


class Dictionary:
    """An interned-value dictionary for one column.

    Codes are dense ints in insertion order.  The intern key is
    ``(value.__class__, value)`` so values that compare (and hash)
    equal across domains -- ``5`` / ``5.0`` / ``True`` / ``1`` --
    keep distinct codes and decode back to the exact original value.
    """

    __slots__ = ("_codes", "_values")

    def __init__(self) -> None:
        self._codes: dict[tuple[type, Value], int] = {}
        #: code -> original value (the decode table)
        self._values: list[Value] = []

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> Sequence[Value]:
        """The decode table: distinct values in first-seen order."""
        return self._values

    def encode(self, value: Value) -> int:
        """Intern *value*, returning its (possibly fresh) code."""
        key = (value.__class__, value)
        code = self._codes.get(key)
        if code is None:
            code = len(self._values)
            self._codes[key] = code
            self._values.append(value)
        return code

    def encode_many(self, values: Iterable[Value]) -> list[int]:
        """Intern a whole column at once."""
        codes = self._codes
        table = self._values
        out: list[int] = []
        for value in values:
            key = (value.__class__, value)
            code = codes.get(key)
            if code is None:
                code = len(table)
                codes[key] = code
                table.append(value)
            out.append(code)
        return out

    def decode(self, code: int) -> Value:
        """The exact original value interned under *code*."""
        return self._values[code]

    def codes_equal(self, value: Value) -> list[int]:
        """Codes whose stored value compares ``==`` to *value*.

        Plain Python equality, matching the row-side
        ``tuple_matches_ctuple`` constant check (so ``5`` finds a
        column value ``5.0`` and vice versa).
        """
        return [
            code
            for code, stored in enumerate(self._values)
            if stored == value
        ]


class Bitmap:
    """A selection vector: an immutable bitset over row positions.

    Backed by one Python big integer, so AND/OR/NOT over a whole batch
    are single interpreter operations regardless of row count.
    """

    __slots__ = ("nbits", "mask")

    def __init__(self, nbits: int, mask: int = 0):
        self.nbits = nbits
        self.mask = mask & ((1 << nbits) - 1) if nbits else 0

    @classmethod
    def from_bools(cls, bools: Sequence[bool]) -> "Bitmap":
        if not bools:
            return cls(0, 0)
        # C-level pack: truthiness indexes into "01", int() parses base 2
        bits = "".join(map("01".__getitem__, map(bool, reversed(bools))))
        return cls(len(bools), int(bits, 2))

    @classmethod
    def ones(cls, nbits: int) -> "Bitmap":
        return cls(nbits, (1 << nbits) - 1)

    @classmethod
    def zeros(cls, nbits: int) -> "Bitmap":
        return cls(nbits, 0)

    def __and__(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self.nbits, self.mask & other.mask)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self.nbits, self.mask | other.mask)

    def invert(self) -> "Bitmap":
        return Bitmap(self.nbits, ~self.mask)

    def count(self) -> int:
        return self.mask.bit_count()

    def get(self, index: int) -> bool:
        return bool((self.mask >> index) & 1)

    def indexes(self) -> Iterator[int]:
        """Row positions of the set bits, ascending."""
        mask = self.mask
        while mask:
            lsb = mask & -mask
            yield lsb.bit_length() - 1
            mask ^= lsb

    def indexes_in(self, start: int, stop: int) -> list[int]:
        """Set-bit positions within ``[start, stop)``, ascending."""
        width = stop - start
        mask = (self.mask >> start) & ((1 << width) - 1)
        out: list[int] = []
        while mask:
            lsb = mask & -mask
            out.append(start + lsb.bit_length() - 1)
            mask ^= lsb
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self.nbits == other.nbits and self.mask == other.mask

    def __hash__(self) -> int:
        return hash((self.nbits, self.mask))

    def __repr__(self) -> str:
        return f"Bitmap({self.nbits} bits, {self.count()} set)"


class Gather:
    """A lazily gathered column: ``source column at these row indexes``.

    The late-materialization backbone: operators describe their output
    columns as gathers over their inputs and only a consumer that
    actually reads a column (a downstream predicate, the row-view
    conversion, a join key) pays for materializing it.  A multi-join
    tree whose top projection keeps three attributes gathers three
    columns, not thirty.  Materialization is transitive (a gather over
    a gather chases the chain) and happens at most once -- the owning
    :class:`Batch` replaces the gather with the realized list.
    """

    __slots__ = ("batch", "attr", "indices", "codes")

    def __init__(
        self,
        batch: "Batch",
        attr: str,
        indices: list[int] | None,
        codes: bool = False,
    ):
        self.batch = batch
        self.attr = attr
        #: ``None`` = identity gather: the whole source column is the
        #: output (a full-keep projection/selection); the realized
        #: list is shared by reference -- columns are immutable.
        self.indices = indices
        #: gather the column's dictionary codes instead of its values
        self.codes = codes

    def materialize(self) -> list:
        if self.codes:
            source = self.batch.encoded(self.attr)[0]
        else:
            source = self.batch.column(self.attr)
        if self.indices is None:
            return source
        return list(map(source.__getitem__, self.indices))


class Batch:
    """One operator's columnar output (possibly lazily gathered).

    Attributes
    ----------
    attrs:
        Output attribute names in canonical (construction) order --
        the order the row engine's value dicts would carry.
    columns:
        One column per attribute, parallel to row positions: either a
        realized value list or a pending :class:`Gather`.  Always read
        through :meth:`column`, which materializes in place.
    lineage:
        Per-row base-tuple lineage (``frozenset`` of tids), shared by
        reference with input rows wherever the operator passes rows
        through unchanged.
    parents:
        The parent model used for lossless row conversion:
        ``None`` (leaf), ``("rows", [ri])`` (select/project/
        difference: one parent row in child 0), ``("tagged",
        [(slot, i)])`` (union), ``("pairs", [(li, ri)])`` (join),
        ``("groups", [[ri]])`` (aggregate).
    source:
        For leaf batches only: the stored row :class:`Tuple` objects,
        in row order (conversion returns these verbatim).
    codes:
        Optional dictionary encoding per attribute,
        ``attr -> (codes, Dictionary)`` with the code list itself
        possibly a pending :class:`Gather`; read through
        :meth:`encoded`.  Preserved through selection and projection
        so chained predicates stay code-driven.
    """

    __slots__ = (
        "attrs",
        "columns",
        "lineage",
        "parents",
        "source",
        "codes",
        "sig_hook",
        "unique_lineage",
        "lineage_aliases",
        "_indexes",
        "_signatures",
        "_signature_counts",
    )

    def __init__(
        self,
        attrs: Sequence[str],
        columns: dict[str, list],
        lineage: list[frozenset],
        parents: Any = None,
        source: list[Tuple] | None = None,
        codes: dict[str, tuple[list[int], Dictionary]] | None = None,
    ):
        self.attrs = tuple(attrs)
        self.columns = columns
        self.lineage = lineage
        self.parents = parents
        self.source = source
        self.codes = codes or {}
        #: optional derived-signature computer installed by the
        #: producing operator: ``hook(attrs) -> (signatures, count)``.
        #: Lets select/project/join outputs derive signatures from
        #: their *inputs'* (memoized) signatures without materializing
        #: any gathered column -- hashing then only ever happens at
        #: the leaves, once per cache entry.
        self.sig_hook = None
        #: rows have pairwise-distinct lineage sets.  Leaf lineage is
        #: ``{tid}`` with unique tids, and alias-disjoint joins
        #: preserve the property -- in which case any dedupe keyed on
        #: ``(values, lineage)`` is provably the identity and the
        #: operators skip their seen-set bookkeeping wholesale.
        self.unique_lineage = False
        #: tid prefixes (``alias`` of ``alias:k``) occurring in any
        #: row's lineage; disjoint prefix sets prove disjoint lineage
        #: domains between two join inputs.
        self.lineage_aliases: frozenset[str] = frozenset()
        #: memoized join hash indexes, keyed by the key-attribute tuple
        self._indexes: dict[tuple[str, ...], dict] = {}
        #: memoized row signatures, keyed by attribute subset
        self._signatures: dict[tuple[str, ...], list[int]] = {}
        #: distinct-class count per memoized signature subset
        self._signature_counts: dict[tuple[str, ...], int] = {}

    @property
    def nrows(self) -> int:
        return len(self.lineage)

    def column(self, attr: str) -> list:
        """The realized values of one column (materializing lazily)."""
        col = self.columns[attr]
        if isinstance(col, Gather):
            col = col.materialize()
            self.columns[attr] = col
        return col

    def encoded(self, attr: str) -> tuple[list[int], Dictionary] | None:
        """Dictionary codes of one column, if encoded (lazy-realized)."""
        entry = self.codes.get(attr)
        if entry is None:
            return None
        code_list, dictionary = entry
        if isinstance(code_list, Gather):
            code_list = code_list.materialize()
            entry = (code_list, dictionary)
            self.codes[attr] = entry
        return entry

    def row_signatures(self, attrs: Sequence[str]) -> list[int]:
        """Per-row value-equality classes over an attribute subset.

        Rows get the same signature iff their value tuples over
        *attrs* compare ``==`` -- exactly the value-equality the row
        engine's dedupe sees (``5`` and ``5.0`` share a class, as dict
        equality treats them).  Signatures let join and projection
        dedupe on two ints instead of hashing wide value tuples per
        output row, and they are memoized per subset, so leaf batches
        held by the table cache pay once per cache entry.  Signatures
        are only comparable within one batch.
        """
        key = tuple(attrs)
        cached = self._signatures.get(key)
        if cached is not None:
            return cached
        if self.sig_hook is not None:
            out, count = self.sig_hook(key)
        elif not key:
            out = [0] * self.nrows
            count = 1 if out else 0
        else:
            cols = [self.column(a) for a in key]
            classes: dict[tuple, int] = {}
            setdefault = classes.setdefault
            out = [
                setdefault(row, len(classes))
                for row in zip(*cols)
            ]
            count = len(classes)
        self._signatures[key] = out
        self._signature_counts[key] = count
        return out

    def signature_count(self, attrs: Sequence[str]) -> int:
        """Number of distinct signature classes over *attrs*.

        ``signature_count(attrs) == nrows`` proves every row is
        value-distinct over the subset -- the operators use this to
        skip dedupe bookkeeping entirely (a unique-keyed leaf keeps
        this property through every join that preserves its key).
        """
        key = tuple(attrs)
        count = self._signature_counts.get(key)
        if count is None:
            self.row_signatures(key)
            count = self._signature_counts[key]
        return count

    def join_index(
        self, key_attrs: tuple[str, ...]
    ) -> dict[tuple, list[int]]:
        """Hash index ``key values -> row positions`` (memoized).

        Rows with a NULL in any key attribute are excluded (SQL: NULL
        never joins).  The empty key indexes every row under ``()``
        (cross product).  Memoized on the batch, so a leaf batch held
        by the table cache builds its index once per cache entry, not
        once per evaluation.
        """
        cached = self._indexes.get(key_attrs)
        if cached is not None:
            return cached
        index: dict[tuple, list[int]] = {}
        if key_attrs:
            key_columns = [self.column(a) for a in key_attrs]
            for row in range(self.nrows):
                key = tuple(col[row] for col in key_columns)
                if any(v is None for v in key):
                    continue
                index.setdefault(key, []).append(row)
        else:
            index[()] = list(range(self.nrows))
        self._indexes[key_attrs] = index
        return index

    def scalar_join_index(self, key_attr: str) -> dict:
        """Single-attribute hash index ``value -> row positions``.

        The scalar twin of :meth:`join_index` (same NULL exclusion,
        same memoization) without the per-row one-tuple wrapping --
        the common single-key join probes with the bare value.
        """
        memo_key = ("scalar", key_attr)
        cached = self._indexes.get(memo_key)
        if cached is not None:
            return cached
        index: dict = {}
        encoded = self.encoded(key_attr)
        if encoded is not None:
            # code-driven build: per-row work is one int-indexed list
            # append, values are hashed once per *distinct* value
            code_list, dictionary = encoded
            values = dictionary.values
            by_code: dict[int, list[int]] = {}
            setdefault = by_code.setdefault
            for row, code in enumerate(code_list):
                setdefault(code, []).append(row)
            for code, rows in by_code.items():
                value = values[code]
                if value is None:
                    continue
                prior = index.get(value)
                if prior is None:
                    index[value] = rows
                else:
                    # distinct codes hashing equal (5 vs 5.0): merge
                    # back into row order, as a value-keyed build would
                    index[value] = sorted(prior + rows)
        else:
            setdefault = index.setdefault
            for row, value in enumerate(self.column(key_attr)):
                if value is None:
                    continue
                setdefault(value, []).append(row)
        self._indexes[memo_key] = index
        return index

    def row_values(self, row: int) -> dict[str, Value]:
        """The value dict of one row, in canonical attribute order."""
        return {attr: self.column(attr)[row] for attr in self.attrs}

    def __repr__(self) -> str:
        return (
            f"Batch({self.nrows} rows x {len(self.attrs)} cols: "
            f"{list(self.attrs)!r})"
        )


class ColumnarTable:
    """Columnar view of one stored relation of a query input instance.

    Columns are dictionary-encoded; the wrapped :class:`Batch` keeps
    the stored row tuples (``source``) so conversion back to the row
    world is a list copy, not a rebuild.
    """

    __slots__ = ("alias", "batch")

    def __init__(self, relation: RelationInstance, alias: str):
        self.alias = alias
        schema = relation.schema
        attrs = tuple(schema.qualified(a) for a in schema.attributes)
        source = list(relation)
        columns: dict[str, list] = {}
        codes: dict[str, tuple[list[int], Dictionary]] = {}
        for attr in attrs:
            raw = [t[attr] for t in source]
            dictionary = Dictionary()
            codes[attr] = (dictionary.encode_many(raw), dictionary)
            columns[attr] = raw
        lineages = [t.lineage for t in source]
        self.batch = Batch(
            attrs,
            columns,
            lineages,
            parents=None,
            source=source,
            codes=codes,
        )
        # verified, not assumed: a hand-built instance may carry
        # arbitrary lineage, so uniqueness is checked once per cache
        # entry rather than trusted from the tid convention
        self.batch.unique_lineage = (
            len(set(lineages)) == len(lineages)
        )
        self.batch.lineage_aliases = frozenset(
            tid.split(":", 1)[0] for lin in lineages for tid in lin
        )

    @property
    def nrows(self) -> int:
        return self.batch.nrows

    def rows_equal(self, attr: str, value: Value) -> list[int]:
        """Row positions whose *attr* compares ``==`` to *value*.

        Decided once per distinct value through the column dictionary
        -- the columnar analogue of the stored database's indexed
        ``SELECT ... WHERE attr = value`` candidate lookup that
        :class:`~repro.core.compatibility.CompatibleFinder` issues.
        """
        col_codes, dictionary = self.batch.encoded(attr)
        matching = set(dictionary.codes_equal(value))
        if not matching:
            return []
        return [
            row for row, code in enumerate(col_codes) if code in matching
        ]

    def source_tuple(self, row: int) -> Tuple:
        assert self.batch.source is not None
        return self.batch.source[row]


#: LRU of columnar tables keyed by ``(instance.data_key, alias)``.
#: ``data_key`` already encodes identity + version, so a mutated
#: instance can never be served a stale table.
_TABLE_CACHE: OrderedDict[tuple, ColumnarTable] = OrderedDict()
_TABLE_CACHE_MAX = 128
_TABLE_CACHE_LOCK = threading.Lock()


def columnar_table(
    instance: DatabaseInstance, alias: str
) -> ColumnarTable:
    """The (cached) columnar view of ``instance | alias``.

    Raises :class:`~repro.errors.EvaluationError` with the row
    engine's exact message when the alias is unknown, so both engines
    fail identically.
    """
    key = (instance.data_key, alias)
    with _TABLE_CACHE_LOCK:
        table = _TABLE_CACHE.get(key)
        if table is not None:
            _TABLE_CACHE.move_to_end(key)
            return table
    try:
        relation = instance.relation(alias)
    except UnknownRelationError as exc:
        raise EvaluationError(
            f"query reads alias {alias!r} but the "
            "input instance has no such relation"
        ) from exc
    table = ColumnarTable(relation, alias)
    with _TABLE_CACHE_LOCK:
        _TABLE_CACHE[key] = table
        while len(_TABLE_CACHE) > _TABLE_CACHE_MAX:
            _TABLE_CACHE.popitem(last=False)
    return table


def clear_table_cache() -> None:
    """Drop all memoized columnar tables (test isolation hook)."""
    with _TABLE_CACHE_LOCK:
        _TABLE_CACHE.clear()
