"""Batch-at-a-time columnar execution engine (``use_columnar=True``).

A drop-in back end for query evaluation: columnar tables (one array
per attribute with interned-value dictionaries), bitmap selection
vectors, and chunked operators for the full algebra, producing
results losslessly convertible to the row engine's
:class:`~repro.relational.evaluator.EvaluationResult`.  The row engine
remains the differential oracle -- same pattern as
``use_shared_evaluation=False``.  See ``docs/columnar.md``.
"""

from .engine import ColumnarResult, evaluate_columnar
from .ops import BATCH_ROWS, condition_bitmap
from .table import (
    Batch,
    Bitmap,
    ColumnarTable,
    Dictionary,
    clear_table_cache,
    columnar_table,
)

__all__ = [
    "BATCH_ROWS",
    "Batch",
    "Bitmap",
    "ColumnarResult",
    "ColumnarTable",
    "Dictionary",
    "clear_table_cache",
    "columnar_table",
    "condition_bitmap",
    "evaluate_columnar",
]
