"""Batch-at-a-time operators for the full query algebra.

Each operator consumes child :class:`~repro.columnar.table.Batch`\\ es
and produces one output batch, processing rows in chunks of
:data:`BATCH_ROWS`.  Per chunk it emits one ``operator`` span (tagged
``batch_index`` / ``batch_size`` on top of the row engine's tags) and
charges the ambient execution budget, such that the *totals* -- rows
produced, comparisons charged -- are exactly those of the row engine's
per-tuple loops.  The gate's deterministic work counters therefore
stay byte-identical across engines; only the granularity at which a
budget can interrupt an operator moves from per-row to per-batch.

Semantic contracts mirrored from ``repro.relational.algebra`` exactly:

* output attribute order follows the row engine's value-dict
  construction order (including its last-wins behaviour under a
  collapsing renaming);
* duplicate ``(values, lineage)`` derivations are dropped first-wins
  for projection, join, union, and difference (the operators where
  they can arise; leaves, selection, and aggregation provably cannot
  duplicate a deduplicated input);
* NULL never joins, NULL-keyed probe rows are skipped without a
  comparison tick, and the left value wins on a shared join attribute;
* aggregation over an empty ungrouped input yields one row.
"""

from __future__ import annotations

from operator import or_ as _union_sets
from typing import Iterator, Sequence

from ..errors import EvaluationError
from ..relational.aggregates import _IMPLEMENTATIONS
from ..relational.algebra import (
    Aggregate,
    Difference,
    Join,
    Project,
    Query,
    RelationLeaf,
    Select,
    Union,
    query_fingerprint,
)
from ..relational.conditions import (
    And,
    Attr,
    Comparison,
    Condition,
    Const,
    FalseCondition,
    Or,
    TrueCondition,
    compare_values,
)
from .table import Batch, Bitmap, Dictionary, Gather

#: Rows per processing chunk (one span + one budget tick per chunk).
BATCH_ROWS = 1024


def iter_chunks(
    n: int, size: int = BATCH_ROWS
) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` chunk bounds; one empty chunk for n=0.

    The empty chunk keeps span/tick parity with the row engine, which
    emits one operator span and one ``tick_rows(0)`` even for an empty
    node.
    """
    if n <= 0:
        yield (0, 0)
        return
    for start in range(0, n, size):
        yield (start, min(start + size, n))


class NodeObserver:
    """Per-node span/budget emitter shared by all operators.

    Wraps the ambient tracer and execution context so operator code
    stays free of None checks, and tags every chunk span with the
    row-engine tags (``op``, ``fingerprint``, ``postorder``) plus the
    batch tags (``eval``, ``batch_index``, ``batch_size``, ``phase``).
    """

    __slots__ = (
        "tracer",
        "context",
        "node",
        "postorder",
        "serial",
        "fingerprint",
        "batches",
    )

    def __init__(self, tracer, context, node: Query, postorder: int, serial: int):
        self.tracer = tracer
        self.context = context
        self.node = node
        self.postorder = postorder
        self.serial = serial
        self.fingerprint = (
            query_fingerprint(node)[:12] if tracer is not None else ""
        )
        self.batches = 0

    def start_chunk(self, rows_in: int, phase: str):
        self.batches += 1
        if self.tracer is None:
            return None
        return self.tracer.start_span(
            self.node.name or self.node.op,
            category="operator",
            op=self.node.op,
            fingerprint=self.fingerprint,
            postorder=self.postorder,
            eval=self.serial,
            batch_index=self.batches - 1,
            batch_size=rows_in,
            phase=phase,
        )

    def end_chunk(self, span, rows_in: int, rows_out: int) -> None:
        if span is not None:
            span.set_tag("rows_in", rows_in)
            span.set_tag("rows_out", rows_out)
            self.tracer.end_span(span)

    def abort_chunk(self, span) -> None:
        """Close a chunk span on an exception path (no rows_out tag)."""
        if span is not None:
            self.tracer.end_span(span)

    def tick_comparisons(self, n: int) -> None:
        if n and self.context is not None:
            self.context.tick_comparisons(n)

    def tick_rows(self, n: int) -> None:
        if self.context is not None:
            self.context.tick_rows(n)


# ---------------------------------------------------------------------------
# Selection vectors
# ---------------------------------------------------------------------------
def _equality_bools(column: Sequence, constant) -> list[bool]:
    """Vectorized ``compare_values(v, '=', constant)`` over a column."""
    if constant is None:
        return [False] * len(column)
    if isinstance(constant, bool):
        return [isinstance(v, bool) and v == constant for v in column]
    if isinstance(constant, (int, float)):
        return [
            isinstance(v, (int, float))
            and not isinstance(v, bool)
            and v == constant
            for v in column
        ]
    kind = type(constant)
    return [type(v) is kind and v == constant for v in column]


def _comparison_bitmap(cond: Comparison, batch: Batch) -> Bitmap:
    n = batch.nrows
    left, op, right = cond.left, cond.op, cond.right
    if isinstance(left, Const) and isinstance(right, Const):
        verdict = compare_values(left.value, op, right.value)
        return Bitmap.ones(n) if verdict else Bitmap.zeros(n)
    if isinstance(left, Attr) and isinstance(right, Attr):
        col_l = batch.column(left.name)
        col_r = batch.column(right.name)
        return Bitmap.from_bools(
            [compare_values(col_l[i], op, col_r[i]) for i in range(n)]
        )
    # one attribute, one constant (either orientation)
    if isinstance(left, Attr):
        attr, constant, attr_on_left = left.name, right.value, True
    else:
        attr, constant, attr_on_left = right.name, left.value, False
    encoded = batch.encoded(attr)
    if encoded is not None:
        # dictionary-encoded column: decide once per distinct value
        codes, dictionary = encoded
        if attr_on_left:
            by_code = [
                compare_values(v, op, constant) for v in dictionary.values
            ]
        else:
            by_code = [
                compare_values(constant, op, v) for v in dictionary.values
            ]
        return Bitmap.from_bools([by_code[c] for c in codes])
    column = batch.column(attr)
    if op == "=":
        # symmetric, so orientation does not matter
        return Bitmap.from_bools(_equality_bools(column, constant))
    if attr_on_left:
        bools = [compare_values(v, op, constant) for v in column]
    else:
        bools = [compare_values(constant, op, v) for v in column]
    return Bitmap.from_bools(bools)


def condition_bitmap(cond: Condition, batch: Batch) -> Bitmap:
    """Evaluate a selection condition into a :class:`Bitmap`."""
    n = batch.nrows
    if isinstance(cond, TrueCondition):
        return Bitmap.ones(n)
    if isinstance(cond, FalseCondition):
        return Bitmap.zeros(n)
    if isinstance(cond, And):
        mask = Bitmap.ones(n)
        for part in cond.parts:
            mask = mask & condition_bitmap(part, batch)
        return mask
    if isinstance(cond, Or):
        mask = Bitmap.zeros(n)
        for part in cond.parts:
            mask = mask | condition_bitmap(part, batch)
        return mask
    if isinstance(cond, Comparison):
        return _comparison_bitmap(cond, batch)
    raise EvaluationError(
        f"cannot evaluate condition {cond!r} columnar"
    )


# ---------------------------------------------------------------------------
# Renaming layouts
# ---------------------------------------------------------------------------
def _rename_layout(
    attrs: Sequence[str], mapping: dict[str, str]
) -> tuple[tuple[str, ...], dict[str, str]]:
    """Output attribute order + source attr per output attr.

    Mirrors the row engine's ``{mapping.get(a, a): value}`` dict
    comprehension exactly: first occurrence fixes the position, the
    last occurrence fixes the source (relevant only under a collapsing
    renaming).
    """
    order: list[str] = []
    source: dict[str, str] = {}
    for attr in attrs:
        new = mapping.get(attr, attr)
        if new not in source:
            order.append(new)
        source[new] = attr
    return tuple(order), source


# ---------------------------------------------------------------------------
# Derived signatures
# ---------------------------------------------------------------------------
def _subset_sig_hook(child: Batch, kept):
    """Signatures of a row-subset batch (select / project output).

    The output's rows are the child's rows at ``kept``, under the same
    attribute names, so its equality classes are the child's (memoized)
    classes gathered at ``kept`` and re-densified -- no column is ever
    materialized for dedupe purposes.
    """

    def hook(key):
        source = child.row_signatures(key)
        if len(kept) == child.nrows:
            return source, child.signature_count(key)
        classes: dict[int, int] = {}
        setdefault = classes.setdefault
        out = [setdefault(source[i], len(classes)) for i in kept]
        return out, len(classes)

    return hook


def _join_sig_hook(
    left: Batch,
    right: Batch,
    sources: dict[str, tuple[str, str]],
    li_kept: list[int],
    ri_kept: list[int],
):
    """Signatures of a join output, composed from its inputs'.

    An output row's values over any attr subset split into a left part
    and a right part, so two output rows are value-equal iff both
    parts are -- class pairs ``(sig_left, sig_right)`` decide equality
    without gathering a single column through the join.
    """

    def hook(key):
        l_srcs = tuple(
            sources[a][1] for a in key if sources[a][0] == "l"
        )
        r_srcs = tuple(
            sources[a][1] for a in key if sources[a][0] == "r"
        )
        sig_l = left.row_signatures(l_srcs)
        sig_r = right.row_signatures(r_srcs)
        classes: dict[tuple[int, int], int] = {}
        setdefault = classes.setdefault
        out = [
            setdefault((sig_l[li], sig_r[ri]), len(classes))
            for li, ri in zip(li_kept, ri_kept)
        ]
        return out, len(classes)

    return hook


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------
def apply_leaf(
    node: RelationLeaf, batch: Batch, obs: NodeObserver
) -> Batch:
    """Scan: the stored relation *is* the output (tids are unique, so
    the row engine's dedupe is the identity here)."""
    for start, stop in iter_chunks(batch.nrows):
        span = obs.start_chunk(stop - start, "scan")
        try:
            obs.end_chunk(span, stop - start, stop - start)
        except BaseException:
            obs.abort_chunk(span)
            raise
        obs.tick_rows(stop - start)
    return batch


#: cap on per-leaf memoized selection artifacts (distinct predicates)
_SELECT_MEMO_MAX = 64


def apply_select(
    node: Select, child: Batch, obs: NodeObserver
) -> Batch:
    n = child.nrows
    # A selection over a table-cached leaf is fully determined by
    # (stored data, node fingerprint): decide the predicate once per
    # cache entry and replay only the spans/ticks on later
    # evaluations.  The shared output batch then also keeps its own
    # memoized join indexes and signatures across evaluations.
    memo_key = None
    memo = None
    if child.source is not None:
        memo_key = ("select", query_fingerprint(node))
        memo = child._indexes.get(memo_key)
    if memo is not None:
        chunk_counts, out = memo
    else:
        bitmap = condition_bitmap(node.condition, child)
        kept: list[int] = []
        chunk_counts = []
        for start, stop in iter_chunks(n):
            chunk_counts.append(len(bitmap.indexes_in(start, stop)))
        kept = list(bitmap.indexes())
        out = Batch(
            child.attrs,
            {attr: Gather(child, attr, kept) for attr in child.attrs},
            [child.lineage[i] for i in kept],
            parents=("rows", kept),
            codes={
                attr: (
                    Gather(child, attr, kept, codes=True),
                    dictionary,
                )
                for attr, (_, dictionary) in child.codes.items()
            },
        )
        out.sig_hook = _subset_sig_hook(child, kept)
        out.unique_lineage = child.unique_lineage
        out.lineage_aliases = child.lineage_aliases
        if memo_key is not None and len(child._indexes) < _SELECT_MEMO_MAX:
            child._indexes[memo_key] = (chunk_counts, out)
    for (start, stop), produced in zip(iter_chunks(n), chunk_counts):
        span = obs.start_chunk(stop - start, "filter")
        try:
            obs.tick_comparisons(stop - start)
            obs.end_chunk(span, stop - start, produced)
        except BaseException:
            obs.abort_chunk(span)
            raise
        obs.tick_rows(produced)
    return out


def apply_project(
    node: Project, child: Batch, obs: NodeObserver
) -> Batch:
    attrs = node.attributes
    lineage = child.lineage
    n = child.nrows
    if child.unique_lineage or child.signature_count(attrs) == n:
        # rows pairwise-distinct on lineage alone, or value-distinct
        # over the projected subset: dedupe is the identity, the
        # output is a full-keep passthrough
        for start, stop in iter_chunks(n):
            span = obs.start_chunk(stop - start, "project")
            try:
                obs.end_chunk(span, stop - start, stop - start)
            except BaseException:
                obs.abort_chunk(span)
                raise
            obs.tick_rows(stop - start)
        kept = range(n)
        gather_at = None  # identity gather: share the source columns
        out_lineage = lineage
    else:
        # signatures decide value equality over the projected subset
        # without materializing wide value tuples per row
        signatures = child.row_signatures(attrs)
        seen: set = set()
        seen_add = seen.add
        kept = []
        for start, stop in iter_chunks(n):
            span = obs.start_chunk(stop - start, "project")
            try:
                produced = 0
                for i in range(start, stop):
                    key = (signatures[i], lineage[i])
                    if key not in seen:
                        seen_add(key)
                        kept.append(i)
                        produced += 1
                obs.end_chunk(span, stop - start, produced)
            except BaseException:
                obs.abort_chunk(span)
                raise
            obs.tick_rows(produced)
        gather_at = kept
        out_lineage = [lineage[i] for i in kept]
    out = Batch(
        attrs,
        {attr: Gather(child, attr, gather_at) for attr in attrs},
        out_lineage,
        parents=("rows", kept),
        codes={
            attr: (
                Gather(child, attr, gather_at, codes=True),
                dictionary,
            )
            for attr, (_, dictionary) in child.codes.items()
            if attr in attrs
        },
    )
    out.sig_hook = _subset_sig_hook(child, kept)
    out.unique_lineage = child.unique_lineage
    out.lineage_aliases = child.lineage_aliases
    return out


def _join_layout(
    node: Join, left: Batch, right: Batch
) -> tuple[tuple[str, ...], list[tuple[str, str]]]:
    """Output attrs + per-attr ``(side, source attr)`` for a join.

    Mirrors the row engine: left attributes first (last-wins within
    the left under a collapsing renaming), then right attributes whose
    renamed name is not already taken (the shared join attribute keeps
    the left value).
    """
    left_map = node.renaming.left_mapping(node.left.target_type)
    right_map = node.renaming.right_mapping(node.right.target_type)
    left_order, left_src = _rename_layout(left.attrs, left_map)
    order = list(left_order)
    sources: dict[str, tuple[str, str]] = {
        attr: ("l", src) for attr, src in left_src.items()
    }
    for attr in right.attrs:
        new = right_map.get(attr, attr)
        if new in left_src:
            continue  # shared join attribute, equal value
        if new not in sources:
            order.append(new)
        sources[new] = ("r", attr)
    return tuple(order), [sources[a] for a in order]


def apply_join(
    node: Join, left: Batch, right: Batch, obs: NodeObserver
) -> Batch:
    left_keys = tuple(t.left for t in node.renaming)
    right_keys = tuple(t.right for t in node.renaming)
    out_attrs, layout = _join_layout(node, left, right)

    # Build phase: the hash index over the right input.  Memoized on
    # the right batch (built once per cache entry for stored
    # relations); the row engine's per-build comparison ticks are
    # charged either way so the work counters stay engine-independent.
    for start, stop in iter_chunks(right.nrows):
        span = obs.start_chunk(stop - start, "build")
        try:
            obs.tick_comparisons(stop - start)
            obs.end_chunk(span, stop - start, 0)
        except BaseException:
            obs.abort_chunk(span)
            raise

    probe = _probe_plan(left, right, left_keys, right_keys)
    # value-equality classes over the attrs each side contributes to
    # the output: dedupe compares (left class, right class, lineage)
    # instead of hashing wide value tuples per candidate row
    left_lineage, right_lineage = left.lineage, right.lineage
    # Dedupe is provably the identity when each pair gets a unique
    # merged lineage (per-side unique lineage over disjoint tid
    # domains: the merged set splits back into its halves) or when
    # each side's rows are value-distinct over the attrs it
    # contributes.  Either way the seen-set is skipped wholesale.
    lineage_safe = (
        left.unique_lineage
        and right.unique_lineage
        and not (left.lineage_aliases & right.lineage_aliases)
    )
    if lineage_safe:
        distinct = True
    else:
        left_used = tuple(src for side, src in layout if side == "l")
        right_used = tuple(src for side, src in layout if side == "r")
        distinct = (
            left.signature_count(left_used) == left.nrows
            and right.signature_count(right_used) == right.nrows
        )
        if not distinct:
            sig_l = left.row_signatures(left_used)
            sig_r = right.row_signatures(right_used)
            seen: set = set()
            seen_add = seen.add

    li_kept: list[int] = []
    ri_kept: list[int] = []
    out_lineage: list[frozenset] = []

    for start, stop in iter_chunks(left.nrows):
        span = obs.start_chunk(stop - start, "probe")
        try:
            li_list, ri_list, comparisons = probe(start, stop)
            obs.tick_comparisons(comparisons)
            if distinct:
                produced = len(li_list)
                out_lineage.extend(
                    map(
                        _union_sets,
                        map(left_lineage.__getitem__, li_list),
                        map(right_lineage.__getitem__, ri_list),
                    )
                )
                li_kept.extend(li_list)
                ri_kept.extend(ri_list)
            else:
                produced = 0
                for j in range(len(li_list)):
                    li = li_list[j]
                    ri = ri_list[j]
                    merged = left_lineage[li] | right_lineage[ri]
                    key = (sig_l[li], sig_r[ri], merged)
                    if key in seen:
                        continue
                    seen_add(key)
                    li_kept.append(li)
                    ri_kept.append(ri)
                    out_lineage.append(merged)
                    produced += 1
            obs.end_chunk(span, stop - start, produced)
        except BaseException:
            obs.abort_chunk(span)
            raise
        obs.tick_rows(produced)
    columns = {}
    codes = {}
    for attr, (side, src) in zip(out_attrs, layout):
        source, taken = (
            (left, li_kept) if side == "l" else (right, ri_kept)
        )
        columns[attr] = Gather(source, src, taken)
        entry = source.codes.get(src)
        if entry is not None:
            # keep dictionary encodings flowing through the join so
            # upstream predicates and probes stay code-driven
            codes[attr] = (
                Gather(source, src, taken, codes=True),
                entry[1],
            )
    out = Batch(
        out_attrs,
        columns,
        out_lineage,
        parents=("pairs", list(zip(li_kept, ri_kept))),
        codes=codes,
    )
    out.sig_hook = _join_sig_hook(
        left, right, dict(zip(out_attrs, layout)), li_kept, ri_kept
    )
    out.unique_lineage = lineage_safe
    out.lineage_aliases = left.lineage_aliases | right.lineage_aliases
    return out


def _probe_plan(
    left: Batch,
    right: Batch,
    left_keys: tuple[str, ...],
    right_keys: tuple[str, ...],
):
    """Compile the fastest probe for this key shape.

    Returns ``probe(start, stop) -> (li_list, ri_list, comparisons)``
    over the left batch.  Semantics are the row engine's exactly: a
    NULL-keyed probe row is skipped without a comparison tick, a miss
    ticks 1, a hit ticks ``1 + len(matches)``.  Three strategies, best
    first:

    * **dictionary-driven** (single key, left column has codes): the
      index lookup and NULL check are decided once per *distinct* key
      value, the per-row work is one code-array load;
    * **scalar** (single key, no codes): probe with the bare value
      against a scalar index -- no one-tuple allocation per row;
    * **tuple** (compound or empty key): the general path, identical
      to the row engine's key construction.
    """
    if len(left_keys) == 1:
        index = right.scalar_join_index(right_keys[0])
        encoded = left.encoded(left_keys[0])
        if encoded is not None:
            codes, dictionary = encoded
            # None sentinel = NULL skip; () = miss (ticks 1, no rows)
            by_code = [
                None if value is None else index.get(value, ())
                for value in dictionary.values
            ]

            def probe_codes(start: int, stop: int):
                li_list: list[int] = []
                ri_list: list[int] = []
                li_append, ri_append = li_list.append, ri_list.append
                comparisons = 0
                for li in range(start, stop):
                    matches = by_code[codes[li]]
                    if matches is None:
                        continue
                    n = len(matches)
                    comparisons += 1 + n
                    if n == 1:
                        li_append(li)
                        ri_append(matches[0])
                    elif n:
                        li_list.extend([li] * n)
                        ri_list.extend(matches)
                return li_list, ri_list, comparisons

            return probe_codes
        column = left.column(left_keys[0])

        def probe_scalar(start: int, stop: int):
            li_list: list[int] = []
            ri_list: list[int] = []
            li_append, ri_append = li_list.append, ri_list.append
            comparisons = 0
            get = index.get
            for li in range(start, stop):
                value = column[li]
                if value is None:
                    continue  # SQL: NULL never joins (no probe tick)
                matches = get(value)
                if matches is None:
                    comparisons += 1
                    continue
                n = len(matches)
                comparisons += 1 + n
                if n == 1:
                    li_append(li)
                    ri_append(matches[0])
                else:
                    li_list.extend([li] * n)
                    ri_list.extend(matches)
            return li_list, ri_list, comparisons

        return probe_scalar

    index = right.join_index(right_keys)
    left_key_cols = [left.column(a) for a in left_keys]

    def probe_tuple(start: int, stop: int):
        li_list: list[int] = []
        ri_list: list[int] = []
        comparisons = 0
        get = index.get
        for li in range(start, stop):
            key = tuple(col[li] for col in left_key_cols)
            if any(v is None for v in key):
                continue  # SQL: NULL never joins (no probe tick)
            matches = get(key)
            if matches is None:
                comparisons += 1
                continue
            comparisons += 1 + len(matches)
            li_list.extend([li] * len(matches))
            ri_list.extend(matches)
        return li_list, ri_list, comparisons

    return probe_tuple


def _branch_layout(
    node: "Union | Difference", left: Batch, right: Batch
) -> tuple[tuple[str, ...], list, list]:
    """Shared union/difference layout: canonical attrs (the left
    branch's renamed order) plus both branches' source columns
    permuted into that order."""
    left_map = node.renaming.left_mapping(node.left.target_type)
    right_map = node.renaming.right_mapping(node.right.target_type)
    out_attrs, left_src = _rename_layout(left.attrs, left_map)
    _, right_src = _rename_layout(right.attrs, right_map)
    left_cols = [left.column(left_src[a]) for a in out_attrs]
    right_cols = [right.column(right_src[a]) for a in out_attrs]
    return out_attrs, left_cols, right_cols


def apply_union(
    node: Union, left: Batch, right: Batch, obs: NodeObserver
) -> Batch:
    out_attrs, left_cols, right_cols = _branch_layout(node, left, right)
    out_columns: list[list] = [[] for _ in out_attrs]
    out_lineage: list[frozenset] = []
    tagged: list[tuple[int, int]] = []
    seen: set = set()

    for slot, (cols, batch) in enumerate(
        ((left_cols, left), (right_cols, right))
    ):
        value_rows = list(zip(*cols)) if batch.nrows else []
        lineage = batch.lineage
        for start, stop in iter_chunks(batch.nrows):
            span = obs.start_chunk(stop - start, "union")
            try:
                obs.tick_comparisons(stop - start)
                produced = 0
                for i in range(start, stop):
                    key = (value_rows[i], lineage[i])
                    if key in seen:
                        continue
                    seen.add(key)
                    for acc, col in zip(out_columns, cols):
                        acc.append(col[i])
                    out_lineage.append(lineage[i])
                    tagged.append((slot, i))
                    produced += 1
                obs.end_chunk(span, stop - start, produced)
            except BaseException:
                obs.abort_chunk(span)
                raise
            obs.tick_rows(produced)
    out = Batch(
        out_attrs,
        dict(zip(out_attrs, out_columns)),
        out_lineage,
        parents=("tagged", tagged),
    )
    out.lineage_aliases = left.lineage_aliases | right.lineage_aliases
    return out


def apply_difference(
    node: Difference, left: Batch, right: Batch, obs: NodeObserver
) -> Batch:
    out_attrs, left_cols, right_cols = _branch_layout(node, left, right)

    blocked: set[tuple] = set()
    right_rows = list(zip(*right_cols)) if right.nrows else []
    for start, stop in iter_chunks(right.nrows):
        span = obs.start_chunk(stop - start, "block")
        try:
            obs.tick_comparisons(stop - start)
            blocked.update(right_rows[start:stop])
            obs.end_chunk(span, stop - start, 0)
        except BaseException:
            obs.abort_chunk(span)
            raise

    left_rows = list(zip(*left_cols)) if left.nrows else []
    lineage = left.lineage
    out_columns: list[list] = [[] for _ in out_attrs]
    out_lineage: list[frozenset] = []
    kept: list[int] = []
    # unique lineage makes the (values, lineage) seen-set an identity
    dedupe = not left.unique_lineage
    seen: set = set()
    for start, stop in iter_chunks(left.nrows):
        span = obs.start_chunk(stop - start, "filter")
        try:
            obs.tick_comparisons(stop - start)
            produced = 0
            for i in range(start, stop):
                values = left_rows[i]
                if values in blocked:
                    continue
                if dedupe:
                    key = (values, lineage[i])
                    if key in seen:
                        continue
                    seen.add(key)
                for acc, col in zip(out_columns, left_cols):
                    acc.append(col[i])
                out_lineage.append(lineage[i])
                kept.append(i)
                produced += 1
            obs.end_chunk(span, stop - start, produced)
        except BaseException:
            obs.abort_chunk(span)
            raise
        obs.tick_rows(produced)
    out = Batch(
        out_attrs,
        dict(zip(out_attrs, out_columns)),
        out_lineage,
        parents=("rows", kept),
    )
    out.unique_lineage = left.unique_lineage
    out.lineage_aliases = left.lineage_aliases
    return out


def apply_aggregate(
    node: Aggregate, child: Batch, obs: NodeObserver
) -> Batch:
    group_by = node.group_by
    key_cols = [child.column(a) for a in group_by]
    n = child.nrows

    groups: dict[tuple, int] = {}
    order: list[tuple] = []
    members: list[list[int]] = []
    for start, stop in iter_chunks(n):
        span = obs.start_chunk(stop - start, "group")
        try:
            obs.tick_comparisons(stop - start)
            for i in range(start, stop):
                key = tuple(col[i] for col in key_cols)
                slot = groups.get(key)
                if slot is None:
                    slot = len(order)
                    groups[key] = slot
                    order.append(key)
                    members.append([])
                members[slot].append(i)
            obs.end_chunk(span, stop - start, 0)
        except BaseException:
            obs.abort_chunk(span)
            raise
    if not group_by and not order:
        # SQL: ungrouped aggregation over the empty input still yields
        # one row (count = 0, other aggregates NULL)
        groups[()] = 0
        order.append(())
        members.append([])

    out_attrs = tuple(group_by) + tuple(c.alias for c in node.calls)
    columns: dict[str, list] = {
        attr: [key[pos] for key in order]
        for pos, attr in enumerate(group_by)
    }
    lineage = child.lineage
    for call in node.calls:
        source = child.column(call.attribute)
        impl = _IMPLEMENTATIONS[call.function]
        columns[call.alias] = [
            impl([source[i] for i in group]) for group in members
        ]
    out_lineage: list[frozenset] = []
    for group in members:
        merged: set[str] = set()
        for i in group:
            merged |= lineage[i]
        out_lineage.append(frozenset(merged))

    total = len(order)
    emitted = 0
    for start, stop in iter_chunks(total):
        span = obs.start_chunk(0, "emit")
        try:
            obs.end_chunk(span, 0, stop - start)
        except BaseException:
            obs.abort_chunk(span)
            raise
        obs.tick_rows(stop - start)
        emitted += stop - start
    assert emitted == total
    out = Batch(
        out_attrs,
        columns,
        out_lineage,
        parents=("groups", members),
    )
    out.lineage_aliases = child.lineage_aliases
    return out
