"""The HTTP/JSON surface of why-not-as-a-service.

A deliberately stdlib-only server (``http.server.ThreadingHTTPServer``)
following the client <-> server <-> storage split of swh-provenance:
the handlers here only parse HTTP and delegate every decision to
:class:`~repro.service.state.ServiceState`.  Robustness is the
organizing principle, layered in this order on every work request:

1. **drain check** -- a draining server refuses new work with 503 (and
   ``Retry-After``) while ``/healthz`` stays 200: liveness and
   readiness are different questions;
2. **tenant quota** -- the ``X-Tenant`` header selects a token bucket
   (:mod:`repro.service.quota`); an exhausted bucket means 429 with the
   exact ``Retry-After`` until a token refills;
3. **admission control** -- a bounded in-flight request set
   (:class:`~repro.service.state.AdmissionGate`); past ``shed_after``,
   arrivals are shed with 429 immediately (mapping
   :class:`~repro.errors.LoadShedError`), never parked unboundedly;
4. **deadline propagation** -- ``X-Deadline-Ms`` / ``budget`` become a
   :class:`~repro.robustness.Budget`, so a slow question returns a
   *partial* answer in a 206 envelope instead of hanging the client.

Routes::

    GET  /healthz              liveness (200 while the process runs)
    GET  /readyz               readiness (503 while starting/draining
                               or while any circuit breaker is open)
    GET  /metrics              MetricsRegistry snapshot (JSON, or
                               Prometheus text with ?format=prometheus)
    GET  /v1/databases         the registered databases
    POST /v1/databases         register + warm a database
    POST /v1/explain           one question -> one report
    POST /v1/explain_batch     N questions through ParallelExecutor,
                               journaled crash-safe when a storage
                               backend is configured
    GET  /v1/batches/<id>      stored result of a journaled batch
    POST /v1/admin/reload      re-read --quota-file (also on SIGHUP);
                               a malformed spec keeps the old one

Connections carry a socket timeout (``--request-timeout``): a client
that stalls mid-request gets a clean 408 envelope and its connection
closed instead of parking a worker thread forever, and idle keep-alive
connections are reaped by the same clock.

Every error is one JSON envelope -- ``{"error": {"type", "message",
"status"}}`` -- mirroring the CLI's ``--json`` error contract.

:func:`serve` owns the process lifecycle: bind, recover journaled
batches, flip ready, serve until SIGTERM/SIGINT, drain (in-flight
requests finish; batch executors cancel unstarted questions through
the shared :class:`~repro.robustness.CancellationToken`), exit 0 on a
clean drain.  A second signal forces shutdown (exit 5).
"""

from __future__ import annotations

import json
import math
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, TextIO
from urllib.parse import urlparse, parse_qs

from ..errors import (
    ConditionError,
    ConfigurationError,
    LoadShedError,
    QueryError,
    QuotaExceededError,
    ReproError,
    SchemaError,
    ServiceError,
    SqlSyntaxError,
    UnknownRelationError,
    UnsupportedQueryError,
    WhyNotQuestionError,
)
from ..obs.clock import use_clock
from ..obs.export import render_prometheus
from .state import ServiceConfig, ServiceState

__all__ = ["ReproServiceServer", "ServiceHandler", "serve"]

#: serve() exit codes (the full table lives in docs/robustness.md):
#: 0 = clean drain (every admitted request finished, pending queue
#: empty); 2 = startup/configuration failure; 5 = forced shutdown (a
#: second signal arrived, or in-flight work outlived --drain-timeout).
SERVE_EXIT_OK = 0
SERVE_EXIT_ERROR = 2
SERVE_EXIT_FORCED = 5

#: HTTP status for each library error class the handlers map.  Order
#: matters: the first isinstance match wins, so the throttling classes
#: precede the catch-all bad-request ones.
_ERROR_STATUS: dict[type, int] = {
    QuotaExceededError: 429,
    LoadShedError: 429,
    ConfigurationError: 400,
    SqlSyntaxError: 400,
    UnsupportedQueryError: 400,
    WhyNotQuestionError: 400,
    UnknownRelationError: 400,
    SchemaError: 400,
    QueryError: 400,
    ConditionError: 400,
}

#: Default tenant when the X-Tenant header is absent.
DEFAULT_TENANT = "anonymous"

MAX_BODY_BYTES = 8 * 1024 * 1024


class ReproServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared :class:`ServiceState`."""

    #: handler threads must not block process exit after a forced stop
    daemon_threads = True
    #: the drain waits on the admission gate, not on thread joins
    block_on_close = False
    allow_reuse_address = True

    def __init__(self, address, handler, state: ServiceState):
        self.state = state
        super().__init__(address, handler)


class ServiceHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    @property
    def state(self) -> ServiceState:
        return self.server.state  # type: ignore[attr-defined]

    def setup(self) -> None:
        # per-connection socket timeout: BaseHTTPRequestHandler applies
        # self.timeout to the connection in setup(), which both reaps
        # idle keep-alive connections and bounds how long a stalled
        # sender can hold a handler thread (see _fail_from's 408 path)
        self.timeout = self.state.config.request_timeout_s
        super().setup()

    def log_message(self, format: str, *args: Any) -> None:
        # access logging goes to /metrics, not stderr noise
        pass

    def _respond(
        self,
        status: int,
        document: dict,
        retry_after_s: float | None = None,
    ) -> None:
        payload = (
            json.dumps(document, indent=2, sort_keys=True, default=str)
            + "\n"
        ).encode("utf-8")
        # count before the bytes hit the wire: a client that reads the
        # response and immediately scrapes /metrics must see this one
        route = getattr(self, "_route", "unknown")
        self.state.metrics.counter("service.responses").inc()
        self.state.metrics.counter(
            f"service.responses.{status}"
        ).inc()
        self.state.metrics.counter(f"service.route.{route}").inc()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if retry_after_s is not None:
            self.send_header(
                "Retry-After", str(max(1, math.ceil(retry_after_s)))
            )
        self.end_headers()
        self.wfile.write(payload)

    def _respond_text(self, status: int, text: str) -> None:
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _fail(
        self,
        status: int,
        error_type: str,
        message: str,
        retry_after_s: float | None = None,
    ) -> None:
        self._respond(
            status,
            {
                "error": {
                    "type": error_type,
                    "message": message,
                    "status": status,
                }
            },
            retry_after_s=retry_after_s,
        )

    def _fail_from(self, exc: Exception) -> None:
        if isinstance(exc, TimeoutError):
            # the client stalled mid-request past the socket timeout:
            # answer 408 (the write side of the socket still works)
            # and drop the connection -- its unread body makes it
            # unusable for keep-alive
            self.close_connection = True
            self.state.metrics.counter("service.timeouts").inc()
            self._fail(
                408,
                "RequestTimeout",
                "client stalled while sending the request (socket "
                f"timeout {self.state.config.request_timeout_s}s)",
            )
            return
        if isinstance(exc, ServiceError) and exc.status is not None:
            self._fail(exc.status, type(exc).__name__, str(exc))
            return
        retry_after = None
        status = 500
        for klass, mapped in _ERROR_STATUS.items():
            if isinstance(exc, klass):
                status = mapped
                break
        if isinstance(exc, QuotaExceededError):
            retry_after = exc.retry_after_s
        elif isinstance(exc, LoadShedError):
            retry_after = self.state.config.retry_after_s
        if status == 500 and not isinstance(exc, ReproError):
            # never leak a raw traceback as a closed connection
            self._fail(500, "InternalError", f"{type(exc).__name__}: {exc}")
            return
        self._fail(
            status, type(exc).__name__, str(exc),
            retry_after_s=retry_after,
        )

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ConfigurationError(
                "request needs a JSON body (Content-Length missing "
                "or zero)"
            )
        if length > MAX_BODY_BYTES:
            raise ConfigurationError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ConfigurationError(
                f"request body is not valid JSON: {exc}"
            ) from exc
        if not isinstance(body, dict):
            raise ConfigurationError(
                "request body must be a JSON object"
            )
        deadline_ms = self.headers.get("X-Deadline-Ms")
        if deadline_ms is not None:
            try:
                parsed = float(deadline_ms)
            except ValueError:
                raise ConfigurationError(
                    f"X-Deadline-Ms must be a number, got "
                    f"{deadline_ms!r}"
                ) from None
            budget = dict(body.get("budget") or {})
            budget.setdefault("deadline_ms", parsed)
            body["budget"] = budget
        return body

    def _tenant(self) -> str:
        return self.headers.get("X-Tenant") or DEFAULT_TENANT

    # -- routing -------------------------------------------------------
    # Each verb re-installs the state's clock first: handler threads
    # start with a fresh contextvars context, so the manual clock a
    # REPRO_MANUAL_CLOCK server was started under would otherwise not
    # reach the work these threads run.
    def do_GET(self) -> None:  # noqa: N802 -- BaseHTTPRequestHandler API
        with use_clock(self.state.clock):
            self._do_get()

    def do_POST(self) -> None:  # noqa: N802 -- BaseHTTPRequestHandler API
        with use_clock(self.state.clock):
            self._do_post()

    def _do_get(self) -> None:
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        try:
            if path == "/healthz":
                self._route = "healthz"
                self._respond(200, self.state.health_document())
            elif path == "/readyz":
                self._route = "readyz"
                ready, document = self.state.ready_document()
                self._respond(
                    200 if ready else 503,
                    document,
                    retry_after_s=(
                        None
                        if ready
                        else self.state.config.retry_after_s
                    ),
                )
            elif path == "/metrics":
                self._route = "metrics"
                document = self.state.metrics_document()
                wants_text = parse_qs(parsed.query).get(
                    "format", ["json"]
                )[0] == "prometheus"
                if wants_text:
                    self._respond_text(
                        200, render_prometheus(document["metrics"])
                    )
                else:
                    self._respond(200, document)
            elif path == "/v1/databases":
                self._route = "databases"
                self._respond(
                    200,
                    {"databases": self.state.databases_document()},
                )
            elif path.startswith("/v1/batches/"):
                self._route = "batch_result"
                request_id = path[len("/v1/batches/"):]
                self._respond(
                    200, self.state.batch_result(request_id)
                )
            else:
                self._fail(
                    404, "ServiceError", f"no such route: GET {path}"
                )
        except Exception as exc:  # noqa: BLE001 -- envelope, not socket reset
            self._fail_from(exc)

    def _do_post(self) -> None:
        path = urlparse(self.path).path.rstrip("/")
        try:
            if path == "/v1/databases":
                self._route = "register"
                self._respond(
                    200,
                    self.state.register_database(self._read_body()),
                )
            elif path == "/v1/explain":
                self._route = "explain"
                self._handle_work(batch=False)
            elif path == "/v1/explain_batch":
                self._route = "explain_batch"
                self._handle_work(batch=True)
            elif path == "/v1/admin/reload":
                # no body needed: the reload source of truth is the
                # --quota-file on the server host, not the request
                self._route = "admin_reload"
                document = self.state.reload_config()
                self._respond(
                    200 if document.get("reloaded") else 400, document
                )
            else:
                self._fail(
                    404, "ServiceError", f"no such route: POST {path}"
                )
        except Exception as exc:  # noqa: BLE001 -- envelope, not socket reset
            self._fail_from(exc)

    # -- the work endpoints --------------------------------------------
    def _handle_work(self, batch: bool) -> None:
        state = self.state
        if state.draining or not state.ready.is_set():
            self._fail(
                503,
                "ServiceUnavailable",
                "service is draining"
                if state.draining
                else "service is starting",
                retry_after_s=state.config.retry_after_s,
            )
            return
        state.quotas.check(self._tenant())
        state.gate.acquire()
        try:
            body = self._read_body()
            if batch:
                document, fresh = state.explain_batch(body)
                document["cached_result"] = not fresh
            else:
                document = state.explain_single(body)
            level = document.get("degradation_level", "full")
            self._respond(200 if level == "full" else 206, document)
        finally:
            state.gate.release()


def serve(
    config: ServiceConfig,
    stdout: TextIO | None = None,
    install_signal_handlers: bool = True,
    on_started=None,
) -> int:
    """Run the service until a drain signal; the process exit code.

    Lifecycle: bind (a bind failure raises
    :class:`~repro.errors.ConfigurationError` -- exit 2 through the
    CLI), recover journaled batches, flip ready, serve.  The first
    SIGTERM/SIGINT starts a graceful drain: readiness flips to 503, the
    accept loop stops, admitted requests run to completion (batch
    executors cancel their unstarted questions cooperatively), and the
    process exits 0 with an empty pending queue.  A second signal -- or
    in-flight work that outlives ``drain_timeout_s`` -- forces exit 5.

    *on_started* (mainly for tests) receives the bound
    :class:`ReproServiceServer` once it is ready.
    """
    out = stdout if stdout is not None else sys.stdout
    state = ServiceState(config)
    try:
        httpd = ReproServiceServer(
            (config.host, config.port), ServiceHandler, state
        )
    except OSError as exc:
        raise ConfigurationError(
            f"cannot bind {config.host}:{config.port}: {exc}"
        ) from exc
    host, port = httpd.server_address[0], httpd.server_address[1]
    print(f"listening on {host}:{port}", file=out, flush=True)
    recovered = state.recover()
    if recovered:
        print(
            f"recovered {len(recovered)} journaled batch(es): "
            f"{', '.join(recovered)}",
            file=out,
            flush=True,
        )
    state.ready.set()
    print(
        f"service ready on {host}:{port} "
        f"(workers={config.workers}, shed_after={config.shed_after}, "
        f"quota={config.quota}, storage={config.resolved_storage})",
        file=out,
        flush=True,
    )

    forced: list[str] = []

    def _signal_handler(signum, frame) -> None:
        name = signal.Signals(signum).name
        if state.begin_drain(f"drain requested by {name}"):
            print(f"draining: {name} received", file=out, flush=True)
        else:
            forced.append(name)
            print(
                f"forcing shutdown: second signal {name}",
                file=out,
                flush=True,
            )
        # shutdown() must not run on the serve_forever thread
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    def _reload_handler(signum, frame) -> None:
        document = state.reload_config()
        print(f"config reload: {document}", file=out, flush=True)

    previous: dict[int, Any] = {}
    if (
        install_signal_handlers
        and threading.current_thread() is threading.main_thread()
    ):
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _signal_handler)
        if hasattr(signal, "SIGHUP"):
            previous[signal.SIGHUP] = signal.signal(
                signal.SIGHUP, _reload_handler
            )
    try:
        if on_started is not None:
            on_started(httpd)
        httpd.serve_forever(poll_interval=0.05)
    finally:
        httpd.server_close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    drained = state.wait_idle(config.drain_timeout_s)
    print(
        f"drain complete: active_requests={state.gate.active} "
        f"shed_total={state.gate.shed_total} "
        f"forced={bool(forced)} clean={drained and not forced}",
        file=out,
        flush=True,
    )
    if forced or not drained:
        return SERVE_EXIT_FORCED
    return SERVE_EXIT_OK
