"""Application state of the why-not service.

The HTTP layer (:mod:`repro.service.server`) is a thin parser; every
decision lives here so it can be unit-tested without a socket:

* :class:`ServiceConfig` -- the ``serve`` knobs (worker pool size,
  admission limit, quota spec, journal directory);
* :class:`AdmissionGate` -- bounded concurrent admission with load
  shedding: past ``shed_after`` in-flight requests, new arrivals are
  refused with :class:`~repro.errors.LoadShedError` (mapped to ``429``
  + ``Retry-After``), never queued unboundedly;
* :class:`ServiceState` -- the registries (databases, warm engines,
  per-database evaluation caches), the shared
  :class:`~repro.obs.MetricsRegistry` behind ``/metrics``, the
  long-lived :class:`~repro.robustness.breaker.CircuitBreakerBoard`,
  the drain token wired to SIGTERM, and the crash-safe request journal.

**Crash-safe request journaling.**  Every ``/v1/explain_batch`` request
is made durable *before* any work starts: a ``<id>.request.json``
manifest (atomic write) plus a per-request
:class:`~repro.robustness.journal.BatchJournal` that records each
question outcome as it completes.  A completed batch gets an atomic
``<id>.result.json``.  On startup, :meth:`ServiceState.recover` re-runs
every manifest without a result, resuming its journal -- already
completed questions replay verbatim, the rest are computed -- so a
SIGKILLed server converges to the same outcomes an uninterrupted run
would have produced (byte-identical under ``REPRO_MANUAL_CLOCK``).
Database registrations are persisted the same way (atomic
``databases.json``), so recovery does not depend on clients
re-registering.
"""

from __future__ import annotations

import json
import threading
import uuid
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..baseline import WhyNotBaseline
from ..core import NedExplain
from ..errors import (
    ConfigurationError,
    LoadShedError,
    ReproError,
    ServiceError,
    StorageError,
    UnsupportedQueryError,
)
from ..obs import MetricsRegistry
from ..obs.clock import current_clock
from ..relational import EvaluationCache
from ..relational.csv_io import load_database
from ..relational.database import Database
from ..relational.sql import sql_to_canonical
from ..robustness import (
    Budget,
    CancellationToken,
    CircuitBreakerBoard,
)
from ..storage import StorageBackend, default_quorums, open_backend
from .quota import QuotaRegistry, QuotaSpec

__all__ = [
    "AdmissionGate",
    "DEGRADATION_SEVERITY",
    "STORAGE_KINDS",
    "ServiceConfig",
    "ServiceState",
]

#: Order of degradation levels from best to worst; a batch envelope
#: reports the *worst* level across its outcomes.
DEGRADATION_SEVERITY: dict[str, int] = {
    "full": 0,
    "partial": 1,
    "baseline": 2,
    "shed": 3,
    "cancelled": 4,
    "failed": 5,
}

#: Request ids become journal file names; keep them boring.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")

#: Database names key registries and the persisted registration file.
_NAME_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


#: Storage backend selections understood by ``--storage``.
STORAGE_KINDS: tuple[str, ...] = ("auto", "local", "memory", "none")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``serve`` needs to run one service process."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: worker threads available to one ``/v1/explain_batch`` request
    #: (a request asking for more is capped, never refused)
    workers: int = 4
    #: admission limit: max concurrently admitted explain requests;
    #: arrivals past it are shed with 429 (``None`` = unlimited)
    shed_after: int | None = None
    #: per-tenant token-bucket quota (``None`` = no quotas)
    quota: QuotaSpec | None = None
    #: directory for request manifests + batch journals (``None``
    #: disables request journaling and crash recovery)
    journal_dir: Path | None = None
    #: storage backend kind (``auto`` picks ``local`` when
    #: ``journal_dir`` is set, ``none`` otherwise; ``memory`` runs the
    #: full journaling/recovery code path without a disk)
    storage: str = "auto"
    #: per-connection socket timeout in seconds: a client that stalls
    #: mid-request gets a clean 408 envelope instead of parking a
    #: worker thread forever (``None`` = wait indefinitely)
    request_timeout_s: float | None = 30.0
    #: optional file holding the quota spec, re-read on SIGHUP /
    #: ``POST /v1/admin/reload`` (``None`` = quotas fixed at startup)
    quota_file: Path | None = None
    #: seconds :func:`~repro.service.server.serve` waits for in-flight
    #: requests after the accept loop stops before giving up
    drain_timeout_s: float = 10.0
    #: ``Retry-After`` seconds reported on shed / draining responses
    retry_after_s: float = 1.0
    #: storage replica count; ``> 1`` opens a quorum-replicated
    #: backend (one subdirectory per replica under ``journal_dir``,
    #: or N in-memory replicas for ``--storage memory``)
    replicas: int = 1
    #: write quorum W (default: a majority of ``replicas``)
    write_quorum: int | None = None
    #: read quorum R (default: ``replicas - W + 1``, the smallest
    #: read set that still overlaps every write set)
    read_quorum: int | None = None

    def __post_init__(self) -> None:
        if self.storage not in STORAGE_KINDS:
            raise ConfigurationError(
                f"unknown storage kind {self.storage!r}; choose from "
                f"{', '.join(STORAGE_KINDS)}"
            )
        if self.storage == "local" and self.journal_dir is None:
            raise ConfigurationError(
                "--storage local needs a journal directory "
                "(--journal-dir)"
            )
        if (
            self.request_timeout_s is not None
            and self.request_timeout_s <= 0
        ):
            raise ConfigurationError(
                f"request_timeout_s must be positive, got "
                f"{self.request_timeout_s!r}"
            )
        if self.quota_file is not None:
            object.__setattr__(
                self, "quota_file", Path(self.quota_file)
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"service workers must be >= 1, got {self.workers}"
            )
        if self.shed_after is not None and self.shed_after < 1:
            raise ConfigurationError(
                f"service shed_after must be >= 1, got "
                f"{self.shed_after}"
            )
        if self.port < 0 or self.port > 65535:
            raise ConfigurationError(
                f"service port must be in [0, 65535], got {self.port}"
            )
        if self.drain_timeout_s <= 0:
            raise ConfigurationError(
                f"drain_timeout_s must be positive, got "
                f"{self.drain_timeout_s!r}"
            )
        if self.journal_dir is not None:
            object.__setattr__(
                self, "journal_dir", Path(self.journal_dir)
            )
        if self.replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        if self.replicas == 1 and (
            self.write_quorum is not None
            or self.read_quorum is not None
        ):
            raise ConfigurationError(
                "write/read quorums need --replicas > 1"
            )
        if self.replicas > 1:
            if self.resolved_storage == "none":
                raise ConfigurationError(
                    "--replicas > 1 needs a storage backend "
                    "(--journal-dir or --storage memory)"
                )
            write_quorum, read_quorum = default_quorums(self.replicas)
            if self.write_quorum is not None:
                write_quorum = self.write_quorum
            if self.read_quorum is not None:
                read_quorum = self.read_quorum
            if not 1 <= write_quorum <= self.replicas:
                raise ConfigurationError(
                    f"write quorum must be in [1, {self.replicas}], "
                    f"got {write_quorum}"
                )
            if not 1 <= read_quorum <= self.replicas:
                raise ConfigurationError(
                    f"read quorum must be in [1, {self.replicas}], "
                    f"got {read_quorum}"
                )
            if write_quorum + read_quorum <= self.replicas:
                raise ConfigurationError(
                    f"quorums must overlap: W + R > N requires "
                    f"{write_quorum} + {read_quorum} > {self.replicas}"
                )
            object.__setattr__(self, "write_quorum", write_quorum)
            object.__setattr__(self, "read_quorum", read_quorum)

    @property
    def resolved_storage(self) -> str:
        """The concrete backend kind ``auto`` resolves to."""
        if self.storage != "auto":
            return self.storage
        return "local" if self.journal_dir is not None else "none"


class AdmissionGate:
    """Bounded concurrent admission with explicit load shedding.

    ``limit=None`` admits everything (the gate still counts, for
    ``/metrics`` and the drain's idle check).  Past the limit,
    :meth:`acquire` raises :class:`~repro.errors.LoadShedError`
    *immediately* -- the pending "queue" of a thread-per-request server
    is its admitted-but-running request set, and refusing fast beats
    parking client threads without bound (the same never-silently-drop
    policy as :class:`~repro.robustness.executor.ParallelExecutor`).
    """

    def __init__(self, limit: int | None):
        if limit is not None and limit < 1:
            raise ConfigurationError(
                f"admission limit must be >= 1, got {limit}"
            )
        self.limit = limit
        self._active = 0
        self._shed_total = 0
        self._lock = threading.Lock()

    def acquire(self) -> None:
        with self._lock:
            if self.limit is not None and self._active >= self.limit:
                self._shed_total += 1
                raise LoadShedError(
                    f"request shed: {self._active} request(s) already "
                    f"admitted (shed_after={self.limit})"
                )
            self._active += 1

    def release(self) -> None:
        with self._lock:
            if self._active <= 0:
                raise ConfigurationError(
                    "admission gate released more than acquired"
                )
            self._active -= 1

    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    @property
    def shed_total(self) -> int:
        with self._lock:
            return self._shed_total

    def __enter__(self) -> "AdmissionGate":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        return (
            f"AdmissionGate(limit={self.limit}, active={self.active})"
        )


class ServiceState:
    """Everything the handlers share; no HTTP types in here."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        #: the ambient clock at construction, re-installed by the HTTP
        #: layer in every handler thread: context vars do not cross
        #: thread boundaries, so without this a server started under
        #: REPRO_MANUAL_CLOCK would still measure handler work on the
        #: system clock -- breaking byte-identical kill/resume runs
        self.clock = current_clock()
        self.metrics = MetricsRegistry()
        self.breakers = CircuitBreakerBoard()
        quota = config.quota
        if (
            quota is None
            and config.quota_file is not None
            and config.quota_file.exists()
        ):
            # the initial spec comes from the reloadable file; a
            # malformed file at *startup* fails loudly (exit 2) --
            # only later reloads degrade to keeping the old spec
            text = config.quota_file.read_text(encoding="utf-8").strip()
            if text:
                quota = QuotaSpec.parse(text)
        self.quotas = QuotaRegistry(quota)
        self.gate = AdmissionGate(config.shed_after)
        self.cancel = CancellationToken()
        self.ready = threading.Event()
        self.draining = False
        self._drain_lock = threading.Lock()
        self._databases: dict[str, dict[str, Any]] = {}
        self._db_objects: dict[str, Database] = {}
        self._caches: dict[str, EvaluationCache] = {}
        self._engines: dict[tuple[str, str], tuple[Any, NedExplain]] = {}
        self._registry_lock = threading.RLock()
        #: recovery problems, surfaced on /readyz (the server starts
        #: regardless; a stuck manifest must not block the healthy ones)
        self._recovery_errors: list[str] = []
        #: the persistence layer; ``None`` disables journaling and
        #: recovery entirely (storage kind "none")
        self.backend: StorageBackend | None = None
        #: the :class:`~repro.storage.backend.RecoveryReport` of the
        #: startup storage scan (``None`` without a backend)
        self.storage_recovery = None
        kind = config.resolved_storage
        if kind != "none":
            if config.journal_dir is not None:
                config.journal_dir.mkdir(parents=True, exist_ok=True)
            self.backend = open_backend(
                kind,
                root=config.journal_dir,
                metrics=self.metrics,
                replicas=config.replicas,
                write_quorum=config.write_quorum,
                read_quorum=config.read_quorum,
            )
            # storage-level recovery runs before anything reads the
            # directory: stray temp files are quarantined and a corrupt
            # databases.json is repaired from its newest valid snapshot
            self.storage_recovery = self.backend.recover()
            self._load_registrations()

    # ------------------------------------------------------------------
    # Database registry
    # ------------------------------------------------------------------
    def register_database(self, body: Mapping[str, Any]) -> dict:
        """Register (or re-register) a database and warm it.

        ``body`` carries ``name`` plus a source: ``use_case_db`` (one
        of the paper's evaluation databases, optionally scaled) or
        ``csv_dir`` (a directory of CSV files on the server host).
        Optional ``warm``: a list of SQL texts whose canonical trees
        and shared evaluations are primed right now, so the first
        explain against them pays no cold-start cost.
        """
        name = body.get("name")
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ConfigurationError(
                f"database name must match {_NAME_RE.pattern}, got "
                f"{name!r}"
            )
        source = {
            key: body[key]
            for key in ("use_case_db", "csv_dir", "scale")
            if key in body
        }
        database = self._build_database(source)
        with self._registry_lock:
            self._db_objects[name] = database
            self._caches[name] = EvaluationCache()
            # drop engines warmed against a previous registration
            self._engines = {
                key: value
                for key, value in self._engines.items()
                if key[0] != name
            }
            self._databases[name] = dict(source)
        warmed = []
        for sql in body.get("warm", ()):  # prime engines eagerly
            canonical, engine = self.engine_for(name, sql)
            engine.cache.get_or_evaluate(
                canonical.root,
                engine.instance,
                canonical.aliases,
            )
            warmed.append(sql)
        self._persist_registrations()
        self.metrics.counter("service.databases.registered").inc()
        return {
            "name": name,
            "source": dict(source),
            "relations": len(database.table_names()),
            "warmed_queries": warmed,
        }

    @staticmethod
    def _build_database(source: Mapping[str, Any]) -> Database:
        use_case_db = source.get("use_case_db")
        csv_dir = source.get("csv_dir")
        if (use_case_db is None) == (csv_dir is None):
            raise ConfigurationError(
                "a database source needs exactly one of use_case_db / "
                "csv_dir"
            )
        if use_case_db is not None:
            from ..workloads.usecases import DATABASES

            builder = DATABASES.get(use_case_db)
            if builder is None:
                raise ConfigurationError(
                    f"unknown use-case database {use_case_db!r}; "
                    f"choose from {', '.join(DATABASES)}"
                )
            return builder(scale=int(source.get("scale", 1)))
        return load_database(csv_dir)

    def database(self, name: str) -> Database:
        with self._registry_lock:
            database = self._db_objects.get(name)
        if database is None:
            raise ServiceError(
                f"unknown database {name!r}; register it via "
                "POST /v1/databases first",
                status=404,
            )
        return database

    def databases_document(self) -> dict:
        with self._registry_lock:
            return {
                name: {
                    "source": dict(source),
                    "relations": len(
                        self._db_objects[name].table_names()
                    ),
                }
                for name, source in sorted(self._databases.items())
            }

    def engine_for(
        self, database_name: str, sql: str
    ) -> tuple[Any, NedExplain]:
        """The warm engine for (database, query), created on first use.

        Engines share their database's :class:`EvaluationCache`, so
        repeated questions against one query hit the shared bottom-up
        evaluation exactly as ``explain_many`` batches do.
        """
        if not isinstance(sql, str) or not sql.strip():
            raise ConfigurationError("sql must be a non-empty string")
        database = self.database(database_name)
        key = (database_name, sql)
        with self._registry_lock:
            cached = self._engines.get(key)
            if cached is not None:
                return cached
            canonical = sql_to_canonical(sql, database.schema)
            engine = NedExplain(
                canonical,
                database=database,
                cache=self._caches[database_name],
            )
            self._engines[key] = (canonical, engine)
            self.metrics.counter("service.engines.warmed").inc()
            return canonical, engine

    # ------------------------------------------------------------------
    # Registration persistence (storage backend only)
    # ------------------------------------------------------------------
    _REGISTRATIONS_DOC = "databases.json"

    def _persist_registrations(self) -> None:
        if self.backend is None:
            return
        with self._registry_lock:
            snapshot = {
                name: dict(source)
                for name, source in self._databases.items()
            }
        self.backend.write_document(self._REGISTRATIONS_DOC, snapshot)
        # a checksummed generation: startup recovery repairs a corrupt
        # primary databases.json from the newest valid one
        self.backend.write_snapshot("databases", snapshot)

    def _load_registrations(self) -> None:
        if self.backend is None:
            return
        try:
            stored = self.backend.read_document(self._REGISTRATIONS_DOC)
        except StorageError as exc:
            # backend.recover() already tried snapshot repair; with no
            # valid generation left this is genuinely unrecoverable
            raise ConfigurationError(
                f"persisted registrations "
                f"{self.backend.path_of(self._REGISTRATIONS_DOC)} are "
                f"corrupt: {exc}; move the file aside to start fresh"
            ) from exc
        if stored is None:
            return
        for name, source in stored.items():
            self.register_database({"name": name, **source})

    # ------------------------------------------------------------------
    # Explain (single question)
    # ------------------------------------------------------------------
    def explain_single(self, body: Mapping[str, Any]) -> dict:
        """One question, one report; degraded answers are explicit.

        The per-request deadline (``budget.deadline_ms`` or the
        ``X-Deadline-Ms`` header, already folded into ``body`` by the
        HTTP layer) becomes a :class:`~repro.robustness.Budget`: on
        exhaustion the engine returns a *partial* report and the
        envelope says so (``degradation_level: "partial"``), which the
        server maps to a 206 response -- a bounded-latency degraded
        answer, never a hang.
        """
        question = body.get("why_not")
        if not isinstance(question, str) or not question.strip():
            raise ConfigurationError(
                "why_not must be a non-empty predicate string"
            )
        budget = Budget.from_request(body.get("budget"))
        canonical, engine = self.engine_for(
            self._required_str(body, "database"),
            self._required_str(body, "sql"),
        )
        report = engine.explain(question, budget=budget)
        document: dict[str, Any] = {
            "question": question,
            "degradation_level": "partial" if report.partial else "full",
            "report": report.to_dict(),
        }
        if body.get("baseline"):
            try:
                baseline = WhyNotBaseline(
                    canonical,
                    database=self.database(body["database"]),
                    cache=engine.cache,
                )
                document["baseline"] = baseline.explain(
                    question
                ).summary()
            except UnsupportedQueryError as exc:
                document["baseline"] = f"n.a. ({exc})"
        return document

    # ------------------------------------------------------------------
    # Explain (batch, journaled)
    # ------------------------------------------------------------------
    def explain_batch(self, body: Mapping[str, Any]) -> tuple[dict, bool]:
        """A batch request: validate, journal the manifest, run, persist.

        Returns ``(document, fresh)``; ``fresh`` is False when the
        request id already has a completed result (idempotent retry:
        the stored result is served, nothing re-runs).
        """
        questions = body.get("why_not")
        if (
            not isinstance(questions, list)
            or not questions
            or not all(
                isinstance(q, str) and q.strip() for q in questions
            )
        ):
            raise ConfigurationError(
                "why_not must be a non-empty list of predicate strings"
            )
        request_id = body.get("request_id") or uuid.uuid4().hex[:16]
        if not _REQUEST_ID_RE.match(str(request_id)):
            raise ConfigurationError(
                f"request_id must match {_REQUEST_ID_RE.pattern}, got "
                f"{request_id!r}"
            )
        manifest = dict(body)
        manifest["request_id"] = request_id
        # validate the engine inputs before making the request durable
        self.engine_for(
            self._required_str(body, "database"),
            self._required_str(body, "sql"),
        )
        Budget.from_request(body.get("budget"))
        if self.backend is not None:
            existing = self._stored_result(request_id)
            if existing is not None:
                return existing, False
            self.backend.write_document(
                self._manifest_name(request_id), manifest
            )
        document = self._run_batch(manifest)
        return document, True

    @staticmethod
    def _manifest_name(request_id: str) -> str:
        return f"{request_id}.request.json"

    @staticmethod
    def _result_name(request_id: str) -> str:
        return f"{request_id}.result.json"

    @staticmethod
    def _journal_name(request_id: str) -> str:
        return f"{request_id}.journal.jsonl"

    def _stored_result(self, request_id: str) -> dict | None:
        if self.backend is None:
            return None
        try:
            return self.backend.read_document(
                self._result_name(request_id)
            )
        except StorageError:
            # a torn/corrupt result is quarantined (evidence, never
            # deleted); its manifest is still present, so recovery
            # re-runs the batch and writes a fresh result
            self.backend.quarantine(self._result_name(request_id))
            self.metrics.counter("service.results.corrupt").inc()
            return None

    def batch_result(self, request_id: str) -> dict:
        """The stored result of *request_id* (404 when unknown,
        409-shaped answer while it is still in flight)."""
        if not _REQUEST_ID_RE.match(str(request_id)):
            raise ConfigurationError(
                f"request_id must match {_REQUEST_ID_RE.pattern}"
            )
        stored = self._stored_result(request_id)
        if stored is not None:
            return stored
        if self.backend is not None and self.backend.exists(
            self._manifest_name(request_id)
        ):
            raise ServiceError(
                f"batch {request_id} is journaled but not finished -- "
                "in flight, or awaiting crash recovery",
                status=409,
            )
        raise ServiceError(
            f"unknown batch request {request_id!r}", status=404
        )

    def _run_batch(self, manifest: Mapping[str, Any]) -> dict:
        request_id = manifest["request_id"]
        questions = list(manifest["why_not"])
        workers = min(
            int(manifest.get("workers", 1)), self.config.workers
        )
        budget = Budget.from_request(manifest.get("budget"))
        batch_deadline = manifest.get("batch_deadline_ms")
        _, engine = self.engine_for(
            manifest["database"], manifest["sql"]
        )
        journal = None
        if self.backend is not None:
            journal = self.backend.journal(
                self._journal_name(request_id), resume=True
            )
        try:
            outcomes = engine.explain_each(
                questions,
                budget=budget,
                breakers=self.breakers,
                journal=journal,
                workers=workers,
                shed_after=manifest.get("shed_after"),
                batch_deadline_s=(
                    float(batch_deadline) / 1000.0
                    if batch_deadline is not None
                    else None
                ),
                cancel=self.cancel,
            )
            replayed = journal.replayable_count if journal else 0
        finally:
            if journal is not None:
                journal.close()
        levels = [o.degradation_level for o in outcomes]
        worst = max(
            levels, key=lambda level: DEGRADATION_SEVERITY[level]
        )
        stats = engine.cache.stats
        document = {
            "request_id": request_id,
            "questions": questions,
            "workers": workers,
            "degradation_level": worst,
            "replayed": replayed,
            "outcomes": [o.to_dict() for o in outcomes],
            "batch": {
                "questions": len(questions),
                "evaluations": stats.evaluations,
                "hits": stats.hits,
                "misses": stats.misses,
            },
        }
        if self.backend is not None:
            self.backend.write_document(
                self._result_name(request_id), document
            )
        self.metrics.counter("service.batches").inc()
        self.metrics.counter("service.questions").inc(len(questions))
        return document

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def recover(self) -> list[str]:
        """Re-run every journaled batch without a result; the ids.

        Runs before the service flips ready.  Each recovered batch
        resumes its own :class:`BatchJournal` -- completed questions
        replay verbatim, the remainder is computed -- so the stored
        result converges to what an uninterrupted run would have
        written.  A manifest that cannot be recovered (its database
        source vanished, say) is left in place and reported; it never
        blocks the server from starting.
        """
        if self.backend is None:
            return []
        recovered: list[str] = []
        for manifest_name in self.backend.list_documents(
            ".request.json"
        ):
            request_id = manifest_name[: -len(".request.json")]
            if self.backend.exists(
                self._result_name(request_id)
            ):
                continue
            try:
                manifest = self.backend.read_document(manifest_name)
                if manifest is None:
                    continue  # raced away between list and read
                self._run_batch(manifest)
            except (ReproError, OSError, json.JSONDecodeError) as exc:
                self.metrics.counter(
                    "service.recovery.failed"
                ).inc()
                self._recovery_errors.append(
                    f"{request_id}: {type(exc).__name__}: {exc}"
                )
                continue
            recovered.append(request_id)
            self.metrics.counter("service.recovery.batches").inc()
        return recovered

    # ------------------------------------------------------------------
    # Config hot reload
    # ------------------------------------------------------------------
    def reload_config(self) -> dict:
        """Re-read the quota file and swap the registry's spec.

        Triggered by SIGHUP or ``POST /v1/admin/reload``.  A missing,
        unreadable, or malformed quota file keeps the old spec in
        force and bumps ``config.reload_failed`` -- a bad reload must
        degrade to "nothing changed", never to "quotas off".  An
        *empty* quota file is an explicit request to disable quotas.
        """
        if self.config.quota_file is None:
            return {
                "reloaded": False,
                "reason": "no --quota-file configured",
            }
        try:
            text = self.config.quota_file.read_text(
                encoding="utf-8"
            ).strip()
            spec = QuotaSpec.parse(text) if text else None
        except (OSError, ReproError) as exc:
            self.metrics.counter("config.reload_failed").inc()
            return {
                "reloaded": False,
                "error": f"{type(exc).__name__}: {exc}",
                "quota": str(self.quotas.spec)
                if self.quotas.spec
                else None,
            }
        self.quotas.reconfigure(spec)
        self.metrics.counter("config.reloads").inc()
        return {
            "reloaded": True,
            "quota": str(spec) if spec is not None else None,
        }

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def begin_drain(self, reason: str) -> bool:
        """Flip the service into draining; True iff this call did it.

        Readiness goes 503 immediately; in-flight batch executors see
        the shared :class:`CancellationToken` and finish their running
        questions while cancelling unstarted ones (the executor's
        cooperative-drain path); unstarted questions are *not*
        journaled, so a later restart recomputes them.
        """
        with self._drain_lock:
            if self.draining:
                return False
            self.draining = True
        self.cancel.cancel(reason)
        self.metrics.counter("service.drains").inc()
        return True

    def wait_idle(self, timeout_s: float) -> bool:
        """Wait (real time) for admitted requests to finish."""
        import time

        deadline = time.monotonic() + timeout_s
        while self.gate.active > 0:
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.02)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health_document(self) -> dict:
        return {
            "status": "alive",
            "draining": self.draining,
            "active_requests": self.gate.active,
        }

    def ready_document(self) -> tuple[bool, dict]:
        open_sites = self.breakers.open_sites()
        # a replicated backend reports per-replica health: a single
        # degraded replica keeps the service ready (quorum still
        # holds) but is surfaced here; losing quorum flips /readyz
        replica_health = (
            self.backend.health()
            if self.backend is not None
            and hasattr(self.backend, "health")
            else None
        )
        quorum_ok = (
            replica_health is None or bool(replica_health["quorum_ok"])
        )
        ready = (
            self.ready.is_set()
            and not self.draining
            and not open_sites
            and quorum_ok
        )
        status = "ready"
        if not self.ready.is_set():
            status = "starting"
        elif self.draining:
            status = "draining"
        elif open_sites:
            status = "breaker-open"
        elif not quorum_ok:
            status = "quorum-lost"
        elif replica_health is not None and replica_health["degraded"]:
            status = "degraded"
        document = {
            "status": status,
            "draining": self.draining,
            "open_breakers": open_sites,
            "storage": (
                self.backend.describe()
                if self.backend is not None
                else {"kind": "none"}
            ),
        }
        if replica_health is not None:
            document["replicas"] = replica_health
        if self.storage_recovery is not None and (
            self.storage_recovery.quarantined
            or self.storage_recovery.repaired
        ):
            document["storage_recovery"] = (
                self.storage_recovery.to_dict()
            )
        if self._recovery_errors:
            document["recovery_errors"] = list(self._recovery_errors)
        return ready, document

    def metrics_document(self) -> dict:
        """The /metrics payload: service counters + cache/breaker state."""
        self.metrics.gauge("service.active_requests").set(
            float(self.gate.active)
        )
        self.metrics.gauge("service.shed_total").set(
            float(self.gate.shed_total)
        )
        with self._registry_lock:
            caches = dict(self._caches)
        for name, cache in sorted(caches.items()):
            stats = cache.stats
            for stat in ("hits", "misses", "evaluations", "evictions"):
                self.metrics.gauge(
                    f"service.cache.{name}.{stat}"
                ).set(float(getattr(stats, stat)))
        snapshot = self.metrics.snapshot()
        return {
            "metrics": snapshot,
            "breakers": self.breakers.states(),
            "draining": self.draining,
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _required_str(body: Mapping[str, Any], key: str) -> str:
        value = body.get(key)
        if not isinstance(value, str) or not value.strip():
            raise ConfigurationError(
                f"request body needs a non-empty {key!r} string"
            )
        return value
