"""A thin stdlib client for the why-not service.

Used by the test suite and the CI smoke driver; also a reasonable
starting point for real callers.  Every call returns a
:class:`ServiceResponse` -- status code, parsed JSON body, and the
``Retry-After`` header when the server sent one -- and *never* raises
on HTTP error status: shedding and quota refusals are expected
behaviour of a robust service, so the caller inspects
``response.status`` instead of catching exceptions.  Transport-level
failures (connection refused, reset) do raise ``OSError`` and friends;
:meth:`ServiceClient.wait_ready` wraps the retry loop callers need at
startup.

A client built with a :class:`~repro.robustness.RetryPolicy` also
retries *pushback* responses -- 429 (quota / shedding) and 503
(draining / quorum-lost) -- waiting the larger of the server's
``Retry-After`` and the policy's backoff between attempts.  The wait
runs on the ambient clock (:func:`repro.obs.clock.current_clock`), so
tests drive it with a :class:`~repro.obs.clock.ManualClock` and never
sleep for real.  Other statuses are returned immediately: only
pushback is a promise that retrying can help.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..obs.clock import current_clock
from ..robustness import RetryPolicy

__all__ = ["RETRY_STATUSES", "ServiceClient", "ServiceResponse"]

#: response statuses the retry policy treats as server pushback
RETRY_STATUSES = (429, 503)


@dataclass(frozen=True)
class ServiceResponse:
    """One HTTP exchange: status, parsed body, selected headers."""

    status: int
    body: dict = field(default_factory=dict)
    retry_after_s: float | None = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def error(self) -> dict | None:
        """The server's error envelope, or ``None`` on success."""
        value = self.body.get("error")
        return value if isinstance(value, dict) else None

    def __repr__(self) -> str:
        suffix = (
            f", error={self.error['type']}" if self.error else ""
        )
        return f"ServiceResponse(status={self.status}{suffix})"


class ServiceClient:
    """HTTP client bound to one server address (and one tenant)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        tenant: str | None = None,
        timeout_s: float = 30.0,
        retry: RetryPolicy | None = None,
    ):
        self.base = f"http://{host}:{port}"
        self.tenant = tenant
        self.timeout_s = timeout_s
        #: when set, 429/503 responses are retried (bounded by
        #: ``retry.max_attempts``), honouring ``Retry-After``
        self.retry = retry

    # -- transport -----------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> ServiceResponse:
        """One logical request: a single exchange, plus the bounded
        pushback-retry loop when a :class:`RetryPolicy` is set.

        The wait before retry *k* is the larger of the server's
        ``Retry-After`` and the policy's backoff for *k* -- the server
        knows how loaded it is, the policy knows how patient the
        caller can afford to be.
        """
        response = self._send(method, path, body, headers)
        if self.retry is None:
            return response
        retry_index = 0
        while (
            response.status in RETRY_STATUSES
            and retry_index < self.retry.max_attempts - 1
        ):
            delay = self.retry.delay_s(retry_index, key=path)
            if response.retry_after_s is not None:
                delay = max(delay, response.retry_after_s)
            if delay > 0:
                current_clock().sleep(delay)
            retry_index += 1
            response = self._send(method, path, body, headers)
        return response

    def _send(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> ServiceResponse:
        data = (
            json.dumps(body).encode("utf-8")
            if body is not None
            else None
        )
        request = urllib.request.Request(
            self.base + path, data=data, method=method
        )
        if data is not None:
            request.add_header("Content-Type", "application/json")
        if self.tenant is not None:
            request.add_header("X-Tenant", self.tenant)
        for key, value in (headers or {}).items():
            request.add_header(key, value)
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return self._wrap(
                    response.status,
                    response.read(),
                    response.headers.get("Retry-After"),
                )
        except urllib.error.HTTPError as exc:
            # 4xx/5xx are still JSON envelopes, not exceptions
            return self._wrap(
                exc.code,
                exc.read(),
                exc.headers.get("Retry-After"),
            )

    @staticmethod
    def _wrap(
        status: int, raw: bytes, retry_after: str | None
    ) -> ServiceResponse:
        try:
            body = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            body = {"raw": raw.decode("utf-8", "replace")}
        if not isinstance(body, dict):
            body = {"value": body}
        return ServiceResponse(
            status=status,
            body=body,
            retry_after_s=(
                float(retry_after) if retry_after is not None else None
            ),
        )

    # -- lifecycle -----------------------------------------------------
    def wait_ready(self, timeout_s: float = 20.0) -> ServiceResponse:
        """Poll ``/readyz`` until the server reports ready.

        Raises ``TimeoutError`` (carrying the last observed state) if
        readiness never arrives -- a started-but-stuck server should
        fail the caller loudly, not hang it.
        """
        deadline = time.monotonic() + timeout_s
        last: str = "no response yet"
        while time.monotonic() < deadline:
            try:
                response = self.readyz()
            except OSError as exc:
                last = f"transport: {exc}"
            else:
                if response.ok:
                    return response
                last = f"status {response.status}: {response.body}"
            time.sleep(0.05)
        raise TimeoutError(
            f"server at {self.base} not ready after {timeout_s}s "
            f"(last: {last})"
        )

    # -- endpoints -----------------------------------------------------
    def healthz(self) -> ServiceResponse:
        return self.request("GET", "/healthz")

    def readyz(self) -> ServiceResponse:
        return self.request("GET", "/readyz")

    def metrics(self) -> ServiceResponse:
        return self.request("GET", "/metrics")

    def metrics_prometheus(self) -> ServiceResponse:
        return self.request("GET", "/metrics?format=prometheus")

    def databases(self) -> ServiceResponse:
        return self.request("GET", "/v1/databases")

    def register_database(
        self, body: Mapping[str, Any]
    ) -> ServiceResponse:
        return self.request("POST", "/v1/databases", body=body)

    def explain(
        self,
        body: Mapping[str, Any],
        deadline_ms: float | None = None,
    ) -> ServiceResponse:
        headers = (
            {"X-Deadline-Ms": str(deadline_ms)}
            if deadline_ms is not None
            else None
        )
        return self.request(
            "POST", "/v1/explain", body=body, headers=headers
        )

    def explain_batch(
        self, body: Mapping[str, Any]
    ) -> ServiceResponse:
        return self.request("POST", "/v1/explain_batch", body=body)

    def batch_result(self, request_id: str) -> ServiceResponse:
        return self.request("GET", f"/v1/batches/{request_id}")
