"""Per-tenant token-bucket quotas for the why-not service.

A service facing traffic from many tenants must not let one of them
starve the rest: admission control (the bounded pending queue of
:mod:`repro.service.state`) protects the *process*, quotas protect the
*other tenants*.  The classic mechanism is a token bucket per tenant:
``burst`` tokens of capacity, refilled at ``rate_per_s``; a request
costs one token, and a tenant who spent the bucket is refused with the
exact number of seconds until a token is available again -- which the
HTTP layer surfaces as ``429`` + ``Retry-After``.

All time flows through the injectable clock of :mod:`repro.obs.clock`,
so quota tests drive refills with a
:class:`~repro.obs.clock.ManualClock` instead of sleeping, and a server
run under ``REPRO_MANUAL_CLOCK`` has fully deterministic quota
decisions (no refill ever happens: the burst is the whole budget).
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass

from ..errors import ConfigurationError, QuotaExceededError
from ..obs.clock import current_clock

__all__ = ["QuotaSpec", "TokenBucket", "QuotaRegistry"]

#: ``--quota`` grammar: ``RATE/UNIT`` with an optional ``:BURST``
#: (e.g. ``10/s``, ``120/min``, ``5/s:20``).
_QUOTA_RE = re.compile(
    r"^\s*(?P<rate>\d+(?:\.\d+)?)\s*/\s*(?P<unit>s|sec|second|m|min|minute)"
    r"\s*(?::\s*(?P<burst>\d+))?\s*$"
)

_UNIT_SECONDS = {
    "s": 1.0, "sec": 1.0, "second": 1.0,
    "m": 60.0, "min": 60.0, "minute": 60.0,
}


@dataclass(frozen=True)
class QuotaSpec:
    """One tenant quota: sustained rate plus burst capacity."""

    rate_per_s: float
    burst: int

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigurationError(
                f"quota rate must be positive, got {self.rate_per_s!r}"
            )
        if self.burst < 1:
            raise ConfigurationError(
                f"quota burst must be >= 1, got {self.burst!r}"
            )

    @classmethod
    def parse(cls, text: str) -> "QuotaSpec":
        """Parse ``RATE/UNIT[:BURST]`` (``10/s``, ``120/min:40``).

        Burst defaults to ``ceil(rate per second)`` with a floor of 1,
        so ``10/s`` admits a 10-request burst and ``30/min`` one
        request at a time.
        """
        match = _QUOTA_RE.match(text)
        if match is None:
            raise ConfigurationError(
                f"cannot parse quota {text!r}; expected RATE/UNIT"
                "[:BURST], e.g. 10/s, 120/min, or 5/s:20"
            )
        rate = float(match.group("rate")) / _UNIT_SECONDS[
            match.group("unit")
        ]
        if rate <= 0:
            raise ConfigurationError(
                f"quota rate must be positive, got {text!r}"
            )
        burst_text = match.group("burst")
        burst = (
            int(burst_text)
            if burst_text is not None
            else max(1, math.ceil(rate))
        )
        return cls(rate_per_s=rate, burst=burst)

    def __str__(self) -> str:
        return f"{self.rate_per_s:g}/s:{self.burst}"


class TokenBucket:
    """One tenant's bucket: thread-safe, clock-injected, lazily refilled.

    The bucket holds at most ``spec.burst`` tokens and gains
    ``spec.rate_per_s`` tokens per second of ambient-clock time,
    computed lazily at each acquire (no timers, no threads).
    :meth:`try_acquire` returns ``0.0`` when a token was taken, or the
    seconds until one token will be available -- the ``Retry-After``
    the HTTP layer reports.
    """

    def __init__(self, spec: QuotaSpec):
        self.spec = spec
        self._tokens = float(spec.burst)
        self._last = current_clock().monotonic()
        self._lock = threading.Lock()

    def try_acquire(self) -> float:
        """Take one token if available; else seconds until one exists."""
        now = current_clock().monotonic()
        with self._lock:
            elapsed = max(0.0, now - self._last)
            self._last = now
            self._tokens = min(
                float(self.spec.burst),
                self._tokens + elapsed * self.spec.rate_per_s,
            )
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.spec.rate_per_s

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def __repr__(self) -> str:
        return f"TokenBucket({self.spec}, tokens={self.tokens:.2f})"


class QuotaRegistry:
    """Lazily-created buckets, one per tenant, sharing one spec.

    ``spec=None`` disables quotas entirely (every check passes), so the
    service can thread one registry object through unconditionally.
    """

    def __init__(self, spec: QuotaSpec | None):
        self.spec = spec
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, tenant: str) -> TokenBucket:
        if self.spec is None:
            raise ConfigurationError(
                "this registry has no quota configured"
            )
        with self._lock:
            existing = self._buckets.get(tenant)
            if existing is None:
                existing = TokenBucket(self.spec)
                self._buckets[tenant] = existing
            return existing

    def reconfigure(self, spec: QuotaSpec | None) -> None:
        """Swap in *spec* for every tenant, atomically.

        Hot reload (SIGHUP / ``POST /v1/admin/reload``) replaces the
        spec and drops the existing buckets, so every tenant starts a
        fresh burst under the new policy; in-flight :meth:`check`
        calls finish against the old buckets, which is fine -- a
        reload is a policy change, not a fence.  ``spec=None`` turns
        quotas off.
        """
        with self._lock:
            self.spec = spec
            self._buckets = {}

    def check(self, tenant: str) -> None:
        """Admit one request for *tenant* or raise
        :class:`~repro.errors.QuotaExceededError` carrying the retry
        delay (seconds, rounded up to a positive value)."""
        if self.spec is None:
            return
        retry_after = self.bucket(tenant).try_acquire()
        if retry_after > 0.0:
            raise QuotaExceededError(
                f"tenant {tenant!r} exceeded its quota of "
                f"{self.spec}; retry in {retry_after:.3f}s",
                tenant=tenant,
                retry_after_s=retry_after,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)

    def __repr__(self) -> str:
        return f"QuotaRegistry({self.spec}, tenants={len(self)})"
