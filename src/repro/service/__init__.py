"""Why-not-as-a-service: the fault-tolerant HTTP facade.

The service layer turns the library's robustness machinery -- retries,
circuit breakers, budgets, load shedding, the crash-safe batch journal
-- into a long-lived process with an HTTP/JSON API:

* :mod:`repro.service.state` -- the application core (socket-free,
  fully unit-testable): database registry, engine cache, admission
  gate, request journaling and recovery;
* :mod:`repro.service.quota` -- per-tenant token buckets;
* :mod:`repro.service.server` -- the stdlib HTTP layer and the
  :func:`~repro.service.server.serve` lifecycle;
* :mod:`repro.service.client` -- a thin stdlib client used by the
  tests and the CI smoke driver;
* :mod:`repro.service.smoke` -- the end-to-end smoke scenario CI runs
  against a real subprocess server.
"""

from .quota import QuotaRegistry, QuotaSpec, TokenBucket
from .server import (
    SERVE_EXIT_ERROR,
    SERVE_EXIT_FORCED,
    SERVE_EXIT_OK,
    ReproServiceServer,
    ServiceHandler,
    serve,
)
from .state import AdmissionGate, ServiceConfig, ServiceState

__all__ = [
    "AdmissionGate",
    "QuotaRegistry",
    "QuotaSpec",
    "ReproServiceServer",
    "SERVE_EXIT_ERROR",
    "SERVE_EXIT_FORCED",
    "SERVE_EXIT_OK",
    "ServiceConfig",
    "ServiceHandler",
    "ServiceState",
    "TokenBucket",
    "serve",
]
