"""End-to-end smoke scenario for the why-not service (the CI job).

Run as ``python -m repro.service.smoke [--journal-dir DIR]``.  The
driver starts a real ``python -m repro.cli serve`` subprocess on an
ephemeral port and walks the whole happy path plus the drain story:

1. wait for ``/readyz``;
2. register the ``crime`` use-case database (with a warm query);
3. run a journaled ``/v1/explain_batch`` over it (workers=2) and check
   every outcome came back ``full``;
4. fetch the stored result back by id (idempotence);
5. scrape ``/metrics`` (JSON and Prometheus text) and check the batch
   counters moved;
6. SIGTERM the server and assert exit code 0 with
   ``active_requests=0`` in the drain summary -- a clean drain with an
   empty pending queue.

Any failed step exits nonzero with a diagnostic on stderr; the journal
directory is left in place so CI can upload it as an artifact.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from .client import ServiceClient

SQL = "SELECT Person.name FROM Person WHERE Person.hair = 'brown'"
QUESTIONS = ["(Person.name: Roger)", "(Person.name: Hannah)"]


def _fail(step: str, detail: str) -> int:
    print(f"SMOKE FAIL [{step}]: {detail}", file=sys.stderr)
    return 1


def run_smoke(journal_dir: Path, timeout_s: float = 60.0) -> int:
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--journal-dir",
            str(journal_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(os.environ),
    )
    try:
        assert server.stdout is not None
        first = server.stdout.readline().strip()
        if "listening on" not in first:
            return _fail("startup", f"unexpected first line {first!r}")
        port = int(first.rsplit(":", 1)[1])
        print(f"smoke: server up on port {port}")
        client = ServiceClient(port=port, tenant="smoke")
        client.wait_ready(timeout_s)

        response = client.register_database(
            {"name": "crime", "use_case_db": "crime", "warm": [SQL]}
        )
        if not response.ok or response.body.get("relations") != 4:
            return _fail("register", repr(response.body))
        print("smoke: registered crime database")

        response = client.explain_batch(
            {
                "request_id": "smoke-batch",
                "database": "crime",
                "sql": SQL,
                "why_not": QUESTIONS,
                "workers": 2,
            }
        )
        body = response.body
        if not response.ok:
            return _fail("batch", repr(body))
        if body.get("degradation_level") != "full":
            return _fail(
                "batch", f"degraded: {body.get('degradation_level')}"
            )
        if len(body.get("outcomes", [])) != len(QUESTIONS):
            return _fail("batch", f"outcome count: {body}")
        print("smoke: batch ran clean")

        stored = client.batch_result("smoke-batch")
        if not stored.ok or stored.body.get("outcomes") != body.get(
            "outcomes"
        ):
            return _fail("result", repr(stored.body))
        print("smoke: stored result matches")

        metrics = client.metrics()
        snapshot = metrics.body.get("metrics", {})
        if snapshot.get("service.batches", {}).get("value") != 1:
            return _fail("metrics", repr(snapshot.get("service.batches")))
        prometheus = client.metrics_prometheus()
        if "service_batches 1" not in prometheus.body.get("raw", ""):
            return _fail(
                "metrics", "prometheus text missing service_batches"
            )
        print("smoke: metrics scraped (json + prometheus)")

        server.send_signal(signal.SIGTERM)
        try:
            output, _ = server.communicate(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            server.kill()
            return _fail("drain", "server did not exit after SIGTERM")
        if server.returncode != 0:
            return _fail(
                "drain",
                f"exit code {server.returncode}; output:\n{output}",
            )
        if "active_requests=0" not in output:
            return _fail(
                "drain", f"pending queue not empty:\n{output}"
            )
        print("smoke: clean drain, empty pending queue -- PASS")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="why-not service smoke scenario (CI)"
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        help="journal directory to use (kept for artifact upload); "
        "default: a fresh temporary directory",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-step timeout in seconds (default: 60)",
    )
    args = parser.parse_args(argv)
    if args.journal_dir is not None:
        journal_dir = Path(args.journal_dir)
        journal_dir.mkdir(parents=True, exist_ok=True)
        return run_smoke(journal_dir, args.timeout)
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        return run_smoke(Path(tmp), args.timeout)


if __name__ == "__main__":
    raise SystemExit(main())
