"""Text renderers for the evaluation tables and figures.

Every renderer prints the same rows/series as the paper's artefact:

* :func:`render_table3` / :func:`render_table4` -- the query and use
  case catalogs;
* :func:`render_table5` -- Why-Not vs NedExplain answers per use case;
* :func:`render_fig5`   -- the phase-wise runtime distribution of
  NedExplain (stacked percentages);
* :func:`render_fig6`   -- total runtime of both algorithms per use
  case (the bar chart of Fig. 6 as an aligned table with spark bars).
"""

from __future__ import annotations

from typing import Sequence

from ..core.nedexplain import PHASES
from ..workloads.usecases import QUERIES, USE_CASES, get_canonical
from .runner import UseCaseResult


def _truncate(text: str, width: int) -> str:
    if len(text) <= width:
        return text
    return text[: width - 3] + "..."


def render_table3() -> str:
    """Table 3: the use-case queries and their canonical trees."""
    lines = ["Table 3: use case relational queries", "=" * 60]
    for name in sorted(QUERIES, key=lambda q: (len(q), q)):
        database, _builder = QUERIES[name]
        canonical = get_canonical(name)
        lines.append(f"\n{name}  (database: {database})")
        lines.append(canonical.pretty())
    return "\n".join(lines)


def render_table4() -> str:
    """Table 4: the use cases (query + Why-Not predicate)."""
    lines = [
        "Table 4: use cases",
        f"{'Use case':<10}{'Query':<7}Predicate",
        "-" * 70,
    ]
    for uc in USE_CASES:
        lines.append(f"{uc.name:<10}{uc.query:<7}{uc.predicate}")
    return "\n".join(lines)


def render_table5(results: Sequence[UseCaseResult]) -> str:
    """Table 5: Why-Not and NedExplain answers, per use case."""
    lines = [
        "Table 5: Why-Not and NedExplain answers, per use case",
        f"{'Use case':<10}{'Why-Not':<18}{'Detailed':<46}"
        f"{'Condensed':<18}{'Secondary'}",
        "-" * 110,
    ]
    for result in results:
        detailed = _truncate(result.ned_answer_text(), 44)
        condensed = _truncate(
            " ; ".join(
                ("{" + ", ".join(a.condensed_labels) + "}")
                for a in result.ned.answers
            ),
            16,
        )
        secondary = ", ".join(result.ned.secondary_labels) or "-"
        lines.append(
            f"{result.use_case.name:<10}"
            f"{_truncate(result.whynot_answer_text(), 16):<18}"
            f"{detailed:<46}{condensed:<18}{secondary}"
        )
    return "\n".join(lines)


def render_fig5(results: Sequence[UseCaseResult]) -> str:
    """Fig. 5: phase-wise runtime distribution for NedExplain (%)."""
    lines = [
        "Fig. 5: % time distribution over NedExplain phases",
        f"{'Use case':<10}"
        + "".join(f"{phase:<18}" for phase in PHASES),
        "-" * (10 + 18 * len(PHASES)),
    ]
    for result in results:
        total = result.ned.total_time_ms or 1e-9
        row = f"{result.use_case.name:<10}"
        for phase in PHASES:
            share = 100.0 * result.ned.phase_times_ms.get(phase, 0.0) / total
            row += f"{share:>6.1f}%{'':<11}"
        lines.append(row)
    return "\n".join(lines)


def render_fig6(results: Sequence[UseCaseResult]) -> str:
    """Fig. 6: Why-Not vs NedExplain execution time (ms)."""
    peak = max(
        [result.ned_total_ms for result in results]
        + [
            result.whynot_total_ms
            for result in results
            if result.whynot_total_ms is not None
        ]
        + [1e-9]
    )

    def bar(value: float) -> str:
        width = int(round(28 * value / peak))
        return "#" * max(width, 1)

    lines = [
        "Fig. 6: Why-Not and NedExplain execution time",
        f"{'Use case':<10}{'Why-Not(ms)':>12}{'Ned(ms)':>10}  comparison",
        "-" * 78,
    ]
    for result in results:
        ned_ms = result.ned_total_ms
        if result.whynot_total_ms is None:
            wn_txt = "n.a."
            wn_bar = ""
        else:
            wn_txt = f"{result.whynot_total_ms:.1f}"
            wn_bar = f"W {bar(result.whynot_total_ms)}"
        lines.append(
            f"{result.use_case.name:<10}{wn_txt:>12}{ned_ms:>10.1f}  "
            f"{wn_bar}"
        )
        lines.append(f"{'':<32}  N {bar(ned_ms)}")
    return "\n".join(lines)


def render_all(results: Sequence[UseCaseResult]) -> str:
    """Every table and figure, concatenated."""
    return "\n\n".join(
        (
            render_table4(),
            render_table5(results),
            render_fig5(results),
            render_fig6(results),
        )
    )
