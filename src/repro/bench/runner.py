"""Per-use-case measurement runner for the evaluation harness.

Runs one use case with NedExplain and/or the Why-Not baseline and
collects answers plus phase timings -- the raw material of the paper's
Table 5 (answers), Fig. 5 (NedExplain phase distribution) and Fig. 6
(total runtime comparison).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..baseline import WhyNotBaseline, WhyNotBaselineReport
from ..core import NedExplain, NedExplainConfig, NedExplainReport
from ..errors import (
    BudgetExceededError,
    ConfigurationError,
    UnsupportedQueryError,
)
from ..obs import Tracer, counter_values, tracing
from ..obs.clock import perf_counter
from ..robustness.budget import (
    Budget,
    ExecutionContext,
    execution_context,
)
from ..robustness.resilience import RetryPolicy
from ..workloads.usecases import UseCase, use_case_setup


@dataclass
class UseCaseResult:
    """Measured outcome of one use case."""

    use_case: UseCase
    ned: NedExplainReport
    whynot: WhyNotBaselineReport | None = None
    whynot_na: bool = False

    @property
    def ned_total_ms(self) -> float:
        return self.ned.total_time_ms

    @property
    def whynot_total_ms(self) -> float | None:
        if self.whynot is None:
            return None
        return self.whynot.total_time_ms

    def ned_answer_text(self) -> str:
        parts = []
        for answer in self.ned.answers:
            if answer.no_compatible_data:
                parts.append("{}")
                continue
            rendered = ", ".join(repr(e) for e in answer.detailed)
            parts.append("{" + rendered + "}")
        return " ; ".join(parts)

    def whynot_answer_text(self) -> str:
        if self.whynot_na:
            return "n.a."
        assert self.whynot is not None
        if self.whynot.is_empty():
            return "(none)"
        return ", ".join(self.whynot.answer_labels)


def run_use_case(
    name: str,
    scale: int = 1,
    run_baseline: bool = True,
    config: NedExplainConfig | None = None,
    budget: Budget | None = None,
    retry: RetryPolicy | None = None,
    workers: int = 1,
) -> UseCaseResult:
    """Run one named use case with both algorithms.

    With a *budget*, NedExplain degrades to a partial report on
    exhaustion (``result.ned.partial``); the baseline, which has no
    partial-answer notion, is marked n.a. when its budget runs out so
    a runaway baseline cannot stall a benchmark sweep.  With a *retry*
    policy, the NedExplain run goes through the resilient
    :meth:`~repro.core.nedexplain.NedExplain.explain_each` path --
    transient faults (e.g. an injected chaos plan during a soak sweep)
    are retried instead of aborting the benchmark.  With *workers* > 1
    the same path runs under the supervised parallel executor, which
    sweeps use to sanity-check that parallel answers match sequential
    ones.
    """
    use_case, database, canonical = use_case_setup(name, scale)
    ned_engine = NedExplain(canonical, database=database, config=config)
    if retry is not None or workers > 1:
        (outcome,) = ned_engine.explain_each(
            [use_case.predicate],
            budget=budget,
            retry=retry,
            workers=workers,
        )
        if outcome.report is None:
            assert outcome.error is not None
            raise outcome.error
        ned_report = outcome.report
    else:
        ned_report = ned_engine.explain(use_case.predicate, budget=budget)

    whynot_report: WhyNotBaselineReport | None = None
    whynot_na = False
    if run_baseline:
        try:
            baseline = WhyNotBaseline(canonical, database=database)
            whynot_report = baseline.explain(
                use_case.predicate, budget=budget
            )
        except (UnsupportedQueryError, BudgetExceededError):
            whynot_na = True
    return UseCaseResult(
        use_case=use_case,
        ned=ned_report,
        whynot=whynot_report,
        whynot_na=whynot_na,
    )


@dataclass(frozen=True)
class Measurement:
    """One benchmark's raw measurement: timing samples + counters.

    ``samples_ms`` are the wall-clock repeats (reduce them with
    :func:`reduce_samples`); ``counters`` is the deterministic counter
    snapshot of one dedicated traced run -- exact work accounting
    (``budget.rows``, ``budget.comparisons``, cache hits/misses,
    traversal steps) that does not vary with repeats or host speed.
    """

    name: str
    samples_ms: tuple[float, ...]
    counters: Mapping[str, int]

    @property
    def median_ms(self) -> float:
        return statistics.median(self.samples_ms)

    @property
    def mad_ms(self) -> float:
        return mad(self.samples_ms)


def mad(samples: "tuple[float, ...] | list[float]") -> float:
    """Median absolute deviation -- the robust noise width the gate
    uses for its bands (a single outlier repeat cannot widen it the
    way it would a standard deviation)."""
    if not samples:
        raise ConfigurationError("mad() of an empty sample set")
    center = statistics.median(samples)
    return statistics.median(abs(s - center) for s in samples)


def reduce_samples(
    samples: "tuple[float, ...] | list[float]",
) -> tuple[float, float]:
    """``(median, MAD)`` of a sample list (the gate's reduction)."""
    noise = mad(samples)  # validates non-emptiness
    return statistics.median(samples), noise


def measure(
    factory: Callable[[], Callable[[], object]],
    *,
    name: str,
    repeats: int = 5,
    warmup: int = 1,
) -> Measurement:
    """Measure one benchmark with warmups, repeats, and a counter run.

    *factory* builds a fresh zero-argument callable per run (a fresh
    engine, so every sample measures the cold path and no state leaks
    between samples).  The protocol is:

    1. *warmup* untimed runs (lazy indexes, interning, import costs);
    2. *repeats* timed runs collected as ``samples_ms``;
    3. one final run under a private tracer and an unlimited budget
       context, whose counter snapshot becomes ``counters``.

    The counter run is separate from the timed runs on purpose: tracing
    costs ~17% wall-clock, and the counters of a deterministic
    benchmark do not change across repeats.
    """
    if repeats < 1:
        raise ConfigurationError(
            f"repeats must be positive, got {repeats!r}"
        )
    if warmup < 0:
        raise ConfigurationError(
            f"warmup must be non-negative, got {warmup!r}"
        )
    for _ in range(warmup):
        factory()()
    samples = []
    for _ in range(repeats):
        call = factory()
        started = perf_counter()
        call()
        samples.append((perf_counter() - started) * 1000.0)
    tracer = Tracer()
    with tracing(tracer):
        # An explicit (unlimited) budget context makes the execution
        # layers mirror row/comparison ticks into the tracer's
        # budget.* counters even for engines that would not install
        # a context themselves.
        with execution_context(ExecutionContext(Budget())):
            factory()()
    counters = counter_values(tracer.metrics.snapshot())
    return Measurement(
        name=name, samples_ms=tuple(samples), counters=counters
    )


def use_case_factory(
    name: str,
    algorithm: str = "ned",
    scale: int = 1,
    engine: str = "row",
) -> Callable[[], Callable[[], object]]:
    """A :func:`measure` factory for one Table 4 use case.

    *algorithm* is ``"ned"`` (NedExplain) or ``"whynot"`` (the Why-Not
    baseline; raises :class:`~repro.errors.UnsupportedQueryError` for
    aggregation queries the baseline cannot trace).  *engine* routes
    evaluation through the row engine (the default, the differential
    oracle) or the columnar engine (``"columnar"``; NedExplain only).
    """
    from ..relational import EvaluationCache

    if algorithm not in ("ned", "whynot"):
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; expected 'ned' or "
            "'whynot'"
        )
    if engine not in ("row", "columnar"):
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected 'row' or 'columnar'"
        )
    if engine == "columnar" and algorithm != "ned":
        raise ConfigurationError(
            "the whynot baseline has no columnar engine; use "
            "algorithm='ned' with engine='columnar'"
        )
    use_case, database, canonical = use_case_setup(name, scale)
    if algorithm == "whynot":
        # fail fast (unsupported query shape) at factory-build time
        WhyNotBaseline(canonical, database=database)
    config = (
        NedExplainConfig(use_columnar=True)
        if engine == "columnar"
        else None
    )

    def build() -> Callable[[], object]:
        if algorithm == "ned":
            # a private cache per run: every sample measures the cold
            # path and the counter run cannot be perturbed by whatever
            # the process-global default cache happens to hold
            runner = NedExplain(
                canonical,
                database=database,
                cache=EvaluationCache(),
                config=config,
            )
        else:
            runner = WhyNotBaseline(
                canonical,
                database=database,
                cache=EvaluationCache(),
            )
        return lambda: runner.explain(use_case.predicate)

    return build


def run_all(
    scale: int = 1,
    config: NedExplainConfig | None = None,
    budget: Budget | None = None,
) -> list[UseCaseResult]:
    """Run every use case of Table 4."""
    from ..workloads.usecases import USE_CASES

    return [
        run_use_case(uc.name, scale=scale, config=config, budget=budget)
        for uc in USE_CASES
    ]
