"""Per-use-case measurement runner for the evaluation harness.

Runs one use case with NedExplain and/or the Why-Not baseline and
collects answers plus phase timings -- the raw material of the paper's
Table 5 (answers), Fig. 5 (NedExplain phase distribution) and Fig. 6
(total runtime comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baseline import WhyNotBaseline, WhyNotBaselineReport
from ..core import NedExplain, NedExplainConfig, NedExplainReport
from ..errors import BudgetExceededError, UnsupportedQueryError
from ..robustness.budget import Budget
from ..robustness.resilience import RetryPolicy
from ..workloads.usecases import UseCase, use_case_setup


@dataclass
class UseCaseResult:
    """Measured outcome of one use case."""

    use_case: UseCase
    ned: NedExplainReport
    whynot: WhyNotBaselineReport | None = None
    whynot_na: bool = False

    @property
    def ned_total_ms(self) -> float:
        return self.ned.total_time_ms

    @property
    def whynot_total_ms(self) -> float | None:
        if self.whynot is None:
            return None
        return self.whynot.total_time_ms

    def ned_answer_text(self) -> str:
        parts = []
        for answer in self.ned.answers:
            if answer.no_compatible_data:
                parts.append("{}")
                continue
            rendered = ", ".join(repr(e) for e in answer.detailed)
            parts.append("{" + rendered + "}")
        return " ; ".join(parts)

    def whynot_answer_text(self) -> str:
        if self.whynot_na:
            return "n.a."
        assert self.whynot is not None
        if self.whynot.is_empty():
            return "(none)"
        return ", ".join(self.whynot.answer_labels)


def run_use_case(
    name: str,
    scale: int = 1,
    run_baseline: bool = True,
    config: NedExplainConfig | None = None,
    budget: Budget | None = None,
    retry: RetryPolicy | None = None,
    workers: int = 1,
) -> UseCaseResult:
    """Run one named use case with both algorithms.

    With a *budget*, NedExplain degrades to a partial report on
    exhaustion (``result.ned.partial``); the baseline, which has no
    partial-answer notion, is marked n.a. when its budget runs out so
    a runaway baseline cannot stall a benchmark sweep.  With a *retry*
    policy, the NedExplain run goes through the resilient
    :meth:`~repro.core.nedexplain.NedExplain.explain_each` path --
    transient faults (e.g. an injected chaos plan during a soak sweep)
    are retried instead of aborting the benchmark.  With *workers* > 1
    the same path runs under the supervised parallel executor, which
    sweeps use to sanity-check that parallel answers match sequential
    ones.
    """
    use_case, database, canonical = use_case_setup(name, scale)
    ned_engine = NedExplain(canonical, database=database, config=config)
    if retry is not None or workers > 1:
        (outcome,) = ned_engine.explain_each(
            [use_case.predicate],
            budget=budget,
            retry=retry,
            workers=workers,
        )
        if outcome.report is None:
            assert outcome.error is not None
            raise outcome.error
        ned_report = outcome.report
    else:
        ned_report = ned_engine.explain(use_case.predicate, budget=budget)

    whynot_report: WhyNotBaselineReport | None = None
    whynot_na = False
    if run_baseline:
        try:
            baseline = WhyNotBaseline(canonical, database=database)
            whynot_report = baseline.explain(
                use_case.predicate, budget=budget
            )
        except (UnsupportedQueryError, BudgetExceededError):
            whynot_na = True
    return UseCaseResult(
        use_case=use_case,
        ned=ned_report,
        whynot=whynot_report,
        whynot_na=whynot_na,
    )


def run_all(
    scale: int = 1,
    config: NedExplainConfig | None = None,
    budget: Budget | None = None,
) -> list[UseCaseResult]:
    """Run every use case of Table 4."""
    from ..workloads.usecases import USE_CASES

    return [
        run_use_case(uc.name, scale=scale, config=config, budget=budget)
        for uc in USE_CASES
    ]
