"""Benchmark harness: runners, phase accounting, table/figure renderers
for the paper's evaluation (Table 5, Fig. 5, Fig. 6)."""

from .phases import PhaseAccumulator, dominant_phase, merge_accumulators
from .report import (
    render_all,
    render_fig5,
    render_fig6,
    render_table3,
    render_table4,
    render_table5,
)
from .runner import UseCaseResult, run_all, run_use_case

__all__ = [
    "PhaseAccumulator",
    "UseCaseResult",
    "dominant_phase",
    "merge_accumulators",
    "render_all",
    "render_fig5",
    "render_fig6",
    "render_table3",
    "render_table4",
    "render_table5",
    "run_all",
    "run_use_case",
]
