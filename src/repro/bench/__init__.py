"""Benchmark harness: runners, phase accounting, table/figure renderers
for the paper's evaluation (Table 5, Fig. 5, Fig. 6)."""

from .baselines import (
    BaselineEntry,
    SuiteBaseline,
    baseline_dir,
    read_suite_baseline,
    write_suite_baseline,
)
from .phases import PhaseAccumulator, dominant_phase, merge_accumulators
from .report import (
    render_all,
    render_fig5,
    render_fig6,
    render_table3,
    render_table4,
    render_table5,
)
from .runner import (
    Measurement,
    UseCaseResult,
    mad,
    measure,
    reduce_samples,
    run_all,
    run_use_case,
    use_case_factory,
)

__all__ = [
    "BaselineEntry",
    "GateReport",
    "Measurement",
    "PhaseAccumulator",
    "SuiteBaseline",
    "Thresholds",
    "UseCaseResult",
    "allowed_regression_ms",
    "baseline_dir",
    "collect_phases",
    "collect_runtime",
    "compare_measurement",
    "diff_counters",
    "dominant_phase",
    "mad",
    "measure",
    "merge_accumulators",
    "phases_payload",
    "read_bench_artifact",
    "read_suite_baseline",
    "read_trajectory",
    "reduce_samples",
    "render_all",
    "render_fig5",
    "render_fig6",
    "render_table3",
    "render_table4",
    "render_table5",
    "run_all",
    "run_check",
    "run_report",
    "run_update",
    "run_use_case",
    "runtime_payload",
    "use_case_factory",
    "write_bench_artifact",
    "write_sample_trace",
    "write_suite_baseline",
]

#: Names of the runnable submodules (`python -m repro.bench.gate`,
#: `python -m repro.bench.artifacts`) resolved lazily so runpy does not
#: find them pre-imported and warn about double execution; everything
#: else about `from repro.bench import run_check` is unchanged.
_LAZY_EXPORTS = {
    "GateReport": "gate",
    "Thresholds": "gate",
    "allowed_regression_ms": "gate",
    "compare_measurement": "gate",
    "diff_counters": "gate",
    "read_trajectory": "gate",
    "run_check": "gate",
    "run_report": "gate",
    "run_update": "gate",
    "collect_phases": "artifacts",
    "collect_runtime": "artifacts",
    "phases_payload": "artifacts",
    "read_bench_artifact": "artifacts",
    "runtime_payload": "artifacts",
    "write_bench_artifact": "artifacts",
    "write_sample_trace": "artifacts",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(
            f".{module_name}", __name__
        )
        return getattr(module, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
