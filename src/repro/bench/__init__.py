"""Benchmark harness: runners, phase accounting, table/figure renderers
for the paper's evaluation (Table 5, Fig. 5, Fig. 6)."""

from .artifacts import (
    collect_phases,
    collect_runtime,
    phases_payload,
    read_bench_artifact,
    runtime_payload,
    write_bench_artifact,
    write_sample_trace,
)
from .phases import PhaseAccumulator, dominant_phase, merge_accumulators
from .report import (
    render_all,
    render_fig5,
    render_fig6,
    render_table3,
    render_table4,
    render_table5,
)
from .runner import UseCaseResult, run_all, run_use_case

__all__ = [
    "PhaseAccumulator",
    "UseCaseResult",
    "collect_phases",
    "collect_runtime",
    "dominant_phase",
    "merge_accumulators",
    "phases_payload",
    "read_bench_artifact",
    "render_all",
    "render_fig5",
    "render_fig6",
    "render_table3",
    "render_table4",
    "render_table5",
    "run_all",
    "run_use_case",
    "runtime_payload",
    "write_bench_artifact",
    "write_sample_trace",
]
