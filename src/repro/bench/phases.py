"""Phase accounting helpers (the four phases of Fig. 5).

NedExplain itself accumulates per-phase wall-clock time (see
:data:`repro.core.nedexplain.PHASES`); this module aggregates those
measurements across runs and renders distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.nedexplain import PHASES


@dataclass
class PhaseAccumulator:
    """Accumulates phase timings over repeated runs."""

    totals: dict[str, float] = field(
        default_factory=lambda: {phase: 0.0 for phase in PHASES}
    )
    runs: int = 0

    def add(self, phase_times_ms: Mapping[str, float]) -> None:
        for phase in PHASES:
            self.totals[phase] += phase_times_ms.get(phase, 0.0)
        self.runs += 1

    @property
    def grand_total_ms(self) -> float:
        return sum(self.totals.values())

    def mean_ms(self, phase: str) -> float:
        if not self.runs:
            return 0.0
        return self.totals[phase] / self.runs

    def distribution(self) -> dict[str, float]:
        """Phase -> share of total time, in percent."""
        total = self.grand_total_ms or 1e-9
        return {
            phase: 100.0 * self.totals[phase] / total for phase in PHASES
        }


def merge_accumulators(
    accumulators: Iterable[PhaseAccumulator],
) -> PhaseAccumulator:
    """Combine several accumulators into one."""
    merged = PhaseAccumulator()
    for accumulator in accumulators:
        for phase in PHASES:
            merged.totals[phase] += accumulator.totals[phase]
        merged.runs += accumulator.runs
    return merged


def dominant_phase(phase_times_ms: Mapping[str, float]) -> str:
    """The phase consuming the largest share of one run."""
    return max(PHASES, key=lambda phase: phase_times_ms.get(phase, 0.0))
