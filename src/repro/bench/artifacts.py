"""Machine-readable benchmark artifacts (``BENCH_*.json``).

The evaluation figures were reproduced as rendered text tables from day
one, but nothing machine-readable survived a benchmark run -- CI could
not diff a regression and the repo carried no canonical numbers.  This
module fixes that with one tiny file format:

* :func:`write_bench_artifact` writes ``BENCH_{name}.json`` into the
  benchmark artifact directory (``REPRO_BENCH_DIR`` or the current
  working directory), wrapping the payload with format metadata;
* :func:`phases_payload` / :func:`runtime_payload` shape the Fig. 5 and
  Fig. 6 measurements into stable JSON;
* :func:`collect_phases` / :func:`collect_runtime` produce those
  measurements standalone -- no pytest-benchmark required -- so both
  the benchmark suite and a bare ``python -m repro.bench.artifacts``
  emit identical artifacts;
* :func:`write_sample_trace` runs one use case under tracing and saves
  the JSON-lines span trace alongside the numbers.

Running the module is the CI entry point::

    python -m repro.bench.artifacts --out-dir .

writes ``BENCH_phases.json``, ``BENCH_runtime.json`` and
``BENCH_trace_sample.jsonl``.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..errors import ConfigurationError, UnsupportedQueryError
from ..obs import Tracer, tracing, write_trace_jsonl

BENCH_FORMAT = "repro.bench"
BENCH_FORMAT_VERSION = 1

#: Evaluation engines an artifact can be measured under.
ENGINES = ("row", "columnar")


def _check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


def bench_dir() -> Path:
    """Artifact directory: ``$REPRO_BENCH_DIR`` or the cwd."""
    return Path(os.environ.get("REPRO_BENCH_DIR", "."))


def write_bench_artifact(
    name: str, payload: Any, directory: Path | str | None = None
) -> Path:
    """Write ``BENCH_{name}.json`` and return its path.

    The payload is wrapped in an envelope carrying the format name and
    version so downstream tooling can validate what it parsed.
    """
    base = Path(directory) if directory is not None else bench_dir()
    base.mkdir(parents=True, exist_ok=True)
    path = base / f"BENCH_{name}.json"
    document = {
        "artifact": name,
        "format": BENCH_FORMAT,
        "version": BENCH_FORMAT_VERSION,
        "data": payload,
    }
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def read_bench_artifact(path: Path | str) -> Any:
    """Parse and validate a ``BENCH_*.json`` file; return its data."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or document.get("format") != (
        BENCH_FORMAT
    ):
        raise ConfigurationError(
            f"{path} is not a {BENCH_FORMAT} artifact"
        )
    if document.get("version") != BENCH_FORMAT_VERSION:
        raise ConfigurationError(
            f"{path}: unsupported artifact version "
            f"{document.get('version')!r}"
        )
    return document["data"]


# ---------------------------------------------------------------------------
# Payload shapes
# ---------------------------------------------------------------------------
def phases_payload(results: Sequence, engine: str = "row") -> dict:
    """Fig. 5 payload from :class:`~repro.bench.runner.UseCaseResult`s.

    Per use case: absolute per-phase milliseconds and the percentage
    distribution the figure plots.  *engine* records which evaluation
    engine (``"row"`` or ``"columnar"``) produced the numbers, so two
    artifacts from the two engines are never confused for each other.
    """
    _check_engine(engine)
    use_cases: dict[str, dict] = {}
    for result in results:
        times = dict(result.ned.phase_times_ms)
        total = sum(times.values())
        use_cases[result.use_case.name] = {
            "query": result.use_case.query,
            "phase_times_ms": times,
            "total_ms": total,
            "percent": {
                phase: (100.0 * value / total) if total else 0.0
                for phase, value in times.items()
            },
        }
    return {
        "figure": "5",
        "unit": "ms",
        "engine": engine,
        "use_cases": use_cases,
    }


def runtime_payload(
    medians: Mapping[str, Mapping[str, float]],
    scale: int,
    na_reasons: Mapping[str, str] | None = None,
    engine: str = "row",
) -> dict:
    """Fig. 6 payload from per-use-case median runtimes.

    *medians* maps use-case name to ``{"ned": ms, "whynot": ms}``
    (``"whynot"`` absent when the baseline could not run).
    *na_reasons* maps such use cases to *why* the baseline number is
    missing (``"unsupported"`` for aggregation queries the Why-Not
    baseline cannot trace, ``"budget-exhausted"`` for a timed-out
    run) -- a null ``whynot_ms`` without a recorded reason would read
    as a measurement bug, so the serializer refuses to leave it
    unexplained and emits an explicit ``"speedup": null`` alongside.
    *engine* names the evaluation engine behind the NedExplain column
    (the baseline is always measured on the row engine).
    """
    _check_engine(engine)
    na_reasons = na_reasons or {}
    use_cases: dict[str, dict] = {}
    for name, values in medians.items():
        ned = values.get("ned")
        whynot = values.get("whynot")
        entry: dict[str, Any] = {
            "nedexplain_ms": ned,
            "whynot_ms": whynot,
        }
        if ned and whynot is not None:
            entry["speedup"] = whynot / ned
        else:
            entry["speedup"] = None
            entry["whynot_na_reason"] = na_reasons.get(
                name, "not-measured"
            )
        use_cases[name] = entry
    return {
        "figure": "6",
        "unit": "ms",
        "scale": scale,
        "engine": engine,
        "use_cases": use_cases,
    }


# ---------------------------------------------------------------------------
# Standalone collection (no pytest-benchmark required)
# ---------------------------------------------------------------------------
def collect_phases(
    repeats: int = 3,
    scale: int = 1,
    warmup: int = 1,
    engine: str = "row",
) -> dict:
    """Measure the Fig. 5 phase distribution over every use case.

    Runs each use case *warmup* untimed times plus *repeats* measured
    times and keeps the per-phase medians, shaped by
    :func:`phases_payload`.  With ``engine="columnar"`` the NedExplain
    runs evaluate queries batch-at-a-time and the payload records it.
    """
    from ..core import NedExplain, NedExplainConfig
    from ..workloads import USE_CASES, use_case_setup

    from .runner import UseCaseResult

    _check_engine(engine)
    if repeats < 1:
        raise ConfigurationError(
            f"repeats must be positive, got {repeats!r}"
        )
    if warmup < 0:
        raise ConfigurationError(
            f"warmup must be non-negative, got {warmup!r}"
        )
    config = (
        NedExplainConfig(use_columnar=True)
        if engine == "columnar"
        else None
    )
    results = []
    for uc in USE_CASES:
        use_case, database, canonical = use_case_setup(uc.name, scale)
        ned_engine = NedExplain(
            canonical, database=database, config=config
        )
        for _ in range(warmup):
            ned_engine.explain(use_case.predicate)
        samples: dict[str, list[float]] = {}
        report = None
        for _ in range(repeats):
            report = ned_engine.explain(use_case.predicate)
            for phase, value in report.phase_times_ms.items():
                samples.setdefault(phase, []).append(value)
        assert report is not None
        report.phase_times_ms = {
            phase: statistics.median(values)
            for phase, values in samples.items()
        }
        results.append(UseCaseResult(use_case=use_case, ned=report))
    payload = phases_payload(results, engine=engine)
    payload["repeats"] = repeats
    payload["warmup"] = warmup
    return payload


def collect_runtime(
    repeats: int = 3,
    scale: int = 2,
    warmup: int = 1,
    engine: str = "row",
) -> dict:
    """Measure the Fig. 6 runtime comparison over every use case.

    Measurement goes through the perf-gate protocol
    (:func:`repro.bench.runner.measure`: warmups, repeats, median
    reduction) so the CI bench artifacts and the regression gate share
    one measurement discipline.  A use case whose baseline number is
    missing records *why* (``whynot_na_reason``) instead of silently
    dropping the column.  *engine* routes the NedExplain measurements
    through the row or columnar engine and is recorded in the payload;
    the Why-Not baseline always runs on the row engine.
    """
    from ..errors import BudgetExceededError
    from ..workloads import USE_CASES

    from .runner import measure, use_case_factory

    _check_engine(engine)
    if repeats < 1:
        raise ConfigurationError(
            f"repeats must be positive, got {repeats!r}"
        )
    medians: dict[str, dict[str, float]] = {}
    na_reasons: dict[str, str] = {}
    for uc in USE_CASES:
        ned = measure(
            use_case_factory(uc.name, "ned", scale, engine=engine),
            name=f"{uc.name}.ned",
            repeats=repeats,
            warmup=warmup,
        )
        medians[uc.name] = {"ned": ned.median_ms}
        try:
            whynot_factory = use_case_factory(
                uc.name, "whynot", scale
            )
        except UnsupportedQueryError:
            na_reasons[uc.name] = "unsupported"
            continue
        try:
            whynot = measure(
                whynot_factory,
                name=f"{uc.name}.whynot",
                repeats=repeats,
                warmup=warmup,
            )
        except BudgetExceededError:
            na_reasons[uc.name] = "budget-exhausted"
            continue
        medians[uc.name]["whynot"] = whynot.median_ms
    payload = runtime_payload(medians, scale, na_reasons, engine=engine)
    payload["repeats"] = repeats
    payload["warmup"] = warmup
    return payload


def write_sample_trace(
    use_case: str = "Crime5",
    path: Path | str | None = None,
    scale: int = 1,
) -> Path:
    """Run one use case under tracing; save the JSON-lines trace."""
    from ..core import NedExplain
    from ..workloads import use_case_setup

    uc, database, canonical = use_case_setup(use_case, scale)
    engine = NedExplain(canonical, database=database)
    tracer = Tracer()
    with tracing(tracer):
        engine.explain(uc.predicate)
    if path is None:
        path = bench_dir() / "BENCH_trace_sample.jsonl"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return write_trace_jsonl(tracer, path)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.artifacts",
        description="regenerate the BENCH_*.json evaluation artifacts",
    )
    parser.add_argument(
        "--out-dir",
        default=None,
        help="artifact directory (default: $REPRO_BENCH_DIR or cwd)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per measurement"
    )
    parser.add_argument(
        "--runtime-scale",
        type=int,
        default=2,
        dest="runtime_scale",
        help="scale factor for the Fig. 6 runtime comparison",
    )
    parser.add_argument(
        "--trace-use-case",
        default="Crime5",
        dest="trace_use_case",
        help="use case recorded in the sample trace",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="row",
        help="evaluation engine behind the NedExplain measurements "
        "(recorded in every artifact payload)",
    )
    args = parser.parse_args(argv)
    out_dir = Path(args.out_dir) if args.out_dir else bench_dir()

    phases = write_bench_artifact(
        "phases",
        collect_phases(repeats=args.repeats, engine=args.engine),
        out_dir,
    )
    print(f"wrote {phases}")
    runtime = write_bench_artifact(
        "runtime",
        collect_runtime(
            repeats=args.repeats,
            scale=args.runtime_scale,
            engine=args.engine,
        ),
        out_dir,
    )
    print(f"wrote {runtime}")
    trace = write_sample_trace(
        args.trace_use_case,
        out_dir / "BENCH_trace_sample.jsonl",
    )
    print(f"wrote {trace}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
