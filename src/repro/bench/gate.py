"""``repro.bench.gate`` -- the continuous benchmark regression gate.

The paper's claim is performance (NedExplain beats the Why-Not baseline
by orders of magnitude, Fig. 5/6); five PRs of caching, budgets and
parallelism optimized the hot paths -- but until now nothing *failed*
when one of them regressed.  This module is that gate:

* ``check`` re-measures the benchmark suites (warmups + median-of-k,
  MAD noise bands) and compares against the committed baselines in
  ``benchmarks/baselines/``.  Wall-clock comparisons are noise-aware
  (relative tolerance, MAD band, host-speed calibration); the
  deterministic counters (``budget.rows``, ``budget.comparisons``,
  cache hits/misses, traversal steps) are compared **exactly**, so an
  algorithmic regression is caught even when CI wall-clock is too noisy
  to trust.  Exit codes: 0 clean, 1 regression, 2 torn/stale baseline
  or usage error.  Every completed check appends one entry to
  ``BENCH_trajectory.json`` -- the perf trajectory over PRs.
* ``update`` re-measures and rewrites the baselines (the honest way to
  accept an intentional perf change -- see ``docs/benchmarking.md``).
* ``report`` renders the trajectory.

Usage::

    python -m repro.bench.gate check --json
    python -m repro.bench.gate update --suite usecases
    python -m repro.bench.gate report
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..errors import ConfigurationError
from ..obs.clock import perf_counter
from ..storage.backend import atomic_write_json
from .artifacts import bench_dir
from .baselines import (
    BaselineEntry,
    SuiteBaseline,
    baseline_dir,
    read_suite_baseline,
    write_suite_baseline,
)
from .runner import Measurement, measure, use_case_factory

TRAJECTORY_FORMAT = "repro.bench.trajectory"
TRAJECTORY_FORMAT_VERSION = 1

#: Scale factor the gate benchmarks run at (small: the gate must be
#: cheap enough to run on every PR).
GATE_SCALE = 1


# ---------------------------------------------------------------------------
# Threshold algebra (property-tested in tests/test_gate.py)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Thresholds:
    """Noise-aware wall-clock comparison policy.

    A benchmark's runtime regression only *fails* when the median grew
    by more than every one of three slacks: an absolute floor (ignore
    sub-noise shifts on micro-benchmarks), a relative tolerance, and a
    multiple of the combined MAD noise band of the two runs.  Counters
    take no threshold at all -- they are exact.
    """

    rel_tolerance: float = 0.50
    noise_mult: float = 6.0
    abs_floor_ms: float = 0.5

    def __post_init__(self) -> None:
        for name in ("rel_tolerance", "noise_mult", "abs_floor_ms"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(
                    f"threshold {name} must be non-negative, got "
                    f"{value!r}"
                )


def allowed_regression_ms(
    baseline_median_ms: float,
    baseline_mad_ms: float,
    current_mad_ms: float,
    thresholds: Thresholds,
) -> float:
    """The largest median increase (ms) that is *not* a regression."""
    return max(
        thresholds.abs_floor_ms,
        thresholds.rel_tolerance * baseline_median_ms,
        thresholds.noise_mult * (baseline_mad_ms + current_mad_ms),
    )


def diff_counters(
    baseline: Mapping[str, int], current: Mapping[str, int]
) -> list[dict]:
    """Exact counter comparison: every differing name, both values.

    A counter present on only one side is a mismatch too -- new
    instrumentation (or lost instrumentation) must go through a
    baseline update, not slide by unnoticed.
    """
    mismatches = []
    for name in sorted(set(baseline) | set(current)):
        base_value = baseline.get(name)
        cur_value = current.get(name)
        if base_value != cur_value:
            mismatches.append(
                {
                    "counter": name,
                    "baseline": base_value,
                    "current": cur_value,
                }
            )
    return mismatches


@dataclass(frozen=True)
class CheckResult:
    """Verdict for one benchmark."""

    suite: str
    name: str
    status: str  # ok | improved | regression-time |
    #              regression-counters | missing-baseline
    median_ms: float | None = None
    mad_ms: float | None = None
    counters: Mapping[str, int] = field(default_factory=dict)
    baseline_median_ms: float | None = None
    adjusted_baseline_median_ms: float | None = None
    delta_ms: float | None = None
    allowed_delta_ms: float | None = None
    counter_mismatches: Sequence[dict] = ()
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status in (
            "regression-time",
            "regression-counters",
            "missing-baseline",
        )

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "name": self.name,
            "status": self.status,
            "median_ms": self.median_ms,
            "mad_ms": self.mad_ms,
            "counters": dict(self.counters),
            "baseline_median_ms": self.baseline_median_ms,
            "adjusted_baseline_median_ms": (
                self.adjusted_baseline_median_ms
            ),
            "delta_ms": self.delta_ms,
            "allowed_delta_ms": self.allowed_delta_ms,
            "counter_mismatches": list(self.counter_mismatches),
            "detail": self.detail,
        }


def compare_measurement(
    suite: str,
    baseline: BaselineEntry,
    measurement: Measurement,
    calibration_ratio: float,
    thresholds: Thresholds,
) -> CheckResult:
    """Compare one measurement against its committed baseline.

    *calibration_ratio* is ``current_host_speed / baseline_host_speed``
    expressed as a runtime multiplier: the committed median and MAD are
    scaled by it before comparison, so a uniformly slower CI host does
    not read as a regression (and a faster one does not mask a real
    regression).  The whole comparison is scale-invariant: multiplying
    every duration *and* the calibration by the same factor cannot
    change the verdict.
    """
    if calibration_ratio <= 0:
        raise ConfigurationError(
            f"calibration ratio must be positive, got "
            f"{calibration_ratio!r}"
        )
    adjusted_median = baseline.median_ms * calibration_ratio
    adjusted_mad = baseline.mad_ms * calibration_ratio
    mismatches = diff_counters(baseline.counters, measurement.counters)
    allowed = allowed_regression_ms(
        adjusted_median,
        adjusted_mad,
        measurement.mad_ms,
        thresholds,
    )
    delta = measurement.median_ms - adjusted_median
    if mismatches:
        status = "regression-counters"
        detail = (
            f"{len(mismatches)} counter(s) drifted from the committed "
            "baseline (counters are exact: update the baseline only "
            "for an intentional algorithmic change)"
        )
    elif delta > allowed:
        status = "regression-time"
        detail = (
            f"median {measurement.median_ms:.3f} ms exceeds adjusted "
            f"baseline {adjusted_median:.3f} ms by {delta:.3f} ms "
            f"(allowed {allowed:.3f} ms)"
        )
    elif -delta > allowed:
        status = "improved"
        detail = (
            f"median {measurement.median_ms:.3f} ms beats adjusted "
            f"baseline {adjusted_median:.3f} ms by {-delta:.3f} ms; "
            "consider `gate update` to lock in the gain"
        )
    else:
        status = "ok"
        detail = ""
    return CheckResult(
        suite=suite,
        name=measurement.name,
        status=status,
        median_ms=measurement.median_ms,
        mad_ms=measurement.mad_ms,
        counters=dict(measurement.counters),
        baseline_median_ms=baseline.median_ms,
        adjusted_baseline_median_ms=adjusted_median,
        delta_ms=delta,
        allowed_delta_ms=allowed,
        counter_mismatches=tuple(mismatches),
        detail=detail,
    )


# ---------------------------------------------------------------------------
# Host calibration
# ---------------------------------------------------------------------------
def _spin() -> int:
    total = 0
    for i in range(250_000):
        total += (i * 31) % 97
    return total


def calibrate(repeats: int = 5) -> float:
    """Median runtime (ms) of a fixed pure-Python spin loop.

    Recorded into every baseline at ``update`` time and re-measured at
    ``check`` time; the ratio rescales committed wall-clock numbers to
    the current host's speed.
    """
    samples = []
    for _ in range(repeats):
        started = perf_counter()
        _spin()
        samples.append((perf_counter() - started) * 1000.0)
    return statistics.median(samples)


# ---------------------------------------------------------------------------
# Benchmark suites
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BenchmarkSpec:
    """One gated benchmark: a suite, a name, a measure() factory."""

    suite: str
    name: str
    factory: Callable[[], Callable[[], object]]


def _usecase_specs() -> list[BenchmarkSpec]:
    """Every Table 4 use case through NedExplain (Fig. 5/6 ned side)."""
    from ..workloads import USE_CASES

    return [
        BenchmarkSpec(
            "usecases",
            f"{uc.name}.ned",
            use_case_factory(uc.name, "ned", GATE_SCALE),
        )
        for uc in USE_CASES
    ]


def _whynot_specs() -> list[BenchmarkSpec]:
    """The Why-Not baseline side of Fig. 6 (supported queries only)."""
    from ..errors import UnsupportedQueryError
    from ..workloads import USE_CASES

    specs = []
    for uc in USE_CASES:
        try:
            factory = use_case_factory(uc.name, "whynot", GATE_SCALE)
        except UnsupportedQueryError:
            continue
        specs.append(
            BenchmarkSpec("whynot", f"{uc.name}.whynot", factory)
        )
    return specs


def _batch_specs() -> list[BenchmarkSpec]:
    """The bench_batch workload: one shared evaluation, N questions."""
    from ..core import NedExplain, canonicalize
    from ..relational import EvaluationCache
    from ..workloads import chain_database, chain_predicate, chain_query

    relations, rows = 3, 60
    database = chain_database(
        relations, rows_per_relation=rows, fanout=2, seed=7
    )
    canonical = canonicalize(chain_query(relations), database.schema)
    predicates = [f"(R0.label: r0v{i})" for i in range(10)]
    predicates.append(chain_predicate())
    predicates.append(f"(R{relations - 1}.label: r{relations - 1}v0)")

    def build() -> Callable[[], object]:
        cache = EvaluationCache()
        engine = NedExplain(
            canonical, database=database, cache=cache
        )
        return lambda: engine.explain_many(predicates)

    return [
        BenchmarkSpec(
            "batch", f"chain{relations}x{rows}.batched", build
        )
    ]


def _scaling_specs() -> list[BenchmarkSpec]:
    """The bench_scaling chain-depth workload (ablation A1)."""
    from ..core import NedExplain, canonicalize
    from ..workloads import chain_database, chain_predicate, chain_query

    from ..relational import EvaluationCache

    depth, rows = 5, 120
    database = chain_database(depth, rows_per_relation=rows)
    canonical = canonicalize(chain_query(depth), database.schema)

    def build() -> Callable[[], object]:
        engine = NedExplain(
            canonical, database=database, cache=EvaluationCache()
        )
        return lambda: engine.explain(chain_predicate())

    return [
        BenchmarkSpec("scaling", f"chain_depth{depth}.ned", build)
    ]


def _columnar_specs() -> list[BenchmarkSpec]:
    """Row vs columnar engine on join-heavy workloads.

    Paired eval-level benchmarks (same canonical tree, same hoisted
    input instance, only the engine differs) make the committed
    baselines *prove* the columnar speedup: the acceptance test in
    ``tests/test_columnar_gate.py`` asserts the row/columnar median
    ratio from these files, and the exact-counter comparison pins both
    engines to identical ``budget.*`` work totals.  A NedExplain
    end-to-end entry guards the ``use_columnar`` path as a whole.
    """
    from ..columnar import evaluate_columnar
    from ..core import NedExplain, NedExplainConfig, canonicalize
    from ..relational import EvaluationCache
    from ..relational.evaluator import evaluate
    from ..workloads import (
        scaling_join_database,
        scaling_join_query,
        use_case_setup,
    )

    gov_case, gov_db, gov_canonical = use_case_setup(
        "Gov5", GATE_SCALE
    )
    gov_instance = gov_db.input_instance(gov_canonical.aliases)
    sj_db = scaling_join_database()
    sj_canonical = canonicalize(scaling_join_query(), sj_db.schema)
    sj_instance = sj_db.input_instance(sj_canonical.aliases)

    def eval_factory(root, instance, engine):
        def build() -> Callable[[], object]:
            if engine == "row":
                return lambda: evaluate(root, instance)
            # the columnar engine keeps its per-cache-entry table and
            # index memos warm across repeats by design ("hash tables
            # built once per cache entry"); the warmup run pays them
            return lambda: evaluate_columnar(root, instance)

        return build

    specs = [
        BenchmarkSpec(
            "columnar", f"{label}.eval.{engine}",
            eval_factory(root, instance, engine),
        )
        for label, root, instance in (
            ("gov5", gov_canonical.root, gov_instance),
            ("scaling_join", sj_canonical.root, sj_instance),
        )
        for engine in ("row", "columnar")
    ]

    def ned_columnar() -> Callable[[], object]:
        engine = NedExplain(
            gov_canonical,
            database=gov_db,
            cache=EvaluationCache(),
            config=NedExplainConfig(use_columnar=True),
        )
        return lambda: engine.explain(gov_case.predicate)

    specs.append(
        BenchmarkSpec("columnar", "gov5.ned.columnar", ned_columnar)
    )
    return specs


#: suite name -> lazy spec builder (building a suite sets up its
#: databases, so only selected suites pay that cost)
SUITES: dict[str, Callable[[], list[BenchmarkSpec]]] = {
    "usecases": _usecase_specs,
    "whynot": _whynot_specs,
    "batch": _batch_specs,
    "scaling": _scaling_specs,
    "columnar": _columnar_specs,
}


def select_specs(
    suites: Sequence[str] | None = None,
    benchmarks: Sequence[str] | None = None,
) -> dict[str, list[BenchmarkSpec]]:
    """Resolve suite/benchmark filters to concrete specs per suite.

    Raises :class:`~repro.errors.ConfigurationError` for an unknown
    suite or a benchmark filter that matches nothing.
    """
    chosen = list(suites) if suites else sorted(SUITES)
    unknown = [s for s in chosen if s not in SUITES]
    if unknown:
        raise ConfigurationError(
            f"unknown suite(s) {', '.join(sorted(unknown))}; known "
            f"suites: {', '.join(sorted(SUITES))}"
        )
    selected: dict[str, list[BenchmarkSpec]] = {}
    for suite in chosen:
        specs = SUITES[suite]()
        if benchmarks:
            specs = [
                spec
                for spec in specs
                if spec.name in benchmarks
                or f"{suite}:{spec.name}" in benchmarks
            ]
        if specs:
            selected[suite] = specs
    if benchmarks:
        matched = {
            spec.name
            for specs in selected.values()
            for spec in specs
        } | {
            f"{suite}:{spec.name}"
            for suite, specs in selected.items()
            for spec in specs
        }
        missed = [b for b in benchmarks if b not in matched]
        if missed:
            raise ConfigurationError(
                f"benchmark filter(s) matched nothing: "
                f"{', '.join(sorted(missed))}"
            )
    return selected


# ---------------------------------------------------------------------------
# Trajectory (BENCH_trajectory.json)
# ---------------------------------------------------------------------------
def trajectory_path() -> Path:
    return bench_dir() / "BENCH_trajectory.json"


def _empty_trajectory() -> dict:
    return {
        "format": TRAJECTORY_FORMAT,
        "version": TRAJECTORY_FORMAT_VERSION,
        "entries": [],
    }


def read_trajectory(path: Path | str) -> dict:
    """Read and validate the trajectory document (missing file: empty).

    A torn or foreign file raises
    :class:`~repro.errors.ConfigurationError` -- the gate refuses to
    silently restart a trajectory that was being tracked.
    """
    path = Path(path)
    if not path.exists():
        return _empty_trajectory()
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ConfigurationError(
            f"trajectory {path} is torn or corrupt: {exc}; move it "
            "aside to restart the trajectory"
        ) from exc
    if not isinstance(document, dict) or document.get("format") != (
        TRAJECTORY_FORMAT
    ):
        raise ConfigurationError(
            f"trajectory {path} is not a {TRAJECTORY_FORMAT} document"
        )
    if document.get("version") != TRAJECTORY_FORMAT_VERSION:
        raise ConfigurationError(
            f"trajectory {path} has unsupported version "
            f"{document.get('version')!r}"
        )
    if not isinstance(document.get("entries"), list):
        raise ConfigurationError(
            f"trajectory {path} is missing its entries list"
        )
    return document


def append_trajectory_entry(path: Path | str, entry: dict) -> None:
    """Append one entry atomically (temp file + rename)."""
    path = Path(path)
    document = read_trajectory(path)
    document["entries"].append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_json(path, document)


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


# ---------------------------------------------------------------------------
# Gate runs
# ---------------------------------------------------------------------------
@dataclass
class GateReport:
    """The machine-readable outcome of one ``check`` (or ``update``)."""

    command: str
    status: str  # ok | regression | error
    results: list[CheckResult] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    calibration_ms: float | None = None
    repeats: int | None = None
    warmup: int | None = None

    @property
    def exit_code(self) -> int:
        return {"ok": 0, "regression": 1}.get(self.status, 2)

    @property
    def regressions(self) -> list[CheckResult]:
        return [r for r in self.results if r.failed]

    def to_dict(self) -> dict:
        return {
            "command": self.command,
            "status": self.status,
            "exit_code": self.exit_code,
            "calibration_ms": self.calibration_ms,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "errors": list(self.errors),
            "regressions": [r.name for r in self.regressions],
            "results": [r.to_dict() for r in self.results],
        }

    def render(self) -> str:
        lines = [
            f"perf gate {self.command}: {self.status.upper()}",
        ]
        if self.calibration_ms is not None:
            lines.append(
                f"host calibration: {self.calibration_ms:.3f} ms"
            )
        if self.results:
            lines.append(
                f"{'benchmark':<28}{'status':<22}{'median':>10}"
                f"{'baseline*':>11}{'allowed +':>11}"
            )
            lines.append("-" * 82)
            for r in self.results:
                median = (
                    f"{r.median_ms:.3f}" if r.median_ms is not None
                    else "-"
                )
                base = (
                    f"{r.adjusted_baseline_median_ms:.3f}"
                    if r.adjusted_baseline_median_ms is not None
                    else "-"
                )
                allowed = (
                    f"{r.allowed_delta_ms:.3f}"
                    if r.allowed_delta_ms is not None
                    else "-"
                )
                lines.append(
                    f"{r.suite + ':' + r.name:<28}{r.status:<22}"
                    f"{median:>10}{base:>11}{allowed:>11}"
                )
                if r.status == "regression-counters":
                    for m in r.counter_mismatches:
                        lines.append(
                            f"    {m['counter']}: baseline "
                            f"{m['baseline']} != current {m['current']}"
                        )
                elif r.detail:
                    lines.append(f"    {r.detail}")
            lines.append(
                "(* committed baseline median rescaled to this host's "
                "calibration)"
            )
        for message in self.errors:
            lines.append(f"error: {message}")
        return "\n".join(lines)


def _measure_specs(
    selected: Mapping[str, Sequence[BenchmarkSpec]],
    repeats: int,
    warmup: int,
) -> dict[str, list[Measurement]]:
    measured: dict[str, list[Measurement]] = {}
    for suite, specs in selected.items():
        measured[suite] = [
            measure(
                spec.factory,
                name=spec.name,
                repeats=repeats,
                warmup=warmup,
            )
            for spec in specs
        ]
    return measured


def run_check(
    suites: Sequence[str] | None = None,
    benchmarks: Sequence[str] | None = None,
    repeats: int = 5,
    warmup: int = 1,
    thresholds: Thresholds | None = None,
    baseline_directory: Path | str | None = None,
    trajectory: Path | str | None = None,
    append_to_trajectory: bool = True,
    trajectory_label: str | None = None,
) -> GateReport:
    """Measure, compare against committed baselines, append trajectory.

    Never raises for gate-domain failures: configuration problems
    (torn/stale baselines, bad filters, corrupt trajectory) come back
    as an ``error`` report (exit code 2), regressions as ``regression``
    (exit code 1).
    """
    thresholds = thresholds if thresholds is not None else Thresholds()
    report = GateReport(
        command="check", status="ok", repeats=repeats, warmup=warmup
    )
    trajectory_file = Path(
        trajectory if trajectory is not None else trajectory_path()
    )
    try:
        selected = select_specs(suites, benchmarks)
        if append_to_trajectory:
            # validate *before* the expensive measurements so a torn
            # trajectory fails fast
            read_trajectory(trajectory_file)
        suite_baselines: dict[str, SuiteBaseline] = {
            suite: read_suite_baseline(suite, baseline_directory)
            for suite in selected
        }
        calibration = calibrate()
        report.calibration_ms = calibration
        measured = _measure_specs(selected, repeats, warmup)
    except ConfigurationError as exc:
        report.status = "error"
        report.errors.append(str(exc))
        return report

    for suite, measurements in measured.items():
        baseline = suite_baselines[suite]
        ratio = calibration / baseline.calibration_ms
        for measurement in measurements:
            entry = baseline.entries.get(measurement.name)
            if entry is None:
                report.results.append(
                    CheckResult(
                        suite=suite,
                        name=measurement.name,
                        status="missing-baseline",
                        median_ms=measurement.median_ms,
                        mad_ms=measurement.mad_ms,
                        counters=dict(measurement.counters),
                        detail=(
                            "no committed baseline entry; run "
                            "`python -m repro.bench.gate update "
                            f"--suite {suite}` and commit it"
                        ),
                    )
                )
                continue
            report.results.append(
                compare_measurement(
                    suite, entry, measurement, ratio, thresholds
                )
            )

    if any(r.failed for r in report.results):
        report.status = "regression"

    if append_to_trajectory:
        entry = {
            "timestamp": time.time(),
            "git_sha": _git_sha() or "unknown",
            "label": trajectory_label
            or os.environ.get("REPRO_TRAJECTORY_LABEL"),
            "status": report.status,
            "calibration_ms": report.calibration_ms,
            "repeats": repeats,
            "regressions": [r.name for r in report.regressions],
            "benchmarks": {
                r.name: {
                    "suite": r.suite,
                    "status": r.status,
                    "median_ms": r.median_ms,
                    "mad_ms": r.mad_ms,
                    "counters": dict(r.counters),
                }
                for r in report.results
            },
        }
        try:
            append_trajectory_entry(trajectory_file, entry)
        except (ConfigurationError, OSError) as exc:
            report.status = "error"
            report.errors.append(
                f"could not append to trajectory: {exc}"
            )
    return report


def run_update(
    suites: Sequence[str] | None = None,
    benchmarks: Sequence[str] | None = None,
    repeats: int = 5,
    warmup: int = 1,
    baseline_directory: Path | str | None = None,
) -> GateReport:
    """Re-measure and (re)write the committed baselines.

    With a benchmark filter, only the matching entries are replaced --
    the rest of the suite file is preserved, so a targeted update after
    an intentional change does not silently re-baseline everything.
    """
    report = GateReport(
        command="update", status="ok", repeats=repeats, warmup=warmup
    )
    try:
        selected = select_specs(suites, benchmarks)
        calibration = calibrate()
        report.calibration_ms = calibration
        measured = _measure_specs(selected, repeats, warmup)
    except ConfigurationError as exc:
        report.status = "error"
        report.errors.append(str(exc))
        return report

    for suite, measurements in measured.items():
        entries: dict[str, BaselineEntry] = {}
        try:
            existing = read_suite_baseline(suite, baseline_directory)
        except ConfigurationError:
            existing = None
        if existing is not None and benchmarks:
            # targeted update: keep the untouched entries, but rescale
            # them to this host's calibration so the file stays
            # internally consistent
            rescale = calibration / existing.calibration_ms
            entries.update(
                {
                    name: BaselineEntry(
                        median_ms=entry.median_ms * rescale,
                        mad_ms=entry.mad_ms * rescale,
                        repeats=entry.repeats,
                        counters=dict(entry.counters),
                    )
                    for name, entry in existing.entries.items()
                }
            )
        for measurement in measurements:
            entries[measurement.name] = BaselineEntry(
                median_ms=measurement.median_ms,
                mad_ms=measurement.mad_ms,
                repeats=repeats,
                counters=dict(measurement.counters),
            )
            report.results.append(
                CheckResult(
                    suite=suite,
                    name=measurement.name,
                    status="ok",
                    median_ms=measurement.median_ms,
                    mad_ms=measurement.mad_ms,
                    counters=dict(measurement.counters),
                    detail="baseline recorded",
                )
            )
        write_suite_baseline(
            SuiteBaseline(
                suite=suite,
                calibration_ms=calibration,
                entries=entries,
            ),
            baseline_directory,
        )
    return report


def render_trajectory(document: Mapping[str, Any], last: int = 10) -> str:
    """Text view of the most recent trajectory entries."""
    entries = document.get("entries", [])
    if not entries:
        return "(empty trajectory)"
    lines = [
        f"perf trajectory: {len(entries)} check run(s) recorded",
        f"{'#':>3} {'sha':<10}{'status':<12}{'benchmarks':>11}"
        f"{'regressions':>13}  label",
        "-" * 68,
    ]
    for index, entry in enumerate(entries[-last:], start=max(
        1, len(entries) - last + 1
    )):
        sha = entry.get("git_sha") or "-"
        label = entry.get("label") or ""
        lines.append(
            f"{index:>3} {sha:<10}{entry.get('status', '?'):<12}"
            f"{len(entry.get('benchmarks', {})):>11}"
            f"{len(entry.get('regressions', [])):>13}  {label}"
        )
    return "\n".join(lines)


def run_report(
    trajectory: Path | str | None = None, last: int = 10
) -> tuple[int, dict]:
    """Load the trajectory; returns ``(exit_code, document)``."""
    path = Path(
        trajectory if trajectory is not None else trajectory_path()
    )
    try:
        document = read_trajectory(path)
    except ConfigurationError as exc:
        return 2, {"status": "error", "errors": [str(exc)]}
    return 0, document


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def _add_measurement_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--suite",
        action="append",
        dest="suites",
        metavar="NAME",
        help=f"restrict to a suite ({', '.join(sorted(SUITES))}); "
        "repeatable",
    )
    parser.add_argument(
        "--benchmark",
        action="append",
        dest="benchmarks",
        metavar="NAME",
        help="restrict to one benchmark (e.g. Crime5.ned); repeatable",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed runs per benchmark"
    )
    parser.add_argument(
        "--warmup", type=int, default=1, help="untimed warmup runs"
    )
    parser.add_argument(
        "--baseline-dir",
        default=None,
        help="baseline directory (default: $REPRO_BASELINE_DIR or "
        "benchmarks/baselines)",
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.gate",
        description="benchmark regression gate with committed baselines",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check", help="measure and compare against committed baselines"
    )
    _add_measurement_args(check)
    check.add_argument(
        "--rel-tolerance",
        type=float,
        default=Thresholds.rel_tolerance,
        help="relative wall-clock slack (fraction of baseline median)",
    )
    check.add_argument(
        "--noise-mult",
        type=float,
        default=Thresholds.noise_mult,
        help="multiple of the combined MAD noise band",
    )
    check.add_argument(
        "--abs-floor-ms",
        type=float,
        default=Thresholds.abs_floor_ms,
        help="absolute floor below which median shifts never fail",
    )
    check.add_argument(
        "--trajectory",
        default=None,
        help="trajectory file (default: BENCH_trajectory.json in "
        "$REPRO_BENCH_DIR or cwd)",
    )
    check.add_argument(
        "--no-trajectory",
        action="store_true",
        help="do not append this run to the trajectory",
    )
    check.add_argument(
        "--label",
        default=None,
        help="label recorded in the trajectory entry "
        "(default: $REPRO_TRAJECTORY_LABEL)",
    )
    check.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the machine-readable report JSON to PATH",
    )
    check.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )

    update = sub.add_parser(
        "update", help="re-measure and rewrite the committed baselines"
    )
    _add_measurement_args(update)
    update.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )

    report_cmd = sub.add_parser(
        "report", help="render the perf trajectory"
    )
    report_cmd.add_argument("--trajectory", default=None)
    report_cmd.add_argument(
        "--last", type=int, default=10, help="entries to render"
    )
    report_cmd.add_argument(
        "--json", action="store_true", help="print the trajectory JSON"
    )

    args = parser.parse_args(argv)

    if args.command == "check":
        try:
            thresholds = Thresholds(
                rel_tolerance=args.rel_tolerance,
                noise_mult=args.noise_mult,
                abs_floor_ms=args.abs_floor_ms,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}")
            return 2
        gate_report = run_check(
            suites=args.suites,
            benchmarks=args.benchmarks,
            repeats=args.repeats,
            warmup=args.warmup,
            thresholds=thresholds,
            baseline_directory=args.baseline_dir,
            trajectory=args.trajectory,
            append_to_trajectory=not args.no_trajectory,
            trajectory_label=args.label,
        )
        if args.report:
            Path(args.report).parent.mkdir(
                parents=True, exist_ok=True
            )
            Path(args.report).write_text(
                json.dumps(
                    gate_report.to_dict(), indent=2, sort_keys=True
                )
                + "\n",
                encoding="utf-8",
            )
        print(
            json.dumps(gate_report.to_dict(), indent=2, sort_keys=True)
            if args.json
            else gate_report.render()
        )
        return gate_report.exit_code

    if args.command == "update":
        gate_report = run_update(
            suites=args.suites,
            benchmarks=args.benchmarks,
            repeats=args.repeats,
            warmup=args.warmup,
            baseline_directory=args.baseline_dir,
        )
        print(
            json.dumps(gate_report.to_dict(), indent=2, sort_keys=True)
            if args.json
            else gate_report.render()
        )
        return gate_report.exit_code

    exit_code, document = run_report(args.trajectory, last=args.last)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    elif exit_code == 0:
        print(render_trajectory(document, last=args.last))
    else:
        for message in document.get("errors", []):
            print(f"error: {message}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
