"""Committed per-benchmark baselines for the perf gate.

A baseline file (``benchmarks/baselines/<suite>.json``) is the
reference point :mod:`repro.bench.gate` compares every ``check`` run
against.  Each suite file carries:

* one :class:`BaselineEntry` per benchmark -- the reduced wall-clock
  measurement (``median_ms`` + ``mad_ms`` over ``repeats``) and the
  exact deterministic counter snapshot;
* the ``calibration_ms`` of the host that recorded it -- the median of
  a fixed pure-Python spin loop -- so a check on a faster or slower
  machine can rescale the committed wall-clock numbers instead of
  comparing apples to oranges.

Reads are strict: a torn file (truncated mid-write, invalid JSON), a
stale format version, a suite-name mismatch, or an entry missing
required fields all raise :class:`~repro.errors.ConfigurationError`
with the offending path -- the gate turns these into a machine-readable
``error`` verdict rather than silently passing.  Writes go through
:func:`~repro.storage.backend.atomic_write_json` (temp file + fsync +
rename + parent-directory fsync) so a crashed ``update`` can never
leave a half-written -- or, after a power cut, a silently reverted --
baseline behind.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from ..errors import ConfigurationError
from ..storage.backend import atomic_write_json

BASELINE_FORMAT = "repro.bench.baseline"
BASELINE_FORMAT_VERSION = 1

#: Default committed location, relative to the repository root.
DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"


def baseline_dir() -> Path:
    """Baseline directory: ``$REPRO_BASELINE_DIR`` or the committed
    ``benchmarks/baselines/``."""
    return Path(
        os.environ.get("REPRO_BASELINE_DIR", str(DEFAULT_BASELINE_DIR))
    )


@dataclass(frozen=True)
class BaselineEntry:
    """The committed reference for one benchmark."""

    median_ms: float
    mad_ms: float
    repeats: int
    counters: Mapping[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "median_ms": self.median_ms,
            "mad_ms": self.mad_ms,
            "repeats": self.repeats,
            "counters": {
                name: int(value)
                for name, value in sorted(self.counters.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping, *, where: str) -> "BaselineEntry":
        missing = {"median_ms", "mad_ms", "repeats", "counters"} - set(
            data
        )
        if missing:
            raise ConfigurationError(
                f"{where}: baseline entry is missing "
                f"{sorted(missing)}"
            )
        counters = data["counters"]
        if not isinstance(counters, Mapping):
            raise ConfigurationError(
                f"{where}: counters must be an object, got "
                f"{type(counters).__name__}"
            )
        return cls(
            median_ms=float(data["median_ms"]),
            mad_ms=float(data["mad_ms"]),
            repeats=int(data["repeats"]),
            counters={k: int(v) for k, v in counters.items()},
        )


@dataclass(frozen=True)
class SuiteBaseline:
    """Every committed benchmark of one suite, plus host calibration."""

    suite: str
    calibration_ms: float
    entries: Mapping[str, BaselineEntry]

    def to_dict(self) -> dict:
        return {
            "format": BASELINE_FORMAT,
            "version": BASELINE_FORMAT_VERSION,
            "suite": self.suite,
            "calibration_ms": self.calibration_ms,
            "benchmarks": {
                name: entry.to_dict()
                for name, entry in sorted(self.entries.items())
            },
        }


def baseline_path(suite: str, directory: Path | str | None = None) -> Path:
    base = Path(directory) if directory is not None else baseline_dir()
    return base / f"{suite}.json"


def write_suite_baseline(
    baseline: SuiteBaseline, directory: Path | str | None = None
) -> Path:
    """Atomically write one suite's baseline file; returns its path."""
    path = baseline_path(baseline.suite, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_json(path, baseline.to_dict())
    return path


def read_suite_baseline(
    suite: str, directory: Path | str | None = None
) -> SuiteBaseline:
    """Read and validate one suite's baseline file.

    Raises :class:`~repro.errors.ConfigurationError` when the file is
    missing, torn (not valid JSON), stale (wrong format/version), names
    a different suite, or carries malformed entries.
    """
    path = baseline_path(suite, directory)
    if not path.exists():
        raise ConfigurationError(
            f"no committed baseline for suite {suite!r} at {path}; "
            "run `python -m repro.bench.gate update` and commit the "
            "result"
        )
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ConfigurationError(
            f"baseline {path} is torn or corrupt: {exc}"
        ) from exc
    if not isinstance(document, dict) or document.get("format") != (
        BASELINE_FORMAT
    ):
        raise ConfigurationError(
            f"baseline {path} is not a {BASELINE_FORMAT} document"
        )
    if document.get("version") != BASELINE_FORMAT_VERSION:
        raise ConfigurationError(
            f"baseline {path} has stale format version "
            f"{document.get('version')!r} (expected "
            f"{BASELINE_FORMAT_VERSION}); regenerate it with "
            "`python -m repro.bench.gate update`"
        )
    if document.get("suite") != suite:
        raise ConfigurationError(
            f"baseline {path} names suite {document.get('suite')!r}, "
            f"expected {suite!r}"
        )
    try:
        calibration = float(document["calibration_ms"])
    except (KeyError, TypeError, ValueError):
        raise ConfigurationError(
            f"baseline {path} is missing a numeric calibration_ms"
        ) from None
    if calibration <= 0:
        raise ConfigurationError(
            f"baseline {path} calibration_ms must be positive, got "
            f"{calibration!r}"
        )
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise ConfigurationError(
            f"baseline {path} is missing its benchmarks object"
        )
    entries = {
        name: BaselineEntry.from_dict(
            data, where=f"{path}:{name}"
        )
        for name, data in benchmarks.items()
    }
    return SuiteBaseline(
        suite=suite, calibration_ms=calibration, entries=entries
    )
