"""Crash-safe batch journal: an append-only JSONL write-ahead log.

A killed batch should not restart from zero.  A :class:`BatchJournal`
records every resolved :class:`~repro.robustness.outcomes.QuestionOutcome`
as one JSON line -- flushed and ``fsync``-ed before the next question
starts, with a SHA-256 checksum over the record's canonical JSON -- so
whatever survives a crash is exactly the set of fully-completed
questions.  On resume, ``NedExplain.explain_each(journal=...)`` replays
the journalled outcomes verbatim and computes only the remainder; the
merged result is identical to an uninterrupted run.

Crash-safety rules on load:

* a torn trailing line (the process died mid-``write``) is discarded;
* replay stops at the *first* record that fails to parse or verify --
  an append-only log is only trustworthy up to its first corruption;
* a record whose question text differs from the batch being resumed
  raises :class:`~repro.errors.JournalError`: that journal belongs to
  a different batch, and replaying it would silently merge two runs.

The ``REPRO_JOURNAL_CRASH_AFTER`` environment variable makes the
journal SIGKILL its own process immediately after the N-th record is
durably appended -- the deterministic "pull the plug" hook the
kill/resume differential test (and the ``chaos-resume`` CI job) is
built on.  It is inert unless explicitly set.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
from pathlib import Path
from typing import Any, Mapping

from ..errors import ConfigurationError, JournalError

__all__ = ["BatchJournal"]

#: Journal record format version.
JOURNAL_VERSION = 1

#: Environment hook: SIGKILL this process after N durable appends.
CRASH_AFTER_ENV = "REPRO_JOURNAL_CRASH_AFTER"


def _checksum(record: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON of *record* (checksum excluded)."""
    payload = {k: v for k, v in record.items() if k != "checksum"}
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class BatchJournal:
    """Write-ahead log of per-question outcomes for one batch.

    ``resume=False`` (the default) truncates any existing file: the
    journal describes exactly one run.  ``resume=True`` loads the valid
    record prefix of an existing journal and appends new records after
    it; :meth:`completed` then serves the replayed outcomes.
    """

    def __init__(self, path: str | Path, resume: bool = False):
        self.path = Path(path)
        self.resume = resume
        self._records: dict[int, dict] = {}
        self.discarded = 0  # torn/corrupt records dropped on load
        if resume and self.path.exists():
            self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(
            self.path, "a" if resume else "w", encoding="utf-8"
        )
        self._appended = 0
        raw = os.environ.get(CRASH_AFTER_ENV, "")
        self._crash_after = int(raw) if raw.strip() else 0

    # ------------------------------------------------------------------
    # Load (resume)
    # ------------------------------------------------------------------
    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.discarded += 1
                break  # torn write: nothing after it is trustworthy
            if not self._verify(record):
                self.discarded += 1
                break
            self._records[int(record["index"])] = record

    @staticmethod
    def _verify(record: Any) -> bool:
        if not isinstance(record, dict):
            return False
        required = {"v", "index", "question", "outcome", "checksum"}
        if not required <= set(record):
            return False
        if record["v"] != JOURNAL_VERSION:
            return False
        return _checksum(record) == record["checksum"]

    # ------------------------------------------------------------------
    # API used by explain_each
    # ------------------------------------------------------------------
    def completed(self, index: int, question: str) -> dict | None:
        """The journalled outcome dict for *index*, or ``None``.

        Raises :class:`~repro.errors.JournalError` when the journal has
        a record at *index* for a *different* question -- the log
        belongs to another batch.
        """
        record = self._records.get(index)
        if record is None:
            return None
        if record["question"] != question:
            raise JournalError(
                f"journal {self.path} records question "
                f"{record['question']!r} at index {index}, but the "
                f"batch being resumed asks {question!r} there -- "
                "refusing to merge unrelated runs"
            )
        return record["outcome"]

    def record(
        self, index: int, question: str, outcome: Mapping[str, Any]
    ) -> None:
        """Durably append one resolved question (write + flush + fsync)."""
        if self._file.closed:
            raise ConfigurationError(
                f"journal {self.path} is closed; no further records "
                "can be appended"
            )
        entry: dict[str, Any] = {
            "v": JOURNAL_VERSION,
            "index": index,
            "question": question,
            "outcome": dict(outcome),
        }
        entry["checksum"] = _checksum(entry)
        self._file.write(
            json.dumps(entry, sort_keys=True, default=str) + "\n"
        )
        self._file.flush()
        os.fsync(self._file.fileno())
        self._records[index] = entry
        self._appended += 1
        if self._crash_after and self._appended >= self._crash_after:
            # the chaos-resume harness: die like a power cut, AFTER the
            # record is durable -- no atexit, no buffers, no cleanup
            os.kill(os.getpid(), signal.SIGKILL)

    # ------------------------------------------------------------------
    @property
    def replayable_count(self) -> int:
        """Records loaded from a previous run (before any appends)."""
        return len(self._records) - self._appended

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (
            f"BatchJournal({str(self.path)!r}, records={len(self)}, "
            f"resume={self.resume})"
        )
