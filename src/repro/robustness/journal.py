"""Crash-safe batch journal: an append-only JSONL write-ahead log.

A killed batch should not restart from zero.  A :class:`BatchJournal`
records every resolved :class:`~repro.robustness.outcomes.QuestionOutcome`
as one JSON line -- flushed and ``fsync``-ed before the next question
starts, with a SHA-256 checksum over the record's canonical JSON -- so
whatever survives a crash is exactly the set of fully-completed
questions.  On resume, ``NedExplain.explain_each(journal=...)`` replays
the journalled outcomes verbatim and computes only the remainder; the
merged result is identical to an uninterrupted run.

Crash-safety rules on load:

* a torn trailing line (the process died mid-``write``) is discarded;
* replay stops at the *first* record that fails to parse or verify --
  an append-only log is only trustworthy up to its first corruption;
* a record whose question identity (text + digest) differs from the
  batch being resumed raises :class:`~repro.errors.JournalError`:
  that journal belongs to a different batch, and replaying it would
  silently merge two runs.

Records are keyed by **question identity**: the submission index plus a
stable SHA-256 digest of the question text.  A parallel batch journals
outcomes in *completion* order, which is not index order, so resume
must not assume a positional prefix -- any subset of indexes may be
present after a crash, each replayed independently.  Appends are
serialized under an internal lock (worker threads of a
:class:`~repro.robustness.executor.ParallelExecutor` share one
journal), and each record is still flushed + ``fsync``-ed before the
append returns.

Two environment hooks drive the crash/drain test harnesses (inert
unless explicitly set):

* ``REPRO_JOURNAL_CRASH_AFTER`` -- SIGKILL this process immediately
  after the N-th record is durably appended: the deterministic "pull
  the plug" of the kill/resume differential (the ``chaos-resume`` and
  ``chaos-parallel`` CI jobs);
* ``REPRO_JOURNAL_SIGINT_AFTER`` -- send this process one SIGINT after
  the N-th append: the deterministic trigger of the graceful-drain
  test (the CLI finishes in-flight questions, journals them, and exits
  with the documented drain code).
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
from pathlib import Path
from typing import Any, Mapping

from ..errors import ConfigurationError, JournalError, StorageError

__all__ = ["BatchJournal", "question_digest", "verify_record"]

#: Journal record format version.  Version 2 added the ``qdigest``
#: question-identity field; version-1 records fail verification and are
#: discarded on load (a v1 journal simply resumes from zero).
JOURNAL_VERSION = 2

#: Environment hook: SIGKILL this process after N durable appends.
CRASH_AFTER_ENV = "REPRO_JOURNAL_CRASH_AFTER"

#: Environment hook: SIGINT this process (once) after N durable appends.
SIGINT_AFTER_ENV = "REPRO_JOURNAL_SIGINT_AFTER"


def question_digest(question: str) -> str:
    """Stable identity digest of one question's text (SHA-256 prefix)."""
    return hashlib.sha256(question.encode("utf-8")).hexdigest()[:16]


def _open_journal_file(path: Path, mode: str):
    """Open the journal file, surfacing OS failures as library errors.

    A module-level hook (rather than an inline ``open``) so tests can
    exercise the permission-denied path even when the suite runs as
    root, where filesystem permission bits do not bite.
    """
    return open(path, mode, encoding="utf-8")


def _checksum(record: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON of *record* (checksum excluded)."""
    payload = {k: v for k, v in record.items() if k != "checksum"}
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def verify_record(record: Any) -> bool:
    """True when *record* is a complete, checksum-valid journal record.

    Public so the replicated backend's anti-entropy pass can judge the
    records of a peer replica's journal file with exactly the rules
    :class:`BatchJournal` applies on load.
    """
    return BatchJournal._verify(record)


class BatchJournal:
    """Write-ahead log of per-question outcomes for one batch.

    ``resume=False`` (the default) truncates any existing file: the
    journal describes exactly one run.  ``resume=True`` loads the valid
    record prefix of an existing journal and appends new records after
    it; :meth:`completed` then serves the replayed outcomes.

    All file access flows through a :class:`~repro.storage.io.
    StorageIO` shim (*io*).  The default is the real filesystem with
    the disk-fault sites armed; a :class:`~repro.storage.backend.
    StorageBackend` passes its own shim so the journal shares the
    backend's fault plan -- and the crash-state harness passes a
    recording simulator.  The on-disk format is unchanged: journals
    written before the shim existed load and resume identically.
    """

    def __init__(
        self,
        path: str | Path,
        resume: bool = False,
        io=None,
    ):
        if io is None:
            # resolve the module-level open hook *per call* so the
            # permission-path tests can monkeypatch it
            from ..storage.io import LocalIO

            io = LocalIO(
                open_hook=lambda p, m: _open_journal_file(p, m)
            )
        self._io = io
        self.path = Path(path)
        self.resume = resume
        self._lock = threading.RLock()
        self._records: dict[int, dict] = {}
        self.discarded = 0  # torn/corrupt records dropped on load
        if resume and io.exists(self.path):
            self._load()
        if not io.is_dir(self.path.parent):
            # refuse to invent directories for a durability artifact: a
            # typo'd --journal path must fail loudly, not journal into
            # a freshly created wrong place
            raise JournalError(
                f"journal directory {self.path.parent} does not exist "
                f"(for journal {self.path}); create it first"
            )
        try:
            self._file = io.open(self.path, "a" if resume else "w")
        except (OSError, StorageError) as exc:
            raise JournalError(
                f"cannot open journal {self.path}: {exc}"
            ) from exc
        self._appended = 0
        raw = os.environ.get(CRASH_AFTER_ENV, "")
        self._crash_after = int(raw) if raw.strip() else 0
        raw = os.environ.get(SIGINT_AFTER_ENV, "")
        self._sigint_after = int(raw) if raw.strip() else 0
        self._sigint_sent = False

    # ------------------------------------------------------------------
    # Load (resume)
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            text = self._io.read_text(self.path)
        except (OSError, StorageError) as exc:
            raise JournalError(
                f"cannot read journal {self.path}: {exc}"
            ) from exc
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.discarded += 1
                break  # torn write: nothing after it is trustworthy
            if not self._verify(record):
                self.discarded += 1
                break
            self._records[int(record["index"])] = record

    @staticmethod
    def _verify(record: Any) -> bool:
        if not isinstance(record, dict):
            return False
        required = {
            "v", "index", "question", "qdigest", "outcome", "checksum",
        }
        if not required <= set(record):
            return False
        if record["v"] != JOURNAL_VERSION:
            return False
        if record["qdigest"] != question_digest(str(record["question"])):
            return False
        return _checksum(record) == record["checksum"]

    # ------------------------------------------------------------------
    # API used by explain_each
    # ------------------------------------------------------------------
    def completed(self, index: int, question: str) -> dict | None:
        """The journalled outcome dict for *index*, or ``None``.

        Records are matched by full question identity -- submission
        index plus question digest -- so a resumed parallel batch
        (whose journal holds an arbitrary, gap-filled subset of
        indexes, appended in completion order) replays exactly the
        questions that finished.  Raises
        :class:`~repro.errors.JournalError` when the journal has a
        record at *index* for a *different* question -- the log belongs
        to another batch.
        """
        with self._lock:
            record = self._records.get(index)
        if record is None:
            return None
        if (
            record["question"] != question
            or record["qdigest"] != question_digest(question)
        ):
            raise JournalError(
                f"journal {self.path} records question "
                f"{record['question']!r} at index {index}, but the "
                f"batch being resumed asks {question!r} there -- "
                "refusing to merge unrelated runs"
            )
        return record["outcome"]

    def record(
        self, index: int, question: str, outcome: Mapping[str, Any]
    ) -> None:
        """Durably append one resolved question (write + flush + fsync).

        Safe to call from several worker threads: the write + fsync +
        bookkeeping of one record is atomic under the journal lock, so
        concurrent appends interleave as whole lines, never torn ones.
        """
        with self._lock:
            if self._io.closed(self._file):
                raise ConfigurationError(
                    f"journal {self.path} is closed; no further "
                    "records can be appended"
                )
            entry: dict[str, Any] = {
                "v": JOURNAL_VERSION,
                "index": index,
                "question": question,
                "qdigest": question_digest(question),
                "outcome": dict(outcome),
            }
            entry["checksum"] = _checksum(entry)
            try:
                self._io.write(
                    self._file,
                    json.dumps(entry, sort_keys=True, default=str)
                    + "\n",
                )
                self._io.flush(self._file)
                self._io.fsync(self._file)
            except (OSError, StorageError) as exc:
                # a failed append (ENOSPC, EIO, short write) may leave
                # torn bytes at the tail; they are exactly what the
                # torn-tail discard drops on the next resume
                raise JournalError(
                    f"journal append to {self.path} failed: {exc}"
                ) from exc
            self._records[index] = entry
            self._appended += 1
            crash = (
                self._crash_after
                and self._appended >= self._crash_after
            )
            drain = (
                self._sigint_after
                and not self._sigint_sent
                and self._appended >= self._sigint_after
            )
            if drain:
                self._sigint_sent = True
        if crash:
            # the chaos-resume harness: die like a power cut, AFTER the
            # record is durable -- no atexit, no buffers, no cleanup
            os.kill(os.getpid(), signal.SIGKILL)
        if drain:
            # the graceful-drain harness: ask the process to stop, once,
            # exactly as an operator's Ctrl-C would
            os.kill(os.getpid(), signal.SIGINT)

    def loaded_records(self) -> dict[int, dict]:
        """A copy of every record currently held (loaded + appended).

        The replicated journal merges these across replicas on resume:
        a record fsynced on one replica but lost on another is still
        replayable from the survivor.
        """
        with self._lock:
            return dict(self._records)

    # ------------------------------------------------------------------
    @property
    def replayable_count(self) -> int:
        """Records loaded from a previous run (before any appends)."""
        with self._lock:
            return len(self._records) - self._appended

    def close(self) -> None:
        with self._lock:
            if not self._io.closed(self._file):
                self._io.close(self._file)

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (
            f"BatchJournal({str(self.path)!r}, records={len(self)}, "
            f"resume={self.resume})"
        )
