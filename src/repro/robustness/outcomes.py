"""Per-question outcomes of a fault-isolated batch.

``explain_many``'s contract before this module was all-or-nothing: one
bad question -- an oversized join, an unsupported query class, a
corrupted input -- took the whole batch down with it.  A
:class:`QuestionOutcome` makes the batch total instead: every question
resolves to either a report or a structured :class:`FailureInfo`
(error class, phase, budget spent), in question order, always N
outcomes for N questions.

The resilience layer (PR 4) extends each outcome with *how* it was
reached: ``attempts`` counts the retry attempts consumed, and
``degradation_level`` names the rung of the degradation ladder that
resolved the question -- ``"full"`` (a complete report),
``"partial"`` (a budget-degraded report), ``"baseline"`` (the Why-Not
baseline answered after NedExplain's retries were exhausted; the
answer lives in ``outcome.baseline``, the triggering error in
``outcome.failure``), or ``"failed"`` (nothing produced an answer).

The parallel executor (PR 5) adds two explicit admission-side levels:
``"shed"`` (the question was refused by the load-shedding quota and
did no work -- never silently dropped, always an outcome carrying a
:class:`~repro.errors.LoadShedError`) and ``"cancelled"`` (a
cooperative drain -- SIGINT/SIGTERM or an expired batch deadline --
stopped the batch before this question started; in-flight questions
always finish, so a cancelled question simply never ran).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import ReproError
from .budget import BudgetSpent

if TYPE_CHECKING:  # avoid a runtime cycle with repro.core / repro.baseline
    from ..baseline.whynot import WhyNotBaselineReport
    from ..core.answers import NedExplainReport

#: The rungs of the degradation ladder, best first.  ``shed`` and
#: ``cancelled`` are admission-side rungs of parallel batches: the
#: question produced no answer because it was never *started* (quota
#: refusal / cooperative drain), not because execution failed.
DEGRADATION_LEVELS: tuple[str, ...] = (
    "full",
    "partial",
    "baseline",
    "failed",
    "shed",
    "cancelled",
)


@dataclass(frozen=True)
class FailureInfo:
    """Structured description of one failed question."""

    #: class name of the :class:`~repro.errors.ReproError` subclass
    error_class: str
    message: str
    #: Fig. 5 phase active when the failure surfaced, if known
    phase: str | None = None
    #: budget charged to the question before it failed, if tracked
    spent: BudgetSpent | None = None
    #: attempts consumed before the question was given up on
    attempts: int = 1

    @classmethod
    def from_error(
        cls,
        error: BaseException,
        phase: str | None = None,
        spent: BudgetSpent | None = None,
        attempts: int = 1,
    ) -> "FailureInfo":
        return cls(
            error_class=type(error).__name__,
            message=str(error),
            phase=phase if phase is not None else getattr(
                error, "phase", None
            ),
            spent=spent if spent is not None else getattr(
                error, "spent", None
            ),
            attempts=attempts,
        )

    def to_dict(self) -> dict:
        """JSON-ready view (the ``--json`` CLI report format)."""
        return {
            "error_class": self.error_class,
            "message": self.message,
            "phase": self.phase,
            "spent": self.spent.to_dict()
            if self.spent is not None
            else None,
            "attempts": self.attempts,
        }

    def describe(self) -> str:
        parts = [f"{self.error_class}: {self.message}"]
        if self.phase:
            parts.append(f"phase={self.phase}")
        if self.spent is not None:
            parts.append(
                f"spent rows={self.spent.rows} "
                f"comparisons={self.spent.comparisons} "
                f"elapsed={self.spent.elapsed_s:.3f}s"
            )
        if self.attempts > 1:
            parts.append(f"attempts={self.attempts}")
        return " | ".join(parts)


@dataclass(frozen=True)
class QuestionOutcome:
    """Resolution of one question of a batch: report, fallback, or failure."""

    #: outcomes computed in this process are never journal replays
    replayed = False

    question: Any
    report: "NedExplainReport | None" = None
    failure: FailureInfo | None = None
    #: the original exception, for callers that want to re-raise
    error: ReproError | None = None
    #: total attempts consumed (1 = first try, no retry)
    attempts: int = 1
    #: the ladder rung that resolved the question (see
    #: :data:`DEGRADATION_LEVELS`); derived when left at the default
    degradation_level: str = "full"
    #: the Why-Not baseline answer, when the ladder fell back to it
    baseline: "WhyNotBaselineReport | None" = None

    def __post_init__(self) -> None:
        if self.baseline is not None and self.report is not None:
            raise ValueError(
                "a baseline-fallback outcome carries no full report"
            )
        if self.baseline is None and (
            (self.report is None) == (self.failure is None)
        ):
            raise ValueError(
                "a QuestionOutcome carries exactly one of report / "
                "failure (or a baseline fallback)"
            )
        # derive a consistent level when the caller left the default
        if self.degradation_level == "full":
            if self.baseline is not None:
                object.__setattr__(self, "degradation_level", "baseline")
            elif self.report is None:
                object.__setattr__(self, "degradation_level", "failed")
            elif getattr(self.report, "partial", False):
                object.__setattr__(self, "degradation_level", "partial")
        if self.degradation_level not in DEGRADATION_LEVELS:
            raise ValueError(
                f"unknown degradation level "
                f"{self.degradation_level!r}; choose from "
                f"{DEGRADATION_LEVELS}"
            )

    @property
    def ok(self) -> bool:
        """True when *some* answer was produced -- a report at any
        ladder rung, including the baseline fallback."""
        return self.report is not None or self.baseline is not None

    @property
    def partial(self) -> bool:
        """True for a degraded (budget-exhausted) but usable report."""
        return self.report is not None and bool(
            getattr(self.report, "partial", False)
        )

    def to_dict(self) -> dict:
        """JSON-ready view (the ``--json`` CLI report format)."""
        return {
            "question": str(self.question),
            "ok": self.ok,
            "report": self.report.to_dict()
            if self.report is not None
            else None,
            "failure": self.failure.to_dict()
            if self.failure is not None
            else None,
            "attempts": self.attempts,
            "degradation_level": self.degradation_level,
            "baseline": self.baseline.to_dict()
            if self.baseline is not None
            else None,
        }

    def unwrap(self) -> "NedExplainReport":
        """The report, or re-raise the question's original error."""
        if self.report is not None:
            return self.report
        if self.error is not None:
            raise self.error
        assert self.failure is not None
        raise ReproError(self.failure.describe())

    def __repr__(self) -> str:
        level = (
            f", level={self.degradation_level}"
            if self.degradation_level != "full"
            else ""
        )
        tries = f", attempts={self.attempts}" if self.attempts > 1 else ""
        if self.ok:
            flag = " (partial)" if self.partial else ""
            return (
                f"QuestionOutcome(ok{flag}{level}{tries}, "
                f"{self.question!r})"
            )
        assert self.failure is not None
        return (
            f"QuestionOutcome(failed {self.failure.error_class}"
            f"{level}{tries}, {self.question!r})"
        )


@dataclass(frozen=True)
class ReplayedOutcome:
    """An outcome served verbatim from a :class:`~repro.robustness.journal.BatchJournal`.

    Resumed batches return these for questions a previous run already
    completed: the stored JSON record *is* the result (``to_dict``
    returns it unchanged, which is what makes a resumed ``--json``
    document identical to an uninterrupted run's), and no report object
    is reconstructed -- the question was not re-executed.
    """

    replayed = True
    #: live objects a replay cannot reconstruct
    report = None
    failure = None
    error = None
    baseline = None

    question: Any
    #: the ``QuestionOutcome.to_dict()`` payload stored in the journal
    record: dict

    @property
    def ok(self) -> bool:
        return bool(self.record.get("ok", False))

    @property
    def partial(self) -> bool:
        return self.degradation_level == "partial"

    @property
    def attempts(self) -> int:
        return int(self.record.get("attempts", 1))

    @property
    def degradation_level(self) -> str:
        return str(self.record.get("degradation_level", "full"))

    def to_dict(self) -> dict:
        return dict(self.record)

    def __repr__(self) -> str:
        status = "ok" if self.ok else "failed"
        return f"ReplayedOutcome({status}, {self.question!r})"
