"""Per-question outcomes of a fault-isolated batch.

``explain_many``'s contract before this module was all-or-nothing: one
bad question -- an oversized join, an unsupported query class, a
corrupted input -- took the whole batch down with it.  A
:class:`QuestionOutcome` makes the batch total instead: every question
resolves to either a report or a structured :class:`FailureInfo`
(error class, phase, budget spent), in question order, always N
outcomes for N questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import ReproError
from .budget import BudgetSpent

if TYPE_CHECKING:  # avoid a runtime cycle with repro.core
    from ..core.answers import NedExplainReport


@dataclass(frozen=True)
class FailureInfo:
    """Structured description of one failed question."""

    #: class name of the :class:`~repro.errors.ReproError` subclass
    error_class: str
    message: str
    #: Fig. 5 phase active when the failure surfaced, if known
    phase: str | None = None
    #: budget charged to the question before it failed, if tracked
    spent: BudgetSpent | None = None

    @classmethod
    def from_error(
        cls,
        error: BaseException,
        phase: str | None = None,
        spent: BudgetSpent | None = None,
    ) -> "FailureInfo":
        return cls(
            error_class=type(error).__name__,
            message=str(error),
            phase=phase if phase is not None else getattr(
                error, "phase", None
            ),
            spent=spent if spent is not None else getattr(
                error, "spent", None
            ),
        )

    def to_dict(self) -> dict:
        """JSON-ready view (the ``--json`` CLI report format)."""
        return {
            "error_class": self.error_class,
            "message": self.message,
            "phase": self.phase,
            "spent": self.spent.to_dict()
            if self.spent is not None
            else None,
        }

    def describe(self) -> str:
        parts = [f"{self.error_class}: {self.message}"]
        if self.phase:
            parts.append(f"phase={self.phase}")
        if self.spent is not None:
            parts.append(
                f"spent rows={self.spent.rows} "
                f"comparisons={self.spent.comparisons} "
                f"elapsed={self.spent.elapsed_s:.3f}s"
            )
        return " | ".join(parts)


@dataclass(frozen=True)
class QuestionOutcome:
    """Resolution of one question of a batch: report or failure."""

    question: Any
    report: "NedExplainReport | None" = None
    failure: FailureInfo | None = None
    #: the original exception, for callers that want to re-raise
    error: ReproError | None = None

    def __post_init__(self) -> None:
        if (self.report is None) == (self.failure is None):
            raise ValueError(
                "a QuestionOutcome carries exactly one of report / "
                "failure"
            )

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def partial(self) -> bool:
        """True for a degraded (budget-exhausted) but usable report."""
        return self.report is not None and bool(
            getattr(self.report, "partial", False)
        )

    def to_dict(self) -> dict:
        """JSON-ready view (the ``--json`` CLI report format)."""
        return {
            "question": str(self.question),
            "ok": self.ok,
            "report": self.report.to_dict()
            if self.report is not None
            else None,
            "failure": self.failure.to_dict()
            if self.failure is not None
            else None,
        }

    def unwrap(self) -> "NedExplainReport":
        """The report, or re-raise the question's original error."""
        if self.report is not None:
            return self.report
        if self.error is not None:
            raise self.error
        assert self.failure is not None
        raise ReproError(self.failure.describe())

    def __repr__(self) -> str:
        if self.ok:
            flag = " (partial)" if self.partial else ""
            return f"QuestionOutcome(ok{flag}, {self.question!r})"
        assert self.failure is not None
        return (
            f"QuestionOutcome(failed {self.failure.error_class}, "
            f"{self.question!r})"
        )
