"""Retries with deterministic backoff and the degradation ladder.

PR 2 made failures *contained* (a bad question never takes a batch
down) and PR 3 made them *observable*; this module makes them
*recoverable*.  Two pieces:

* :class:`RetryPolicy` -- per-question retry with exponential backoff
  and deterministic jitter.  All waiting goes through the injectable
  clock of :mod:`repro.obs.clock`, so tests drive backoff with a
  :class:`~repro.obs.clock.ManualClock` and never sleep for real, and
  the jitter is seeded (same seed + question + attempt = same delay)
  so chaos runs reproduce exactly.
* :class:`DegradationLadder` -- when retries are exhausted (or were
  never applicable), prefer a cheaper answer over none, in the spirit
  of PUG's middleware engineering and the approximate summaries of
  Lee et al. 2020: full report -> partial (budget-cut) report ->
  Why-Not baseline answer -> structured failure.  The rung that
  resolved a question is recorded on its
  :class:`~repro.robustness.outcomes.QuestionOutcome` as
  ``degradation_level``.

Only *transient* errors are worth retrying: an
:class:`~repro.errors.InjectedFaultError` (the chaos suite's stand-in
for flaky I/O at the ``csv.row`` / ``cache.*`` / ``operator.apply``
sites) or any error carrying a truthy ``retryable`` attribute.
Deterministic failures -- malformed questions, unsupported queries,
budget exhaustion (which already degrades to a partial report) -- are
not retried: re-running them can only burn the same work again.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError, InjectedFaultError, ReproError
from ..obs.clock import current_clock
from ..obs.trace import current_tracer
from .outcomes import DEGRADATION_LEVELS

if TYPE_CHECKING:  # runtime import would cycle through repro.baseline
    from ..baseline.whynot import WhyNotBaselineReport
    from ..core.canonical import CanonicalQuery
    from ..relational.instance import DatabaseInstance

__all__ = [
    "DEGRADATION_LEVELS",
    "DegradationLadder",
    "RetryPolicy",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and how patiently, a failed question is re-attempted.

    ``max_attempts`` counts *total* attempts (1 = no retry).  The delay
    before retry *k* (0-based) is::

        min(backoff_ms * multiplier**k, max_backoff_ms) * jitter_factor

    where ``jitter_factor`` is drawn deterministically from
    ``(seed, question key, k)`` in ``[1 - jitter, 1 + jitter]`` --
    spreading a thundering herd without sacrificing reproducibility.
    Waiting happens on the ambient clock
    (:func:`repro.obs.clock.current_clock`), so a
    :class:`~repro.obs.clock.ManualClock` makes backoff instantaneous
    in tests.
    """

    max_attempts: int = 3
    #: base delay before the first retry, in milliseconds
    backoff_ms: float = 100.0
    multiplier: float = 2.0
    max_backoff_ms: float = 30_000.0
    #: +- fraction of deterministic jitter applied to each delay
    jitter: float = 0.1
    seed: int = 0
    #: error types considered transient (``error.retryable`` is always
    #: honoured in addition)
    retryable: tuple = (InjectedFaultError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_ms < 0 or self.max_backoff_ms < 0:
            raise ConfigurationError(
                "backoff_ms and max_backoff_ms must be >= 0, got "
                f"{self.backoff_ms!r} / {self.max_backoff_ms!r}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier!r}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter!r}"
            )

    def is_retryable(self, error: BaseException) -> bool:
        """Is *error* transient -- worth burning another attempt on?"""
        if isinstance(error, self.retryable):
            return True
        return bool(getattr(error, "retryable", False))

    def delay_s(self, retry_index: int, key: str = "") -> float:
        """Seconds to wait before retry *retry_index* (0-based)."""
        if retry_index < 0:
            raise ConfigurationError(
                f"retry_index must be >= 0, got {retry_index}"
            )
        delay_ms = min(
            self.backoff_ms * self.multiplier ** retry_index,
            self.max_backoff_ms,
        )
        if self.jitter and delay_ms > 0:
            rng = random.Random(f"{self.seed}:{key}:{retry_index}")
            delay_ms *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay_ms / 1000.0

    def wait(self, retry_index: int, key: str = "") -> float:
        """Sleep (on the ambient clock) before retry *retry_index*.

        Returns the delay actually waited, in seconds.
        """
        delay = self.delay_s(retry_index, key)
        if delay > 0:
            current_clock().sleep(delay)
        return delay


class DegradationLadder:
    """The fallback rungs below a full NedExplain report.

    The first two rungs (full report; partial report on budget
    exhaustion) are produced by :meth:`NedExplain.explain` itself; the
    ladder owns the third: when a question's retries are exhausted, run
    the Why-Not baseline (Chapman & Jagadish) on the same question and
    return *its* answer instead of nothing.  The baseline run is
    deliberately **uncached** -- the shared evaluation cache may be the
    very site that is failing -- and any error it raises (including
    :class:`~repro.errors.UnsupportedQueryError` for aggregation
    queries, the paper's "n.a." rows) drops the question to the final
    ``"failed"`` rung.
    """

    def __init__(
        self,
        canonical: "CanonicalQuery",
        instance: "DatabaseInstance",
    ):
        self.canonical = canonical
        self.instance = instance

    @classmethod
    def for_engine(cls, engine: Any) -> "DegradationLadder":
        """A ladder answering over the same query/instance as *engine*
        (a :class:`~repro.core.nedexplain.NedExplain`)."""
        return cls(engine.canonical, engine.instance)

    def baseline_answer(
        self, predicate: Any
    ) -> "WhyNotBaselineReport | None":
        """The baseline rung: a Why-Not answer, or ``None`` if even the
        baseline cannot resolve the question."""
        from ..baseline.whynot import WhyNotBaseline

        tracer = current_tracer()
        try:
            baseline = WhyNotBaseline(
                self.canonical, instance=self.instance, use_cache=False
            )
            report = baseline.explain(predicate)
        except ReproError:
            if tracer is not None:
                tracer.metrics.counter(
                    "resilience.fallbacks.failed"
                ).inc()
            return None
        if tracer is not None:
            tracer.metrics.counter("resilience.fallbacks.baseline").inc()
        return report

    def __repr__(self) -> str:
        return f"DegradationLadder(levels={DEGRADATION_LEVELS})"
