"""Robustness subsystem: execution budgets, fault isolation, chaos.

Production why-not services must fail cleanly and degrade gracefully
(cf. PUG's middleware engineering and the bounded-effort summaries of
Lee et al. 2020).  This package provides the three pieces:

* :mod:`~repro.robustness.budget` -- :class:`Budget` /
  :class:`ExecutionContext`: cooperative wall-clock / row / comparison
  limits threaded through every execution layer; exhaustion raises
  :class:`~repro.errors.BudgetExceededError` and NedExplain turns it
  into an explicit *degraded* report instead of nothing;
* :mod:`~repro.robustness.outcomes` -- :class:`QuestionOutcome` /
  :class:`FailureInfo`: the total, per-question result type of
  fault-isolated batches (``NedExplain.explain_each`` /
  ``repro.explain_batch``);
* :mod:`~repro.robustness.faults` -- :class:`FaultPlan` and the
  :func:`fault_point` sites: deterministic, seedable fault injection
  used by the chaos test suite to prove failure containment.

The resilience layer on top makes failures *recoverable*, not just
contained:

* :mod:`~repro.robustness.resilience` -- :class:`RetryPolicy`
  (exponential backoff, deterministic jitter, clock-injected waits)
  and the :class:`DegradationLadder` (full report -> partial report ->
  Why-Not baseline answer -> structured failure);
* :mod:`~repro.robustness.breaker` -- per-fault-site
  :class:`CircuitBreaker`\\ s that stop retries from hammering a
  persistently failing site;
* :mod:`~repro.robustness.journal` -- :class:`BatchJournal`, the
  fsync-per-record write-ahead log that lets a killed batch resume
  where it died;
* :mod:`~repro.robustness.executor` -- :class:`ParallelExecutor` /
  :class:`CancellationToken`: the supervised worker pool behind
  ``NedExplain.explain_each(workers=N)``, with bounded-queue
  backpressure, deterministic load shedding, batch deadlines, and
  graceful signal-triggered drains.
"""

from ..errors import (
    BatchError,
    BudgetExceededError,
    CancelledError,
    ConfigurationError,
    InjectedFaultError,
    JournalError,
    LoadShedError,
)
from .budget import (
    Budget,
    BudgetSpent,
    ExecutionContext,
    current_context,
    execution_context,
)
from .executor import CancellationToken, ParallelExecutor
from .faults import (
    ALL_FAULT_SITES,
    FAULT_KINDS,
    FAULT_SCOPES,
    FAULT_SITES,
    IO_FAULT_SITES,
    NET_FAULT_SITES,
    FaultPlan,
    FaultSpec,
    active_plan,
    fault_point,
    fault_scope,
    inject,
)
from .breaker import CircuitBreaker, CircuitBreakerBoard
from .journal import BatchJournal, question_digest
from .outcomes import (
    DEGRADATION_LEVELS,
    FailureInfo,
    QuestionOutcome,
    ReplayedOutcome,
)
from .resilience import DegradationLadder, RetryPolicy

__all__ = [
    "BatchError",
    "BatchJournal",
    "Budget",
    "BudgetExceededError",
    "BudgetSpent",
    "CancellationToken",
    "CancelledError",
    "CircuitBreaker",
    "CircuitBreakerBoard",
    "ConfigurationError",
    "DEGRADATION_LEVELS",
    "DegradationLadder",
    "ExecutionContext",
    "ALL_FAULT_SITES",
    "FAULT_KINDS",
    "FAULT_SCOPES",
    "FAULT_SITES",
    "IO_FAULT_SITES",
    "NET_FAULT_SITES",
    "FailureInfo",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "JournalError",
    "LoadShedError",
    "ParallelExecutor",
    "QuestionOutcome",
    "ReplayedOutcome",
    "RetryPolicy",
    "active_plan",
    "current_context",
    "execution_context",
    "fault_point",
    "fault_scope",
    "inject",
    "question_digest",
]
