"""Supervised worker-pool batch executor for why-not batches.

The EDBT 2014 evaluation times *independent* why-not questions over one
instance -- an embarrassingly parallel workload once the shared
substrate (evaluation cache, metrics, breakers, fault counters, batch
journal) is concurrency-safe.  :class:`ParallelExecutor` runs a batch
across ``workers`` threads while preserving every guarantee the
sequential path has:

**Context propagation.**  Each worker thread runs inside its own
:func:`contextvars.copy_context` of the submitting thread, so the
ambient clock (:mod:`repro.obs.clock`), tracer (:mod:`repro.obs.trace`),
execution-context/budget, and fault scope all propagate exactly as they
would to a nested call.  Under an ambient tracer every worker gets a
*private* :class:`~repro.obs.Tracer` (one span stack models one
thread); finished worker tracers are folded back into the parent in
worker order via :meth:`~repro.obs.Tracer.absorb`, which merges metrics
through the existing snapshot-merge semantics.

**Determinism.**  Results are returned in submission order, one per
item, always.  Under a :class:`~repro.obs.clock.ManualClock`, each item
runs on a private :meth:`~repro.obs.clock.ManualClock.fork` of the
batch clock, so one question's retry backoff (which advances virtual
time) can never inflate a phase measured concurrently by another
question -- this is what makes a ``workers=N`` manual-clock run
byte-identical to the sequential run.

**Backpressure and load shedding.**  Admitted items flow through a
bounded queue (``queue_size``, default ``2 * workers``): submission
blocks when the workers fall behind instead of buffering the whole
batch.  With ``shed_after=N``, only the first N non-replayed items are
admitted; the rest resolve to explicit *shed* outcomes
(``degradation_level == "shed"``) -- a deterministic admission quota,
never a silent drop.

**Cooperative cancellation and graceful drain.**  A
:class:`CancellationToken` (set by the CLI's SIGINT/SIGTERM handler, a
batch deadline, or any caller) stops *admission*: in-flight items
always run to completion and are journalled; items not yet started
resolve to explicit *cancelled* outcomes.  ``batch_deadline_s`` arms a
whole-batch deadline on the ambient clock; per-question budgets are
additionally capped to the remaining batch time by the engine (see
``NedExplain.explain_each``).

**Crash-safe journalling.**  Workers complete out of order, so journal
appends happen in completion order under the journal's lock; resume
matches records by question identity (index + digest), not position.
Shed and cancelled outcomes are *not* journalled -- a resumed batch
recomputes them properly.

Locking order (documented contract; see docs/robustness.md):
``EvaluationCache`` -> ``FaultPlan`` -> ``MetricsRegistry``/
instruments.  ``BatchJournal`` and ``CircuitBreaker``/board locks are
leaves (no other engine lock is ever taken while holding them).  The
executor's own results lock is also a leaf.
"""

from __future__ import annotations

import contextvars
import queue
import threading
from typing import Any, Callable, Iterable

from ..errors import ConfigurationError
from ..obs.clock import ManualClock, current_clock, use_clock
from ..obs.trace import Tracer, current_tracer, tracing

__all__ = ["CancellationToken", "ParallelExecutor"]

#: How long a blocked queue put sleeps before re-checking cancellation.
_PUT_POLL_S = 0.05

_SENTINEL = object()


class CancellationToken:
    """A one-shot, thread-safe cooperative cancellation signal.

    Setting the token never interrupts running work: the executor
    checks it at *admission* points only, so in-flight questions always
    finish (and are journalled) -- a graceful drain, not an abort.  The
    first :meth:`cancel` wins; its reason is reported on every
    cancelled outcome.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._reason: str | None = None

    def cancel(self, reason: str = "cancelled") -> bool:
        """Request cancellation; returns True iff this call set it."""
        with self._lock:
            if self._event.is_set():
                return False
            self._reason = reason
            self._event.set()
            return True

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> str | None:
        """Why the token was set (``None`` while it is not)."""
        return self._reason

    def __repr__(self) -> str:
        if self.cancelled:
            return f"CancellationToken(cancelled, {self._reason!r})"
        return "CancellationToken(active)"


class ParallelExecutor:
    """Run a batch of items through a supervised worker pool.

    ``workers <= 1`` runs the identical admission policy inline on the
    calling thread (no threads, no clock forks): the sequential path is
    the degenerate case of the parallel one, not a separate code path.

    Parameters
    ----------
    workers:
        Worker-thread count; capped at the item count.
    queue_size:
        Bound of the submission queue (default ``2 * workers``); a full
        queue blocks submission (backpressure) instead of buffering.
    shed_after:
        Admission quota: after this many non-replayed items have been
        admitted, the rest are shed (explicit outcomes, never dropped).
    batch_deadline_s:
        Whole-batch deadline measured on the ambient clock from
        :meth:`run` entry; once expired, not-yet-started items resolve
        to cancelled outcomes.
    cancel:
        A shared :class:`CancellationToken` (e.g. wired to a signal
        handler); a private one is created when omitted.
    """

    def __init__(
        self,
        workers: int = 1,
        queue_size: int | None = None,
        shed_after: int | None = None,
        batch_deadline_s: float | None = None,
        cancel: CancellationToken | None = None,
    ):
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        if queue_size is not None and queue_size < 1:
            raise ConfigurationError(
                f"queue_size must be >= 1, got {queue_size}"
            )
        if shed_after is not None and shed_after < 0:
            raise ConfigurationError(
                f"shed_after must be >= 0, got {shed_after}"
            )
        if batch_deadline_s is not None and batch_deadline_s <= 0:
            raise ConfigurationError(
                f"batch_deadline_s must be positive, got "
                f"{batch_deadline_s!r}"
            )
        self.workers = workers
        self.queue_size = (
            queue_size if queue_size is not None else max(2, 2 * workers)
        )
        self.shed_after = shed_after
        self.batch_deadline_s = batch_deadline_s
        self.cancel = cancel if cancel is not None else CancellationToken()
        self._deadline_at: float | None = None

    # ------------------------------------------------------------------
    # Deadline / drain state
    # ------------------------------------------------------------------
    def remaining_s(self) -> float | None:
        """Seconds left on the batch deadline (``None`` when unarmed)."""
        if self._deadline_at is None:
            return None
        return self._deadline_at - current_clock().monotonic()

    def drain_reason(self) -> str | None:
        """Why admission is closed right now, or ``None`` if it is open."""
        if self.cancel.cancelled:
            return self.cancel.reason or "cancelled"
        remaining = self.remaining_s()
        if remaining is not None and remaining <= 0:
            return "batch deadline exceeded"
        return None

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(
        self,
        items: Iterable[Any],
        resolve: Callable[[int, Any], Any],
        replay: Callable[[int, Any], Any] | None = None,
        record: Callable[[int, Any, Any], None] | None = None,
        on_shed: Callable[[int, Any], Any] | None = None,
        on_cancelled: Callable[[int, Any, str], Any] | None = None,
    ) -> list[Any]:
        """Drive every item to a result; results in submission order.

        *resolve* does the work (worker threads); *replay* serves
        already-completed results (journal resume; main thread, never
        counted against the shed quota); *record* persists a freshly
        resolved result (worker thread, completion order); *on_shed* /
        *on_cancelled* build the explicit refusal results.
        """
        items = list(items)
        if self.shed_after is not None and on_shed is None:
            raise ConfigurationError(
                "shed_after requires an on_shed result builder"
            )
        if (
            self.batch_deadline_s is not None or self.cancel is not None
        ) and on_cancelled is None:
            raise ConfigurationError(
                "the executor requires an on_cancelled result builder"
            )
        if self.batch_deadline_s is not None:
            self._deadline_at = (
                current_clock().monotonic() + self.batch_deadline_s
            )
        if self.workers <= 1:
            return self._run_inline(
                items, resolve, replay, record, on_shed, on_cancelled
            )
        return self._run_parallel(
            items, resolve, replay, record, on_shed, on_cancelled
        )

    # ------------------------------------------------------------------
    def _run_inline(
        self, items, resolve, replay, record, on_shed, on_cancelled
    ) -> list[Any]:
        results: list[Any] = []
        admitted = 0
        for index, item in enumerate(items):
            if replay is not None:
                replayed = replay(index, item)
                if replayed is not None:
                    results.append(replayed)
                    continue
            reason = self.drain_reason()
            if reason is not None:
                results.append(on_cancelled(index, item, reason))
                continue
            if self.shed_after is not None and admitted >= self.shed_after:
                results.append(on_shed(index, item))
                continue
            admitted += 1
            result = resolve(index, item)
            if record is not None:
                record(index, item, result)
            results.append(result)
        return results

    # ------------------------------------------------------------------
    def _run_parallel(
        self, items, resolve, replay, record, on_shed, on_cancelled
    ) -> list[Any]:
        work: queue.Queue = queue.Queue(maxsize=self.queue_size)
        results: dict[int, Any] = {}
        results_lock = threading.Lock()
        errors: list[tuple[int, BaseException]] = []
        worker_count = min(self.workers, max(1, len(items)))
        # One private context copy per worker, created on THIS thread:
        # a contextvars.Context cannot be entered concurrently, so the
        # workers must not share one.
        contexts = [
            contextvars.copy_context() for _ in range(worker_count)
        ]
        worker_tracers: list[Tracer | None] = [None] * worker_count

        def worker_body(slot: int) -> None:
            # Runs inside contexts[slot]: the ambient clock, execution
            # context, and fault scope of the submitting thread are
            # visible here exactly as in a nested sequential call.
            if current_tracer() is None:
                self._consume(
                    work, resolve, record, on_cancelled,
                    results, results_lock, errors,
                )
                return
            tracer = Tracer()
            worker_tracers[slot] = tracer
            with tracing(tracer):
                self._consume(
                    work, resolve, record, on_cancelled,
                    results, results_lock, errors,
                )

        threads = [
            threading.Thread(
                target=contexts[slot].run,
                args=(worker_body, slot),
                name=f"repro-executor-{slot}",
                daemon=True,
            )
            for slot in range(worker_count)
        ]
        admitted = 0
        try:
            for thread in threads:
                thread.start()
            for index, item in enumerate(items):
                if replay is not None:
                    replayed = replay(index, item)
                    if replayed is not None:
                        with results_lock:
                            results[index] = replayed
                        continue
                reason = self.drain_reason()
                if reason is not None:
                    with results_lock:
                        results[index] = on_cancelled(index, item, reason)
                    continue
                if (
                    self.shed_after is not None
                    and admitted >= self.shed_after
                ):
                    with results_lock:
                        results[index] = on_shed(index, item)
                    continue
                admitted += 1
                if not self._put(work, (index, item)):
                    # admission closed while we were blocked on a full
                    # queue: the item never started
                    with results_lock:
                        results[index] = on_cancelled(
                            index, item,
                            self.drain_reason() or "cancelled",
                        )
        except BaseException:
            # submission failed (e.g. a JournalError from replay):
            # close admission so the workers stop promptly, then drain
            self.cancel.cancel("batch submission aborted")
            raise
        finally:
            for _ in threads:
                work.put(_SENTINEL)
            for thread in threads:
                thread.join()
            parent_tracer = current_tracer()
            if parent_tracer is not None:
                for tracer in worker_tracers:
                    if tracer is not None:
                        parent_tracer.absorb(tracer)
        if errors:
            errors.sort(key=lambda pair: pair[0])
            raise errors[0][1]
        return [results[index] for index in range(len(items))]

    def _put(self, work: queue.Queue, entry) -> bool:
        """Blocking, cancellation-aware put (the backpressure point)."""
        while True:
            try:
                work.put(entry, timeout=_PUT_POLL_S)
                return True
            except queue.Full:
                if self.drain_reason() is not None:
                    return False

    def _consume(
        self, work, resolve, record, on_cancelled,
        results, results_lock, errors,
    ) -> None:
        """Worker loop: dequeue, (maybe) resolve, record, store."""
        clock = current_clock()
        while True:
            entry = work.get()
            if entry is _SENTINEL:
                return
            index, item = entry
            try:
                reason = self.drain_reason()
                if reason is not None:
                    # queued but not started when the drain began
                    result = on_cancelled(index, item, reason)
                else:
                    if isinstance(clock, ManualClock):
                        # per-question virtual time (see module doc)
                        with use_clock(clock.fork()):
                            result = resolve(index, item)
                    else:
                        result = resolve(index, item)
                    if record is not None:
                        record(index, item, result)
                with results_lock:
                    results[index] = result
            except Exception as exc:  # noqa: BLE001 -- supervision
                with results_lock:
                    errors.append((index, exc))
                self.cancel.cancel(
                    f"internal executor error at index {index}"
                )

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(workers={self.workers}, "
            f"queue_size={self.queue_size}, "
            f"shed_after={self.shed_after}, "
            f"batch_deadline_s={self.batch_deadline_s})"
        )
