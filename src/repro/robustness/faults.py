"""Deterministic fault injection for the chaos test suite.

A :class:`FaultPlan` decides, ahead of time and purely from a seed, at
which invocation of which named *site* an exception fires.  The
execution layers call :func:`fault_point` at their instrumented sites;
when no plan is installed the call is a single ``is None`` check, so
production runs pay nothing.

Instrumented sites (:data:`FAULT_SITES`):

``operator.apply``
    just before each operator evaluation in
    :func:`repro.relational.evaluator.evaluate`;
``cache.lookup`` / ``cache.store``
    around :meth:`repro.relational.evalcache.EvaluationCache.get_or_evaluate`
    -- the store site fires *after* evaluation but *before* the entry
    is retained, proving the cache never keeps partial results;
``csv.row``
    per data row in :func:`repro.relational.csv_io.load_database`;
``compatible.find``
    per c-tuple in
    :meth:`repro.core.compatibility.CompatibleFinder.find`.

Plans inject either an :class:`~repro.errors.InjectedFaultError`
(``kind="error"``) or a synthetic
:class:`~repro.errors.BudgetExceededError` (``kind="budget"``), so the
chaos suite exercises both failure containment and budgeted
degradation from the same harness.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..errors import (
    BudgetExceededError,
    ConfigurationError,
    InjectedFaultError,
)
from ..obs.trace import current_tracer

#: Every site wired with a :func:`fault_point` call.
FAULT_SITES: tuple[str, ...] = (
    "operator.apply",
    "cache.lookup",
    "cache.store",
    "csv.row",
    "compatible.find",
)

#: Disk-fault sites wired through the storage I/O shim
#: (:mod:`repro.storage.io`).  Kept out of :data:`FAULT_SITES` so the
#: engine chaos seeds (``FaultPlan.random`` with the default sites)
#: keep firing exactly where they always did; disk-fault chaos opts in
#: with ``sites=IO_FAULT_SITES``.  Unlike the engine sites, a firing
#: spec here does not merely raise: the shim *imitates the disk* --
#: ``io.write_short`` and ``io.enospc`` land a partial write before
#: failing, ``io.torn_rename`` leaves the temp file stranded, and
#: ``io.fsync_lost`` silently skips the fsync (a lying disk), which
#: only the crash-state harness can observe.
IO_FAULT_SITES: tuple[str, ...] = (
    "io.write_short",
    "io.torn_rename",
    "io.enospc",
    "io.eio",
    "io.fsync_lost",
)

#: Network-fault sites wired through the replica transport shim
#: (:mod:`repro.storage.remote`).  Like the I/O sites, a firing spec
#: does not merely raise: the transport *imitates the network* --
#: ``net.drop`` loses one request, ``net.delay`` holds it for a
#: deterministic pause on the injectable clock, ``net.dup`` delivers a
#: write twice, ``net.partition`` cuts the replica off until the
#: nemesis (or an operator) heals it, ``replica.down`` kills the
#: replica process until restart, and ``replica.slow`` makes every
#: subsequent delivery to that replica pay the delay.
NET_FAULT_SITES: tuple[str, ...] = (
    "net.drop",
    "net.delay",
    "net.partition",
    "net.dup",
    "replica.down",
    "replica.slow",
)

#: Every instrumented site: engine, storage, and network alike.
ALL_FAULT_SITES: tuple[str, ...] = (
    FAULT_SITES + IO_FAULT_SITES + NET_FAULT_SITES
)

#: The two injectable failure kinds.
FAULT_KINDS: tuple[str, ...] = ("error", "budget")

#: Counter scopes a plan can fire on: ``"global"`` counts every
#: invocation of a site process-wide (order-dependent across questions
#: -- only meaningful for sequential batches); ``"question"`` counts
#: per ambient :func:`fault_scope` key, so a spec at ``site#n`` fires at
#: the n-th call *within each question* regardless of how questions
#: interleave across worker threads.
FAULT_SCOPES: tuple[str, ...] = ("global", "question")

#: The ambient per-question counter key (installed by
#: ``NedExplain._resolve_outcome`` for the span of one question,
#: across all of its retry attempts).
_SCOPE: ContextVar[str | None] = ContextVar(
    "repro_fault_scope", default=None
)


@contextmanager
def fault_scope(key: str) -> Iterator[None]:
    """Install *key* as the ambient fault-counter scope for the block.

    Question-scoped plans (``FaultPlan(scope="question")``) count site
    invocations per key instead of globally, which is what makes a
    seeded plan fire identically whether the batch runs sequentially or
    on a worker pool."""
    token = _SCOPE.set(key)
    try:
        yield
    finally:
        _SCOPE.reset(token)


@dataclass(frozen=True)
class FaultSpec:
    """Fire once: at the ``at_call``-th invocation (0-based) of *site*."""

    site: str
    at_call: int
    kind: str = "error"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {FAULT_KINDS}"
            )
        if self.at_call < 0:
            raise ConfigurationError(
                f"at_call must be >= 0, got {self.at_call}"
            )

    def build_error(self) -> Exception:
        if self.kind == "budget":
            return BudgetExceededError(
                f"injected budget exhaustion at {self.site}"
                f"#{self.at_call}",
                resource="injected",
            )
        return InjectedFaultError(
            f"injected fault at {self.site}#{self.at_call}",
            site=self.site,
            call_index=self.at_call,
        )


class FaultPlan:
    """A deterministic schedule of faults over the named sites.

    ``calls`` counts every :func:`fault_point` invocation per site and
    ``fired`` records the specs that actually triggered, so tests can
    assert both coverage (the plan was reachable) and determinism (two
    runs of the same seed fire identically).

    All counter mutation happens under one internal lock, so
    ``snapshot()``/``delta()`` stay exact when ``fault_point`` is hit
    from several worker threads at once.  Firing *decisions* use the
    counters selected by ``scope`` (see :data:`FAULT_SCOPES`): the
    default global counters are inherently order-dependent across
    questions, while ``scope="question"`` keys them by the ambient
    :func:`fault_scope` so a plan fires identically under any worker
    interleaving.
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec] = (),
        seed: int | None = None,
        scope: str = "global",
    ):
        if scope not in FAULT_SCOPES:
            raise ConfigurationError(
                f"unknown fault scope {scope!r}; choose from "
                f"{FAULT_SCOPES}"
            )
        self.specs = tuple(specs)
        self.seed = seed
        self.scope = scope
        self._by_site: dict[str, dict[int, FaultSpec]] = {}
        for spec in self.specs:
            self._by_site.setdefault(spec.site, {})[spec.at_call] = spec
        self._lock = threading.Lock()
        self.calls: dict[str, int] = {}
        #: per-``fault_scope``-key call counts (question scope only)
        self._scoped_calls: dict[str, dict[str, int]] = {}
        self.fired: list[FaultSpec] = []

    @classmethod
    def random(
        cls,
        seed: int,
        sites: Sequence[str] = FAULT_SITES,
        faults: int = 1,
        max_call: int = 12,
        budget_rate: float = 0.3,
        scope: str = "global",
    ) -> "FaultPlan":
        """A seeded plan: *faults* specs drawn uniformly over *sites*
        and call indexes ``[0, max_call)``; a ``budget_rate`` fraction
        injects budget exhaustion instead of a hard error."""
        rng = random.Random(seed)
        specs = []
        for _ in range(faults):
            specs.append(
                FaultSpec(
                    site=rng.choice(list(sites)),
                    at_call=rng.randrange(max_call),
                    kind="budget"
                    if rng.random() < budget_rate
                    else "error",
                )
            )
        return cls(specs, seed=seed, scope=scope)

    def fire(self, site: str) -> None:
        """Count one invocation of *site*; raise if a spec matches."""
        with self._lock:
            index = self.calls.get(site, 0)
            self.calls[site] = index + 1
            if self.scope == "question":
                key = _SCOPE.get()
                if key is not None:
                    per_site = self._scoped_calls.setdefault(key, {})
                    index = per_site.get(site, 0)
                    per_site[site] = index + 1
            spec = self._by_site.get(site, {}).get(index)
            if spec is not None:
                self.fired.append(spec)
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.counter(f"faults.calls.{site}").inc()
            if spec is not None:
                tracer.metrics.counter(f"faults.fired.{site}").inc()
        if spec is not None:
            raise spec.build_error()

    def reset(self) -> None:
        """Forget all call counts and fired records (reuse a plan)."""
        with self._lock:
            self.calls = {}
            self._scoped_calls = {}
            self.fired = []

    def snapshot(self) -> dict[str, int]:
        """A frozen copy of the per-site call counts.

        Take one before an attempt and diff with :meth:`delta` after it
        to assert exactly which sites (and how many calls) that attempt
        consumed -- the retry chaos tests pin down which attempt a
        retried fault burned this way.
        """
        with self._lock:
            return dict(self.calls)

    def delta(self, since: dict[str, int]) -> dict[str, int]:
        """Per-site calls made after *since* (a :meth:`snapshot`).

        Only sites with a positive delta appear in the result.
        """
        out: dict[str, int] = {}
        with self._lock:
            for site, count in self.calls.items():
                consumed = count - since.get(site, 0)
                if consumed > 0:
                    out[site] = consumed
        return out

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, specs={list(self.specs)!r}, "
            f"fired={len(self.fired)})"
        )


#: The currently installed plan (module-global on purpose: one plan
#: governs the whole batch, including every worker thread of a
#: parallel run; production code never installs one).  The plan itself
#: is thread-safe -- its counters mutate under an internal lock.
_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    return _ACTIVE


def fault_point(site: str) -> None:
    """Instrumentation hook: no-op unless a plan is installed."""
    if _ACTIVE is not None:
        _ACTIVE.fire(site)


@contextmanager
def inject(plan: FaultPlan, fresh: bool = True) -> Iterator[FaultPlan]:
    """Install *plan* for the duration of the block.

    By default the plan's counters are :meth:`~FaultPlan.reset` on
    entry, so a plan object reused across several ``inject`` blocks
    fires identically each time.  (Counters used to leak across
    reuses: the second block inherited the first block's call counts,
    silently shifting -- usually disabling -- every spec.)  Pass
    ``fresh=False`` to deliberately continue a previous block's
    schedule.
    """
    global _ACTIVE
    if fresh:
        plan.reset()
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous
