"""Per-fault-site circuit breakers (closed -> open -> half-open).

A retry policy alone makes a *persistently* failing site worse: every
question burns its full attempt budget hammering the same broken
dependency.  A :class:`CircuitBreaker` watches the failure rate of one
named site over a sliding window of recent calls and, once the rate
crosses the threshold, *opens*: further retries against that site are
refused immediately (the caller drops straight down the degradation
ladder).  After a cooldown -- measured on the injectable clock of
:mod:`repro.obs.clock`, so tests drive it with a
:class:`~repro.obs.clock.ManualClock` -- the breaker lets one probe
through (*half-open*); a success closes it again, a failure re-opens
it for another cooldown.

Breakers surface their behaviour through the ambient tracer's metrics:

* ``breaker.opens`` / ``breaker.opens.<site>`` -- counter, incremented
  on every closed/half-open -> open transition;
* ``breaker.state.<site>`` -- gauge holding the current
  :data:`STATE_CODES` value (0 closed, 1 half-open, 2 open).

Sites are the same names the fault-injection layer uses
(:data:`repro.robustness.faults.FAULT_SITES`); errors without a site
(no ``error.site`` attribute) are keyed by their error class, so the
breaker still converges on e.g. a persistently failing evaluator.
"""

from __future__ import annotations

import threading
from collections import deque

from ..errors import ConfigurationError
from ..obs.clock import Clock, current_clock
from ..obs.trace import current_tracer

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "STATE_CODES",
    "CircuitBreaker",
    "CircuitBreakerBoard",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding of the states for the ``breaker.state.<site>`` gauge.
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Failure-rate breaker for one site.

    ``window`` bounds the sliding window of recorded call results;
    the breaker trips when at least ``min_calls`` results are in the
    window and the failure fraction reaches ``failure_threshold``.
    Thread-safe: state transitions and window mutation happen under an
    internal lock, so the worker threads of a parallel batch share one
    breaker without tearing its window.  (Which worker's failure trips
    the breaker still depends on scheduling -- shared breaker state is
    inherently order-dependent; deterministic differential tests pass a
    board lenient enough never to trip.)
    """

    def __init__(
        self,
        site: str,
        window: int = 16,
        failure_threshold: float = 0.5,
        min_calls: int = 4,
        cooldown_s: float = 30.0,
        clock: Clock | None = None,
    ):
        if window < 1:
            raise ConfigurationError(
                f"window must be >= 1, got {window}"
            )
        if not 0.0 < failure_threshold <= 1.0:
            raise ConfigurationError(
                f"failure_threshold must be in (0, 1], got "
                f"{failure_threshold!r}"
            )
        if min_calls < 1 or min_calls > window:
            raise ConfigurationError(
                f"min_calls must be in [1, window={window}], got "
                f"{min_calls}"
            )
        if cooldown_s < 0:
            raise ConfigurationError(
                f"cooldown_s must be >= 0, got {cooldown_s!r}"
            )
        self.site = site
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.cooldown_s = cooldown_s
        self.clock = clock if clock is not None else current_clock()
        self.state = CLOSED
        #: closed/half-open -> open transitions since construction
        self.opens = 0
        self._results: deque[bool] = deque(maxlen=window)
        self._opened_at: float | None = None
        self._lock = threading.RLock()
        self._publish_state()

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May the caller attempt this site right now?

        An open breaker transitions to half-open (and admits one probe)
        once its cooldown has elapsed on the clock.
        """
        with self._lock:
            if self.state == OPEN:
                assert self._opened_at is not None
                if (
                    self.clock.monotonic() - self._opened_at
                    >= self.cooldown_s
                ):
                    self._transition(HALF_OPEN)
                    return True
                return False
            return True

    def record_success(self) -> None:
        with self._lock:
            self._results.append(True)
            if self.state == HALF_OPEN:
                # the probe came back healthy: close and forget the past
                self._results.clear()
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._results.append(False)
            if self.state == HALF_OPEN:
                self._trip()  # the probe failed: straight back to open
                return
            if (
                self.state == CLOSED
                and len(self._results) >= self.min_calls
            ):
                failures = sum(1 for ok in self._results if not ok)
                if (
                    failures / len(self._results)
                    >= self.failure_threshold
                ):
                    self._trip()

    @property
    def failure_rate(self) -> float:
        with self._lock:
            if not self._results:
                return 0.0
            return sum(1 for ok in self._results if not ok) / len(
                self._results
            )

    # ------------------------------------------------------------------
    def _trip(self) -> None:
        self.opens += 1
        self._opened_at = self.clock.monotonic()
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.counter("breaker.opens").inc()
            tracer.metrics.counter(f"breaker.opens.{self.site}").inc()
        self._transition(OPEN)

    def _transition(self, state: str) -> None:
        self.state = state
        self._publish_state()

    def _publish_state(self) -> None:
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.gauge(f"breaker.state.{self.site}").set(
                STATE_CODES[self.state]
            )

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.site!r}, state={self.state}, "
            f"rate={self.failure_rate:.2f}, opens={self.opens})"
        )


class CircuitBreakerBoard:
    """Lazily-created breakers, one per site, sharing one configuration.

    ``NedExplain.explain_each`` consults the board between retry
    attempts: a failure at site S is recorded against S's breaker, and
    further retries are skipped while that breaker refuses the site.
    Pass a board explicitly to share breaker state across batches (a
    long-lived service wants the breaker memory to outlive one call).
    """

    def __init__(
        self,
        window: int = 16,
        failure_threshold: float = 0.5,
        min_calls: int = 4,
        cooldown_s: float = 30.0,
        clock: Clock | None = None,
    ):
        self._config = dict(
            window=window,
            failure_threshold=failure_threshold,
            min_calls=min_calls,
            cooldown_s=cooldown_s,
        )
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, site: str) -> CircuitBreaker:
        with self._lock:
            existing = self._breakers.get(site)
            if existing is None:
                existing = CircuitBreaker(
                    site, clock=self._clock, **self._config
                )
                self._breakers[site] = existing
            return existing

    def allow(self, site: str) -> bool:
        return self.breaker(site).allow()

    def record_success(self, site: str) -> None:
        self.breaker(site).record_success()

    def record_failure(self, site: str) -> None:
        self.breaker(site).record_failure()

    def states(self) -> dict[str, str]:
        """Current state per site (for reports and tests)."""
        with self._lock:
            breakers = sorted(self._breakers.items())
        return {site: breaker.state for site, breaker in breakers}

    def open_sites(self) -> list[str]:
        """Sites whose breaker is currently open, sorted.

        The service's ``/readyz`` endpoint flips to 503 while any site
        is open: a load balancer should stop routing to a replica whose
        substrate is known-broken, even though the process is alive.
        """
        return [
            site
            for site, state in self.states().items()
            if state == OPEN
        ]

    def __len__(self) -> int:
        return len(self._breakers)

    def __repr__(self) -> str:
        return f"CircuitBreakerBoard({self.states()!r})"
