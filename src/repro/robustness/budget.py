"""Execution budgets and the cooperative :class:`ExecutionContext`.

Algorithm 1's full-tree evaluation is exactly where runaway joins blow
up: a single oversized intermediate result can stall a whole batch of
why-not questions.  This module bounds that risk the way provenance
middleware does it in practice (PUG's fail-clean engineering; the
bounded-effort, degraded summaries of Lee et al. 2020): an explicit
:class:`Budget` -- wall-clock deadline, max intermediate rows, max
tuple comparisons -- carried by an :class:`ExecutionContext` that the
execution layers tick cooperatively:

* the evaluator ticks ``rows`` once per operator output
  (:func:`repro.relational.evaluator.evaluate`);
* the join / selection / aggregation loops and the compatible-set and
  successor computations tick ``comparisons`` in small batches, which
  also bounds runaway work *inside* a single operator;
* every tick cheaply checks the deadline (comparisons are throttled to
  one clock read per :data:`DEADLINE_CHECK_EVERY` ticks).

Budget exhaustion raises
:class:`~repro.errors.BudgetExceededError` at the next tick -- the
granularity is cooperative, not preemptive -- carrying a
:class:`BudgetSpent` snapshot so callers can report how much work the
degraded answer consumed.

The context is ambient (a :class:`contextvars.ContextVar`) so that the
deep operator loops need no signature changes: wrap any library call in
:func:`execution_context` and the ticks below it are accounted::

    with execution_context(ExecutionContext(Budget(max_rows=10_000))):
        result = evaluate_query(root, database)

All wall-clock reads go through the injectable clock of
:mod:`repro.obs.clock` (the context captures the ambient clock at
construction), so budget and chaos tests drive deadlines with a
:class:`~repro.obs.clock.ManualClock` instead of sleeping.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator

from ..errors import BudgetExceededError, ConfigurationError
from ..obs.clock import Clock, current_clock
from ..obs.trace import current_tracer

#: How many comparison ticks may pass between two wall-clock reads.
DEADLINE_CHECK_EVERY = 1024


@dataclass(frozen=True)
class Budget:
    """Limits for one unit of work (one why-not question, typically).

    ``None`` disables the corresponding limit; the default budget is
    unlimited, so threading a context through fault-free code changes
    nothing observably.
    """

    #: wall-clock seconds from context creation
    deadline_s: float | None = None
    #: total intermediate rows produced across all operators
    max_rows: int | None = None
    #: total tuple comparisons (join probes, selections, compatibility
    #: and successor checks)
    max_comparisons: int | None = None

    def __post_init__(self) -> None:
        for name in ("deadline_s", "max_rows", "max_comparisons"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"budget {name} must be positive, got {value!r}"
                )

    @property
    def is_unlimited(self) -> bool:
        return (
            self.deadline_s is None
            and self.max_rows is None
            and self.max_comparisons is None
        )

    @classmethod
    def from_request(cls, spec: object) -> "Budget | None":
        """Build a budget from a request-level mapping (the service
        API's ``budget`` object / ``X-Deadline-Ms`` header).

        Accepted keys: ``deadline_ms`` (milliseconds of wall clock),
        ``max_rows``, ``max_comparisons``.  ``None`` or an empty
        mapping yields ``None`` (no budget); anything else malformed --
        a non-mapping, unknown keys, non-numeric or non-positive values
        -- raises :class:`~repro.errors.ConfigurationError` so the
        caller can refuse the request instead of silently running it
        unbounded.
        """
        if spec is None:
            return None
        if not isinstance(spec, dict):
            raise ConfigurationError(
                f"budget must be an object, got {type(spec).__name__}"
            )
        unknown = set(spec) - {
            "deadline_ms", "max_rows", "max_comparisons",
        }
        if unknown:
            raise ConfigurationError(
                f"unknown budget key(s) {sorted(unknown)}; accepted: "
                "deadline_ms, max_rows, max_comparisons"
            )
        if not spec:
            return None

        def _number(key: str) -> float | None:
            value = spec.get(key)
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise ConfigurationError(
                    f"budget {key} must be a number, got {value!r}"
                )
            return float(value)

        deadline_ms = _number("deadline_ms")
        max_rows = _number("max_rows")
        max_comparisons = _number("max_comparisons")
        return cls(
            deadline_s=(
                deadline_ms / 1000.0 if deadline_ms is not None else None
            ),
            max_rows=int(max_rows) if max_rows is not None else None,
            max_comparisons=(
                int(max_comparisons)
                if max_comparisons is not None
                else None
            ),
        )


@dataclass(frozen=True)
class BudgetSpent:
    """Snapshot of the work charged to one :class:`ExecutionContext`."""

    elapsed_s: float
    rows: int
    comparisons: int

    def to_dict(self) -> dict:
        """JSON-ready view (the ``--json`` CLI report format)."""
        return {
            "elapsed_s": self.elapsed_s,
            "rows": self.rows,
            "comparisons": self.comparisons,
        }

    def __repr__(self) -> str:
        return (
            f"BudgetSpent(elapsed_s={self.elapsed_s:.3f}, "
            f"rows={self.rows}, comparisons={self.comparisons})"
        )


class ExecutionContext:
    """Mutable accounting for one budgeted unit of work.

    Not thread-safe; create one context per question.  The ``phase``
    attribute is advisory: NedExplain keeps it pointing at the Fig. 5
    phase currently running so failure outcomes can report where the
    budget ran out.

    The context reads time through *clock* (default: the ambient
    :func:`repro.obs.clock.current_clock`), and -- when a tracer is
    active at construction -- mirrors its row/comparison accounting
    into the tracer's ``budget.rows`` / ``budget.comparisons``
    counters so traced runs expose the budget machinery's work.
    """

    def __init__(
        self, budget: Budget | None = None, clock: Clock | None = None
    ):
        self.budget = budget if budget is not None else Budget()
        self.clock = clock if clock is not None else current_clock()
        self.started = self.clock.monotonic()
        self.rows = 0
        self.comparisons = 0
        self.phase: str | None = None
        self._ticks_since_clock = 0
        tracer = current_tracer()
        if tracer is None:
            self._obs_rows = self._obs_comparisons = None
        else:
            self._obs_rows = tracer.metrics.counter("budget.rows")
            self._obs_comparisons = tracer.metrics.counter(
                "budget.comparisons"
            )

    def spent(self) -> BudgetSpent:
        return BudgetSpent(
            elapsed_s=self.clock.monotonic() - self.started,
            rows=self.rows,
            comparisons=self.comparisons,
        )

    # ------------------------------------------------------------------
    # Cooperative ticks
    # ------------------------------------------------------------------
    def tick_rows(self, n: int) -> None:
        """Charge *n* produced intermediate rows."""
        self.rows += n
        if self._obs_rows is not None:
            self._obs_rows.inc(n)
        limit = self.budget.max_rows
        if limit is not None and self.rows > limit:
            self._exhaust("rows", f"{self.rows} rows > limit {limit}")
        self.check_deadline()

    def tick_comparisons(self, n: int) -> None:
        """Charge *n* tuple comparisons (throttled deadline check)."""
        self.comparisons += n
        if self._obs_comparisons is not None:
            self._obs_comparisons.inc(n)
        limit = self.budget.max_comparisons
        if limit is not None and self.comparisons > limit:
            self._exhaust(
                "comparisons",
                f"{self.comparisons} comparisons > limit {limit}",
            )
        self._ticks_since_clock += n
        if self._ticks_since_clock >= DEADLINE_CHECK_EVERY:
            self._ticks_since_clock = 0
            self.check_deadline()

    def check_deadline(self) -> None:
        deadline = self.budget.deadline_s
        if deadline is None:
            return
        elapsed = self.clock.monotonic() - self.started
        if elapsed > deadline:
            self._exhaust(
                "deadline", f"{elapsed:.3f}s > deadline {deadline}s"
            )

    def _exhaust(self, resource: str, detail: str) -> None:
        raise BudgetExceededError(
            f"execution budget exhausted ({resource}): {detail}",
            resource=resource,
            spent=self.spent(),
            phase=self.phase,
        )


# ---------------------------------------------------------------------------
# Ambient context
# ---------------------------------------------------------------------------
_CURRENT: ContextVar[ExecutionContext | None] = ContextVar(
    "repro_execution_context", default=None
)


def current_context() -> ExecutionContext | None:
    """The ambient :class:`ExecutionContext`, or ``None``."""
    return _CURRENT.get()


@contextmanager
def execution_context(
    context: ExecutionContext,
) -> Iterator[ExecutionContext]:
    """Install *context* as the ambient execution context."""
    token = _CURRENT.set(context)
    try:
        yield context
    finally:
        _CURRENT.reset(token)
