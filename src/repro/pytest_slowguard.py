"""Pytest plugin guarding the ``slow``/``bench`` marker discipline.

Tier-1 (plain ``pytest -x -q``) deselects ``slow``/``bench``-marked
tests (see ``[tool.pytest.ini_options]`` in ``pyproject.toml``), which
only keeps the default suite fast if slow tests actually carry the
marker.  This plugin closes that loop at runtime:

* every *unmarked* test whose call phase exceeds
  ``$REPRO_SLOW_TEST_THRESHOLD_S`` (default 5 s) is collected and
  listed in a terminal-summary section;
* with ``REPRO_ENFORCE_SLOW_MARKERS=1`` (set in CI, where a quietly
  slow test would tax every future run) such a test is *failed* with a
  message telling the author to mark it.

The hooks are imported into ``tests/conftest.py``; the enforcement
mechanism itself is proven by ``tests/test_marker_discipline.py``,
which runs a deliberately slow unmarked test under a tiny threshold in
a subprocess and asserts it fails.
"""

from __future__ import annotations

import os

import pytest

#: call-phase duration above which an unmarked test is an offender
DEFAULT_THRESHOLD_S = 5.0


def _threshold_s() -> float:
    raw = os.environ.get("REPRO_SLOW_TEST_THRESHOLD_S")
    if not raw:
        return DEFAULT_THRESHOLD_S
    try:
        return float(raw)
    except ValueError:
        return DEFAULT_THRESHOLD_S


def _enforcing() -> bool:
    return os.environ.get("REPRO_ENFORCE_SLOW_MARKERS") == "1"


def pytest_configure(config):
    config._repro_unmarked_slow = []


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call":
        return
    threshold = _threshold_s()
    if report.duration <= threshold:
        return
    if item.get_closest_marker("slow") or item.get_closest_marker(
        "bench"
    ):
        return
    offenders = getattr(item.config, "_repro_unmarked_slow", None)
    if offenders is not None:
        offenders.append((report.nodeid, report.duration))
    if _enforcing() and report.passed:
        report.outcome = "failed"
        report.longrepr = (
            f"{report.nodeid} took {report.duration:.2f}s "
            f"(> {threshold:g}s) without @pytest.mark.slow or "
            "@pytest.mark.bench; mark it so tier-1 stays fast "
            "(REPRO_ENFORCE_SLOW_MARKERS=1 makes this an error)"
        )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    offenders = getattr(config, "_repro_unmarked_slow", [])
    if not offenders:
        return
    terminalreporter.section(
        "unmarked slow tests (add @pytest.mark.slow)"
    )
    for nodeid, duration in sorted(
        offenders, key=lambda pair: -pair[1]
    ):
        terminalreporter.line(f"{duration:8.2f}s  {nodeid}")
