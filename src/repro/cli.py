"""Command-line interface for NedExplain.

Three subcommands:

* ``explain`` -- load a CSV database, run a SQL query, and answer a
  Why-Not question::

      python -m repro.cli explain --data ./mydb \\
          --sql "SELECT A.name FROM A WHERE A.dob > -800" \\
          --why-not "(A.name: Homer)" [--baseline] [--repairs]

* ``demo`` -- run one of the paper's use cases end to end::

      python -m repro.cli demo Crime5

* ``evaluate`` -- regenerate the answers table (Table 5) over all use
  cases::

      python -m repro.cli evaluate

* ``serve`` -- run the fault-tolerant why-not HTTP service
  (:mod:`repro.service`; API in ``docs/service.md``)::

      python -m repro.cli serve --port 8080 --workers 4 \\
          --shed-after 8 --quota 10/s --journal-dir ./journal

Every subcommand accepts the shared observability/output options:

``--json``
    emit one machine-readable JSON document on stdout instead of the
    human-readable text (errors still go to stderr *and* into the
    document, so nothing ever interleaves on stdout);
``--trace FILE`` / ``--chrome-trace FILE``
    run under a :class:`repro.obs.Tracer` and export the span tree as
    a JSON-lines artifact / a ``chrome://tracing`` document;
``--metrics``
    report the run's metrics snapshot (cache hits, budget ticks,
    operator cardinalities).

All output flows through one :class:`OutputWriter`: human text to
stdout, errors to stderr, the ``--json`` document as the single stdout
payload of a structured run.  The CLI is a thin layer over the public
API; everything it prints comes from the library.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from typing import Any, Sequence, TextIO

from .baseline import WhyNotBaseline
from .core import NedExplain, NedExplainConfig
from .core.repairs import suggest_repairs, verify_repair
from .errors import ConfigurationError, ReproError, UnsupportedQueryError
from .obs import (
    ManualClock,
    Tracer,
    render_trace,
    tracing,
    use_clock,
    write_chrome_trace,
    write_trace_jsonl,
)
from .relational.csv_io import load_database
from .relational.evaluator import evaluate_query
from .relational.sql import sql_to_canonical
from .robustness import (
    BatchJournal,
    Budget,
    CancellationToken,
    RetryPolicy,
)

#: exit codes (the full table lives in docs/robustness.md):
#: 0 = success; 2 = fatal error; 3 = the run completed but degraded --
#: a batch with per-question failures, a budget-limited partial report,
#: a question answered by the baseline fallback, or questions cancelled
#: by an expired --batch-deadline; 4 = resilience was requested
#: (--retries / --fallback-baseline) and at least one question still
#: produced no answer at any ladder rung; 5 = a drain signal
#: (SIGINT/SIGTERM) was received -- in-flight questions finished and
#: were journaled, not-yet-started ones were cancelled; 6 = the
#: --shed-after quota refused at least one question.  Precedence when
#: several apply: 5 > 6 > 4 > 3.
EXIT_OK = 0
EXIT_ERROR = 2
EXIT_DEGRADED = 3
EXIT_NO_FALLBACK = 4
EXIT_DRAINED = 5
EXIT_SHED = 6

#: Environment hook: run the whole CLI on a ManualClock, so every
#: reported duration is deterministically 0.0 -- the kill/resume
#: differential test compares --json documents byte-for-byte this way.
MANUAL_CLOCK_ENV = "REPRO_MANUAL_CLOCK"

#: Default ``--json`` error envelope per nonzero exit code.  Every
#: nonzero exit carries ``document["error"] = {type, message,
#: exit_code}``; a raised :class:`~repro.errors.ReproError` overrides
#: the default with its own class name and message, so scripted
#: callers branch on one stable shape instead of scraping stderr.
_EXIT_ENVELOPES: dict[int, tuple[str, str]] = {
    EXIT_ERROR: ("ReproError", "fatal error"),
    EXIT_DEGRADED: (
        "DegradedResult",
        "the run completed but at least one answer was degraded "
        "(partial, failed, baseline-fallback, or cancelled)",
    ),
    EXIT_NO_FALLBACK: (
        "ResilienceExhausted",
        "resilience was requested but at least one question produced "
        "no answer at any degradation rung",
    ),
    EXIT_DRAINED: (
        "BatchDrained",
        "a drain signal stopped the run; in-flight questions "
        "finished, the rest were cancelled",
    ),
    EXIT_SHED: (
        "LoadShed",
        "admission control refused at least one question",
    ),
}


class OutputWriter:
    """The single sink for everything the CLI emits.

    Text mode: ``line``/``block`` go to stdout, ``error`` to stderr.
    JSON mode: human lines are suppressed, structured fields accumulate
    in one document that :meth:`finish` prints as the *only* stdout
    payload (errors are still mirrored to stderr) -- so traces,
    metrics, reports, and errors can never interleave on stdout.
    """

    def __init__(
        self,
        json_mode: bool = False,
        stdout: TextIO | None = None,
        stderr: TextIO | None = None,
    ):
        self.json_mode = json_mode
        self._stdout = stdout if stdout is not None else sys.stdout
        self._stderr = stderr if stderr is not None else sys.stderr
        self.document: dict[str, Any] = {}
        self._errors: list[str] = []
        self._error_envelope: tuple[str, str] | None = None

    # -- human text ----------------------------------------------------
    def line(self, text: str = "") -> None:
        if not self.json_mode:
            print(text, file=self._stdout)

    def block(self, text: str) -> None:
        """A multi-line chunk (summaries, rendered tables)."""
        if not self.json_mode:
            print(text, file=self._stdout)

    def error(self, text: str) -> None:
        """Errors: stderr always, plus the JSON document in json mode."""
        self._errors.append(text)
        print(text, file=self._stderr)

    def note_error(self, error_type: str, message: str) -> None:
        """Pin the ``--json`` error envelope (first caller wins).

        Without a note, :meth:`finish` falls back to the generic
        envelope for the exit code, so *every* nonzero exit carries
        ``document["error"]``.
        """
        if self._error_envelope is None:
            self._error_envelope = (error_type, message)

    # -- structured document -------------------------------------------
    def set(self, key: str, value: Any) -> None:
        if self.json_mode:
            self.document[key] = value

    def append(self, key: str, value: Any) -> None:
        if self.json_mode:
            self.document.setdefault(key, []).append(value)

    def finish(self, exit_code: int) -> None:
        """Emit the JSON document (json mode); a no-op in text mode."""
        if not self.json_mode:
            return
        self.document["exit_code"] = exit_code
        if exit_code != EXIT_OK:
            error_type, message = (
                self._error_envelope
                if self._error_envelope is not None
                else _EXIT_ENVELOPES.get(
                    exit_code, ("ReproError", "fatal error")
                )
            )
            self.document["error"] = {
                "type": error_type,
                "message": message,
                "exit_code": exit_code,
            }
        if self._errors:
            self.document["errors"] = list(self._errors)
        json.dump(self.document, self._stdout, indent=2, default=str)
        self._stdout.write("\n")


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability and output")
    group.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document on stdout "
        "instead of human-readable text",
    )
    group.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="run under tracing and write a JSON-lines span trace",
    )
    group.add_argument(
        "--chrome-trace",
        dest="chrome_trace",
        metavar="FILE",
        default=None,
        help="run under tracing and write a chrome://tracing document",
    )
    group.add_argument(
        "--metrics",
        action="store_true",
        help="report the run's metrics snapshot (cache hits, budget "
        "ticks, operator cardinalities)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nedexplain",
        description="Query-based why-not provenance (EDBT 2014)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    explain = commands.add_parser(
        "explain", help="answer a why-not question over CSV data"
    )
    explain.add_argument(
        "--data", required=True, help="directory of CSV files"
    )
    explain.add_argument("--sql", required=True, help="the SQL query")
    explain.add_argument(
        "--why-not",
        required=True,
        dest="why_not",
        action="append",
        help="predicate, e.g. \"(A.name: Homer)\"; repeatable -- "
        "several questions against one query evaluation",
    )
    explain.add_argument(
        "--batch",
        action="store_true",
        help="answer all --why-not questions through explain_many "
        "(one shared query evaluation) and report cache statistics",
    )
    explain.add_argument(
        "--baseline",
        action="store_true",
        help="also run the Why-Not baseline for comparison",
    )
    explain.add_argument(
        "--repairs",
        action="store_true",
        help="suggest (and verify) selection relaxations",
    )
    explain.add_argument(
        "--show-result",
        action="store_true",
        help="print the query result first",
    )
    explain.add_argument(
        "--columnar",
        action="store_true",
        help="evaluate queries batch-at-a-time on the columnar "
        "engine (docs/columnar.md); answers are identical to the "
        "row engine, joins are substantially faster",
    )
    explain.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock execution budget; on exhaustion a partial "
        "(degraded) answer is printed and the exit code is 3",
    )
    explain.add_argument(
        "--max-rows",
        type=int,
        default=None,
        dest="max_rows",
        metavar="N",
        help="cap on intermediate rows materialized per question",
    )
    explain.add_argument(
        "--max-comparisons",
        type=int,
        default=None,
        dest="max_comparisons",
        metavar="N",
        help="cap on tuple comparisons performed per question",
    )
    resilience = explain.add_argument_group("resilience")
    resilience.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="max attempts per question (default: 1, no retry); "
        "transient faults are re-attempted with exponential backoff",
    )
    resilience.add_argument(
        "--retry-backoff-ms",
        dest="retry_backoff_ms",
        type=float,
        default=100.0,
        metavar="MS",
        help="base backoff before the first retry (default: 100)",
    )
    resilience.add_argument(
        "--fallback-baseline",
        dest="fallback_baseline",
        action="store_true",
        help="when a question exhausts its retries, answer it with "
        "the Why-Not baseline instead of failing",
    )
    resilience.add_argument(
        "--journal",
        metavar="FILE",
        default=None,
        help="write-ahead log of per-question outcomes (JSONL, "
        "fsync + checksum per record)",
    )
    resilience.add_argument(
        "--resume",
        action="store_true",
        help="replay completed questions from --journal and compute "
        "only the remainder",
    )
    parallel = explain.add_argument_group("parallel execution")
    parallel.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker threads for the batch (default: 1, inline "
        "sequential); results are always in submission order",
    )
    parallel.add_argument(
        "--queue-size",
        dest="queue_size",
        type=int,
        default=None,
        metavar="N",
        help="bound on the submission queue (default: 2*workers); "
        "submission blocks -- backpressure -- when it is full",
    )
    parallel.add_argument(
        "--shed-after",
        dest="shed_after",
        type=int,
        default=None,
        metavar="N",
        help="admit at most N questions; the rest are shed as "
        "explicit 'shed' outcomes (exit code 6), never dropped",
    )
    parallel.add_argument(
        "--batch-deadline",
        dest="batch_deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline for the whole batch; on expiry "
        "in-flight questions finish, the rest are cancelled",
    )
    _add_common_options(explain)

    demo = commands.add_parser(
        "demo", help="run one of the paper's use cases"
    )
    demo.add_argument("use_case", help="e.g. Crime5, Imdb2, Gov7")
    demo.add_argument(
        "--columnar",
        action="store_true",
        help="evaluate the use case on the columnar engine",
    )
    _add_common_options(demo)

    evaluate = commands.add_parser(
        "evaluate", help="run all use cases and print the answers table"
    )
    _add_common_options(evaluate)

    serve = commands.add_parser(
        "serve",
        help="run the why-not HTTP service (see docs/service.md)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port; 0 picks a free port (default: 8080)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="cap on worker threads per batch request (default: 4)",
    )
    serve.add_argument(
        "--shed-after",
        dest="shed_after",
        type=int,
        default=None,
        metavar="N",
        help="admit at most N concurrent work requests; beyond that, "
        "arrivals are shed with HTTP 429 + Retry-After",
    )
    serve.add_argument(
        "--quota",
        default=None,
        metavar="RATE/UNIT[:BURST]",
        help="per-tenant token-bucket quota keyed on the X-Tenant "
        "header, e.g. 10/s, 120/min, or 5/s:20",
    )
    serve.add_argument(
        "--journal-dir",
        dest="journal_dir",
        default=None,
        metavar="DIR",
        help="directory for crash-safe request journaling; batches "
        "interrupted by a crash are re-run on restart",
    )
    serve.add_argument(
        "--storage",
        choices=("auto", "local", "memory", "none"),
        default="auto",
        help="storage backend: auto (local when --journal-dir is "
        "set), local (durable directory), memory (full journaling "
        "code path, nothing survives the process), none (default: "
        "auto)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="N",
        help="storage replica count; N > 1 fans every journal write "
        "and document through a quorum-replicated backend (default: "
        "1, unreplicated)",
    )
    serve.add_argument(
        "--write-quorum",
        dest="write_quorum",
        type=int,
        default=None,
        metavar="W",
        help="replica acks required before a write is acknowledged "
        "(default: a majority of --replicas)",
    )
    serve.add_argument(
        "--read-quorum",
        dest="read_quorum",
        type=int,
        default=None,
        metavar="R",
        help="replica replies required before a read is served "
        "(default: replicas - W + 1, the smallest overlap with every "
        "write set)",
    )
    serve.add_argument(
        "--request-timeout",
        dest="request_timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-connection socket timeout; a stalled client gets "
        "HTTP 408 and its connection closed; 0 disables "
        "(default: 30)",
    )
    serve.add_argument(
        "--quota-file",
        dest="quota_file",
        default=None,
        metavar="FILE",
        help="file holding the quota spec (same RATE/UNIT[:BURST] "
        "grammar; empty file = quotas off), re-read on SIGHUP or "
        "POST /v1/admin/reload",
    )
    serve.add_argument(
        "--drain-timeout",
        dest="drain_timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long a drain waits for in-flight requests before "
        "forcing shutdown (default: 10)",
    )
    _add_common_options(serve)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    if os.environ.get(MANUAL_CLOCK_ENV):
        # deterministic-clock mode: every measured duration is 0.0, so
        # two runs over the same inputs emit identical --json documents
        with use_clock(ManualClock()):
            return _main(argv)
    return _main(argv)


def _main(argv: Sequence[str] | None) -> int:
    args = build_parser().parse_args(argv)
    writer = OutputWriter(json_mode=getattr(args, "json", False))
    writer.set("command", args.command)
    want_tracing = bool(
        getattr(args, "trace", None)
        or getattr(args, "chrome_trace", None)
        or getattr(args, "metrics", False)
    )
    tracer = Tracer() if want_tracing else None
    code = EXIT_ERROR
    try:
        try:
            if tracer is not None:
                with tracing(tracer):
                    code = _dispatch(args, writer)
            else:
                code = _dispatch(args, writer)
        except ReproError as exc:
            writer.error(f"error: {exc}")
            writer.note_error(type(exc).__name__, str(exc))
            code = EXIT_ERROR
        if tracer is not None:
            _export_observability(args, tracer, writer)
    finally:
        writer.finish(code)
    return code


def _dispatch(args, writer: OutputWriter) -> int:
    if args.command == "explain":
        return _run_explain(args, writer)
    if args.command == "demo":
        return _run_demo(args, writer)
    if args.command == "serve":
        return _run_serve(args, writer)
    return _run_evaluate(writer)


def _export_observability(
    args, tracer: Tracer, writer: OutputWriter
) -> None:
    """Write the requested trace/metrics artifacts, post-run."""
    if getattr(args, "trace", None):
        path = write_trace_jsonl(tracer, args.trace)
        writer.line(f"trace written to {path}")
        writer.set("trace_file", str(path))
    if getattr(args, "chrome_trace", None):
        path = write_chrome_trace(tracer, args.chrome_trace)
        writer.line(f"chrome trace written to {path}")
        writer.set("chrome_trace_file", str(path))
    if getattr(args, "metrics", False):
        snapshot = tracer.metrics.snapshot()
        writer.set("metrics", snapshot)
        if not writer.json_mode:
            writer.line()
            writer.line("metrics:")
            for name, data in snapshot.items():
                if data["type"] == "histogram":
                    writer.line(
                        f"  {name}: count={data['count']} "
                        f"sum={data['sum']:.1f} mean={data['mean']:.2f}"
                    )
                else:
                    writer.line(f"  {name}: {data['value']}")
        if writer.json_mode:
            writer.set("trace_summary", tracer.phase_totals_ms())
        elif not getattr(args, "trace", None):
            writer.line()
            writer.line("trace tree:")
            writer.block(render_trace(tracer))


def _config_from(args) -> NedExplainConfig | None:
    """The engine config implied by the flags (None = defaults)."""
    if getattr(args, "columnar", False):
        return NedExplainConfig(use_columnar=True)
    return None


def _budget_from(args) -> Budget | None:
    limits = (
        getattr(args, "timeout", None),
        getattr(args, "max_rows", None),
        getattr(args, "max_comparisons", None),
    )
    if all(limit is None for limit in limits):
        return None
    return Budget(
        deadline_s=limits[0],
        max_rows=limits[1],
        max_comparisons=limits[2],
    )


def _run_explain(args, writer: OutputWriter) -> int:
    database = load_database(args.data)
    canonical = sql_to_canonical(args.sql, database.schema)
    writer.set("sql", args.sql)
    writer.set("canonical", canonical.pretty())
    writer.line("canonical query tree:")
    writer.block(canonical.pretty())
    writer.line()
    if args.show_result:
        result = evaluate_query(
            canonical.root, database.instance(), canonical.aliases
        )
        rows = result.result_values()
        writer.set("query_result", rows)
        writer.line("query result:")
        for row in rows:
            writer.line(f"   {row}")
        writer.line()

    questions = list(args.why_not)
    writer.set("questions", questions)
    writer.set("engine", "columnar" if args.columnar else "row")
    budget = _budget_from(args)
    if args.resume and not args.journal:
        raise ConfigurationError("--resume requires --journal FILE")
    if (
        args.batch
        or len(questions) > 1
        or args.retries is not None
        or args.fallback_baseline
        or args.journal
        or args.workers > 1
        or args.shed_after is not None
        or args.batch_deadline is not None
    ):
        # every resilience feature runs through the outcome-producing
        # batch path, even for a single question
        return _run_explain_batch(
            args, writer, database, canonical, questions, budget
        )

    engine = NedExplain(
        canonical, database=database, config=_config_from(args)
    )
    report = engine.explain(questions[0], budget=budget)
    writer.append("reports", report.to_dict())
    writer.line("NedExplain:")
    writer.block(report.summary())

    if args.repairs:
        writer.line()
        suggestions = suggest_repairs(engine, report)
        if not suggestions:
            writer.line(
                "no selection relaxation can unblock this answer"
            )
        for suggestion in suggestions:
            verified = verify_repair(engine, suggestion)
            writer.append("repairs", str(verified))
            writer.line(f"repair: {verified}")

    if args.baseline:
        writer.line()
        try:
            baseline = WhyNotBaseline(canonical, database=database)
            summary = baseline.explain(questions[0]).summary()
            writer.set("baseline", summary)
            writer.line("Why-Not baseline:")
            writer.block(summary)
        except UnsupportedQueryError as exc:
            writer.set("baseline", f"n.a. ({exc})")
            writer.line(f"Why-Not baseline: n.a. ({exc})")
    return EXIT_DEGRADED if report.partial else EXIT_OK


def _run_explain_batch(
    args, writer: OutputWriter, database, canonical, questions, budget
) -> int:
    """Batched mode: N questions, one shared query evaluation.

    Fault-isolating: every question resolves to a report or a recorded
    failure; one bad question never drops the rest of the batch.  The
    exit code is 3 (not 0) when any question failed or was degraded,
    and 4 when resilience was requested (--retries /
    --fallback-baseline) but a question still got no answer at any
    degradation rung.  Parallel batches add two more: 5 when a
    SIGINT/SIGTERM triggered a graceful drain, 6 when the --shed-after
    quota refused at least one question (precedence 5 > 6 > 4 > 3).
    """
    from .relational import EvaluationCache

    retry = None
    if args.retries is not None:
        retry = RetryPolicy(
            max_attempts=args.retries,
            backoff_ms=args.retry_backoff_ms,
        )
    journal = None
    if args.journal:
        journal = BatchJournal(args.journal, resume=args.resume)
        writer.set("journal", str(journal.path))

    cache = EvaluationCache()
    engine = NedExplain(
        canonical,
        database=database,
        cache=cache,
        config=_config_from(args),
    )

    # Graceful drain: the first SIGINT/SIGTERM cancels the batch's
    # admission (in-flight questions finish and are journaled); a
    # second signal restores the default disposition and re-raises
    # itself, so a stuck batch can still be killed the usual way.
    cancel = CancellationToken()
    drain_signal: list[str] = []

    def _drain_handler(signum, frame) -> None:
        name = signal.Signals(signum).name
        if cancel.cancel(f"drain requested by {name}"):
            drain_signal.append(name)
        else:
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)

    previous_handlers: dict[int, Any] = {}
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(
                signum, _drain_handler
            )
    try:
        outcomes = engine.explain_each(
            questions,
            budget=budget,
            retry=retry,
            fallback_baseline=args.fallback_baseline,
            journal=journal,
            workers=args.workers,
            queue_size=args.queue_size,
            shed_after=args.shed_after,
            batch_deadline_s=args.batch_deadline,
            cancel=cancel,
        )
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        if journal is not None:
            journal.close()
    degraded = False
    unanswered = False
    shed = False
    for question, outcome in zip(questions, outcomes):
        writer.append("outcomes", outcome.to_dict())
        writer.line(f"why-not {question}")
        if outcome.replayed:
            writer.line(
                "  (replayed from journal, "
                f"level={outcome.degradation_level})"
            )
            degraded = degraded or outcome.degradation_level != "full"
            unanswered = unanswered or not outcome.ok
            writer.line()
            continue
        if outcome.report is not None:
            writer.block(outcome.report.summary())
            degraded = degraded or outcome.report.partial
        elif outcome.baseline is not None:
            writer.line(
                "  degraded to Why-Not baseline "
                f"(after {outcome.attempts} attempt(s)):"
            )
            writer.block(outcome.baseline.summary())
            degraded = True
        elif outcome.degradation_level in ("shed", "cancelled"):
            # admission-side outcomes: the question never ran, and
            # that is reported explicitly, never silently dropped
            writer.line(
                f"  {outcome.degradation_level.upper()}: "
                f"{outcome.failure.describe()}"
            )
            degraded = True
            shed = shed or outcome.degradation_level == "shed"
        else:
            writer.line(f"  FAILED: {outcome.failure.describe()}")
            degraded = True
            unanswered = True
        writer.line()
    if journal is not None and journal.replayable_count:
        writer.line(
            f"resumed: {journal.replayable_count} question(s) "
            "replayed from the journal"
        )
    stats = cache.stats
    writer.set(
        "batch",
        {
            "questions": len(questions),
            "evaluations": stats.evaluations,
            "hits": stats.hits,
            "misses": stats.misses,
        },
    )
    writer.line(
        f"batch: {len(questions)} question(s), "
        f"{stats.evaluations} full query evaluation(s), "
        f"{stats.hits} cache hit(s)"
    )
    if args.baseline:
        writer.line()
        try:
            baseline = WhyNotBaseline(
                canonical, database=database, cache=cache
            )
        except UnsupportedQueryError as exc:
            writer.set("baseline", f"n.a. ({exc})")
            writer.line(f"Why-Not baseline: n.a. ({exc})")
        else:
            writer.line("Why-Not baseline:")
            for question in questions:
                writer.line(f"why-not {question}")
                # per-question containment: one failing question must
                # not drop the baseline answers of the remaining ones
                try:
                    summary = baseline.explain(question).summary()
                    writer.append("baseline_answers", summary)
                    writer.block(summary)
                except ReproError as exc:
                    message = f"{type(exc).__name__}: {exc}"
                    writer.append(
                        "baseline_answers", f"FAILED: {message}"
                    )
                    writer.line(f"  FAILED: {message}")
                    degraded = True
    resilient = args.retries is not None or args.fallback_baseline
    if drain_signal:
        writer.set("drained_by", drain_signal[0])
        writer.line(
            f"drained: {drain_signal[0]} received; in-flight "
            "questions finished, the rest were cancelled"
        )
        return EXIT_DRAINED
    if shed:
        return EXIT_SHED
    if resilient and unanswered:
        return EXIT_NO_FALLBACK
    return EXIT_DEGRADED if degraded else EXIT_OK


def _run_demo(args, writer: OutputWriter) -> int:
    from .bench import run_use_case
    from .workloads import USE_CASE_INDEX

    if args.use_case not in USE_CASE_INDEX:
        raise ConfigurationError(
            f"unknown use case {args.use_case!r}; choose from "
            f"{', '.join(USE_CASE_INDEX)}"
        )
    result = run_use_case(args.use_case, config=_config_from(args))
    use_case = result.use_case
    writer.set("use_case", use_case.name)
    writer.set("engine", "columnar" if args.columnar else "row")
    writer.set("query", use_case.query)
    writer.set("predicate", use_case.predicate)
    writer.set("report", result.ned.to_dict())
    writer.set("baseline", result.whynot_answer_text())
    writer.line(
        f"use case {use_case.name}: query {use_case.query}"
    )
    writer.line(f"why-not question: {use_case.predicate}")
    writer.line()
    writer.line("NedExplain:")
    writer.block(result.ned.summary())
    writer.line()
    writer.line(f"Why-Not baseline: {result.whynot_answer_text()}")
    return EXIT_OK


def _run_serve(args, writer: OutputWriter) -> int:
    """Run the why-not HTTP service until a drain signal.

    Exit codes: 0 = clean drain (every admitted request finished,
    pending queue empty), 2 = startup/configuration failure (bad
    --quota, unbindable --port, corrupt persisted registrations),
    5 = forced shutdown (second signal, or the drain timed out).
    """
    from pathlib import Path

    from .service import ServiceConfig, serve
    from .service.quota import QuotaSpec

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        shed_after=args.shed_after,
        quota=(
            QuotaSpec.parse(args.quota)
            if args.quota is not None
            else None
        ),
        journal_dir=(
            Path(args.journal_dir)
            if args.journal_dir is not None
            else None
        ),
        storage=args.storage,
        request_timeout_s=(
            args.request_timeout if args.request_timeout > 0 else None
        ),
        quota_file=(
            Path(args.quota_file)
            if args.quota_file is not None
            else None
        ),
        drain_timeout_s=args.drain_timeout,
        replicas=args.replicas,
        write_quorum=args.write_quorum,
        read_quorum=args.read_quorum,
    )
    writer.set("host", config.host)
    writer.set("port", config.port)
    code = serve(config, stdout=sys.stderr if args.json else None)
    writer.set("serve_exit", code)
    if code == EXIT_DRAINED:
        writer.note_error(
            "ServiceForcedShutdown",
            "the drain was forced (second signal or drain timeout); "
            "in-flight requests may not have finished",
        )
    return code


def _run_evaluate(writer: OutputWriter) -> int:
    from .bench import render_table5, run_all

    results = run_all()
    for result in results:
        writer.append(
            "use_cases",
            {
                "name": result.use_case.name,
                "query": result.use_case.query,
                "predicate": result.use_case.predicate,
                "report": result.ned.to_dict(),
                "baseline": result.whynot_answer_text(),
            },
        )
    writer.block(render_table5(results))
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
