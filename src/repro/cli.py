"""Command-line interface for NedExplain.

Three subcommands:

* ``explain`` -- load a CSV database, run a SQL query, and answer a
  Why-Not question::

      python -m repro.cli explain --data ./mydb \\
          --sql "SELECT A.name FROM A WHERE A.dob > -800" \\
          --why-not "(A.name: Homer)" [--baseline] [--repairs]

* ``demo`` -- run one of the paper's use cases end to end::

      python -m repro.cli demo Crime5

* ``evaluate`` -- regenerate the answers table (Table 5) over all use
  cases::

      python -m repro.cli evaluate

The CLI is a thin layer over the library; everything it prints comes
from the public API.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .baseline import WhyNotBaseline
from .core import NedExplain
from .core.repairs import suggest_repairs, verify_repair
from .errors import ReproError, UnsupportedQueryError
from .relational.csv_io import load_database
from .relational.evaluator import evaluate_query
from .relational.sql import sql_to_canonical
from .robustness import Budget

#: exit codes: 0 = success, 2 = fatal error, 3 = the run completed but
#: degraded -- a batch with per-question failures, or a budget-limited
#: explain that returned a partial report
EXIT_OK = 0
EXIT_ERROR = 2
EXIT_DEGRADED = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nedexplain",
        description="Query-based why-not provenance (EDBT 2014)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    explain = commands.add_parser(
        "explain", help="answer a why-not question over CSV data"
    )
    explain.add_argument(
        "--data", required=True, help="directory of CSV files"
    )
    explain.add_argument("--sql", required=True, help="the SQL query")
    explain.add_argument(
        "--why-not",
        required=True,
        dest="why_not",
        action="append",
        help="predicate, e.g. \"(A.name: Homer)\"; repeatable -- "
        "several questions against one query evaluation",
    )
    explain.add_argument(
        "--batch",
        action="store_true",
        help="answer all --why-not questions through explain_many "
        "(one shared query evaluation) and report cache statistics",
    )
    explain.add_argument(
        "--baseline",
        action="store_true",
        help="also run the Why-Not baseline for comparison",
    )
    explain.add_argument(
        "--repairs",
        action="store_true",
        help="suggest (and verify) selection relaxations",
    )
    explain.add_argument(
        "--show-result",
        action="store_true",
        help="print the query result first",
    )
    explain.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock execution budget; on exhaustion a partial "
        "(degraded) answer is printed and the exit code is 3",
    )
    explain.add_argument(
        "--max-rows",
        type=int,
        default=None,
        dest="max_rows",
        metavar="N",
        help="cap on intermediate rows materialized per question",
    )
    explain.add_argument(
        "--max-comparisons",
        type=int,
        default=None,
        dest="max_comparisons",
        metavar="N",
        help="cap on tuple comparisons performed per question",
    )

    demo = commands.add_parser(
        "demo", help="run one of the paper's use cases"
    )
    demo.add_argument("use_case", help="e.g. Crime5, Imdb2, Gov7")

    commands.add_parser(
        "evaluate", help="run all use cases and print the answers table"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "explain":
            return _run_explain(args)
        if args.command == "demo":
            return _run_demo(args)
        return _run_evaluate()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


def _budget_from(args) -> Budget | None:
    limits = (
        getattr(args, "timeout", None),
        getattr(args, "max_rows", None),
        getattr(args, "max_comparisons", None),
    )
    if all(limit is None for limit in limits):
        return None
    return Budget(
        deadline_s=limits[0],
        max_rows=limits[1],
        max_comparisons=limits[2],
    )


def _run_explain(args) -> int:
    database = load_database(args.data)
    canonical = sql_to_canonical(args.sql, database.schema)
    print("canonical query tree:")
    print(canonical.pretty())
    print()
    if args.show_result:
        result = evaluate_query(
            canonical.root, database.instance(), canonical.aliases
        )
        print("query result:")
        for row in result.result_values():
            print("  ", row)
        print()

    questions = list(args.why_not)
    budget = _budget_from(args)
    if args.batch or len(questions) > 1:
        return _run_explain_batch(
            args, database, canonical, questions, budget
        )

    engine = NedExplain(canonical, database=database)
    report = engine.explain(questions[0], budget=budget)
    print("NedExplain:")
    print(report.summary())

    if args.repairs:
        print()
        suggestions = suggest_repairs(engine, report)
        if not suggestions:
            print("no selection relaxation can unblock this answer")
        for suggestion in suggestions:
            print("repair:", verify_repair(engine, suggestion))

    if args.baseline:
        print()
        try:
            baseline = WhyNotBaseline(canonical, database=database)
            print("Why-Not baseline:")
            print(baseline.explain(questions[0]).summary())
        except UnsupportedQueryError as exc:
            print(f"Why-Not baseline: n.a. ({exc})")
    return EXIT_DEGRADED if report.partial else EXIT_OK


def _run_explain_batch(args, database, canonical, questions, budget) -> int:
    """Batched mode: N questions, one shared query evaluation.

    Fault-isolating: every question resolves to a report or a printed
    failure; one bad question never drops the rest of the batch.  The
    exit code is 3 (not 0) when any question failed or was degraded.
    """
    from .relational import EvaluationCache

    cache = EvaluationCache()
    engine = NedExplain(canonical, database=database, cache=cache)
    outcomes = engine.explain_each(questions, budget=budget)
    degraded = False
    for question, outcome in zip(questions, outcomes):
        print(f"why-not {question}")
        if outcome.ok:
            print(outcome.report.summary())
            degraded = degraded or outcome.report.partial
        else:
            print(f"  FAILED: {outcome.failure.describe()}")
            degraded = True
        print()
    stats = cache.stats
    print(
        f"batch: {len(questions)} question(s), "
        f"{stats.evaluations} full query evaluation(s), "
        f"{stats.hits} cache hit(s)"
    )
    if args.baseline:
        print()
        try:
            baseline = WhyNotBaseline(
                canonical, database=database, cache=cache
            )
        except UnsupportedQueryError as exc:
            print(f"Why-Not baseline: n.a. ({exc})")
        else:
            print("Why-Not baseline:")
            for question in questions:
                print(f"why-not {question}")
                # per-question containment: one failing question must
                # not drop the baseline answers of the remaining ones
                try:
                    print(baseline.explain(question).summary())
                except ReproError as exc:
                    print(f"  FAILED: {type(exc).__name__}: {exc}")
                    degraded = True
    return EXIT_DEGRADED if degraded else EXIT_OK


def _run_demo(args) -> int:
    from .bench import run_use_case
    from .workloads import USE_CASE_INDEX

    if args.use_case not in USE_CASE_INDEX:
        print(
            f"unknown use case {args.use_case!r}; choose from "
            f"{', '.join(USE_CASE_INDEX)}",
            file=sys.stderr,
        )
        return 2
    result = run_use_case(args.use_case)
    use_case = result.use_case
    print(f"use case {use_case.name}: query {use_case.query}")
    print(f"why-not question: {use_case.predicate}")
    print()
    print("NedExplain:")
    print(result.ned.summary())
    print()
    print("Why-Not baseline:", result.whynot_answer_text())
    return 0


def _run_evaluate() -> int:
    from .bench import render_table5, run_all

    print(render_table5(run_all()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
