"""The primary global structure ``TabQ`` (Sec. 3.1, step 2c).

``TabQ`` stores, per subquery ``m`` of the canonical tree:

* ``Input``  -- the input tuple set (outputs of the direct children;
  the stored relation for leaves);
* ``Output`` -- the output tuple set, filled during the bottom-up pass;
* ``Compatibles`` -- compatible tuples in the input: the direct
  compatible tuples at leaves, their valid successors upstream;
* ``Level``  -- the depth of ``m`` (root = 0);
* ``Parent`` -- the parent subquery;
* ``Op``     -- the root operator of ``m`` (``"relation schema"`` for
  leaves).

Entries are ordered by decreasing level, left-to-right within a level
-- the processing order of Alg. 1.  The secondary global structures
(EmptyOutputMan, Non-PickyMan, PickyMan) live here too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import EvaluationError
from ..relational.algebra import Query, RelationLeaf, tabq_order
from ..relational.instance import DatabaseInstance
from ..relational.tuples import Tuple
from .compatibility import CompatibilitySets


@dataclass
class TabEntry:
    """One row of ``TabQ`` (cf. Table 1 of the paper)."""

    node: Query
    level: int
    parent: "TabEntry | None" = None
    input: list[Tuple] = field(default_factory=list)
    output: list[Tuple] | None = None
    compatibles: list[Tuple] = field(default_factory=list)
    #: compatible inputs without valid successor (filled by Alg. 3)
    blocked: tuple[Tuple, ...] = ()

    @property
    def op(self) -> str:
        return self.node.op

    @property
    def label(self) -> str:
        return self.node.name or self.node.describe()

    @property
    def is_leaf(self) -> bool:
        return isinstance(self.node, RelationLeaf)

    def add_compatibles(self, tuples: Iterator[Tuple] | list[Tuple]) -> None:
        seen = set(self.compatibles)
        for t in tuples:
            if t not in seen:
                seen.add(t)
                self.compatibles.append(t)

    def __repr__(self) -> str:
        size = "?" if self.output is None else len(self.output)
        return (
            f"TabEntry({self.label}, level={self.level}, "
            f"in={len(self.input)}, out={size}, "
            f"compat={len(self.compatibles)})"
        )


class TabQ:
    """The ordered table of subqueries plus the secondary structures."""

    def __init__(
        self,
        root: Query,
        instance: DatabaseInstance,
        compat: CompatibilitySets,
    ):
        self.root = root
        self._entries: list[TabEntry] = []
        self._by_node: dict[int, TabEntry] = {}

        ordered = tabq_order(root)
        for node in ordered:
            entry = TabEntry(node=node, level=root.depth_of(node))
            self._entries.append(entry)
            self._by_node[id(node)] = entry
        for entry in self._entries:
            parent = root.parent_of(entry.node)
            if parent is not None:
                entry.parent = self._by_node[id(parent)]

        # Initialization (Sec. 3.1, 2c): leaves get their stored
        # relation as input and Dir|Ri as compatibles.
        for entry in self._entries:
            if entry.is_leaf:
                leaf = entry.node
                assert isinstance(leaf, RelationLeaf)
                entry.input = list(instance.relation(leaf.alias))
                entry.add_compatibles(
                    list(compat.direct.get(leaf.alias, ()))
                )

        # Secondary global structures.
        self.empty_output_man: list[TabEntry] = []
        self.non_picky_man: list[TabEntry] = []
        self.picky_man: list[tuple[TabEntry, tuple[Tuple, ...]]] = []

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index: int) -> TabEntry:
        return self._entries[index]

    def __iter__(self) -> Iterator[TabEntry]:
        return iter(self._entries)

    def entry(self, node: Query) -> TabEntry:
        try:
            return self._by_node[id(node)]
        except KeyError:
            raise EvaluationError(
                f"node {node!r} is not part of this TabQ"
            ) from None

    def position(self, entry: TabEntry) -> int:
        for index, candidate in enumerate(self._entries):
            if candidate is entry:
                return index
        raise EvaluationError("entry is not part of this TabQ")

    def mark_non_picky(self, entry: TabEntry) -> None:
        if entry not in self.non_picky_man:
            self.non_picky_man.append(entry)

    def mark_picky(
        self, entry: TabEntry, blocked: tuple[Tuple, ...]
    ) -> None:
        entry.blocked = blocked
        self.picky_man.append((entry, blocked))

    def mark_empty(self, entry: TabEntry) -> None:
        if entry not in self.empty_output_man:
            self.empty_output_man.append(entry)

    # ------------------------------------------------------------------
    # Display (the paper's Tables 1 / 2)
    # ------------------------------------------------------------------
    def dump(self) -> str:
        """Render the table like Table 2 of the paper."""
        lines = [
            f"{'m':<8}{'lvl':<5}{'op':<16}{'in':<6}{'out':<6}"
            f"{'compat':<8}{'blocked'}"
        ]
        for entry in self._entries:
            out_size = "-" if entry.output is None else str(len(entry.output))
            lines.append(
                f"{entry.label:<8}{entry.level:<5}{entry.op:<16}"
                f"{len(entry.input):<6}{out_size:<6}"
                f"{len(entry.compatibles):<8}{len(entry.blocked)}"
            )
        return "\n".join(lines)
