"""Modification-based explanations derived from why-not answers.

The paper's conclusion notes that its query-based explanations "could
further be used to obtain modification-based explanations" (in the
spirit of ConQueR [20] and top-k why-not [10]).  This module implements
that step for picky *selections*: given a NedExplain run, it proposes
the smallest relaxation of each blamed selection condition that lets
the blocked compatible tuples through, and can verify the proposal by
re-running the query with the patched condition.

For the introductory example, the picky ``sigma_{A.dob > 800BC}`` is
relaxed to ``A.dob >= 800BC`` -- exactly the modification Sec. 1
mentions.

Only selections are repaired: the paper argues selections are what a
developer inspects and changes first (the first canonicalization
rationale, Sec. 3.1-2b); joins usually encode intent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WhyNotQuestionError
from ..relational.algebra import (
    Aggregate,
    Difference,
    Join,
    Project,
    Query,
    RelationLeaf,
    Select,
    Union,
)
from ..relational.conditions import (
    And,
    Attr,
    Comparison,
    Condition,
    Const,
    Or,
    TrueCondition,
    compare_values,
)
from ..relational.evaluator import evaluate
from ..relational.tuples import Tuple, Value
from .canonical import CanonicalQuery, canonical_from_tree
from .nedexplain import NedExplain
from .answers import NedExplainReport


@dataclass(frozen=True)
class RepairSuggestion:
    """One proposed selection relaxation."""

    #: the picky selection node
    subquery: Query
    original: Condition
    suggested: Condition
    #: compatible tuples that the relaxation lets through
    unblocks: tuple[str, ...]
    #: filled by :func:`verify_repair`
    verified: bool | None = None

    @property
    def subquery_label(self) -> str:
        return self.subquery.name or self.subquery.describe()

    def __repr__(self) -> str:
        status = ""
        if self.verified is not None:
            status = " [verified]" if self.verified else " [NOT verified]"
        return (
            f"at {self.subquery_label}: replace ({self.original!r}) "
            f"by ({self.suggested!r}), unblocking "
            f"{len(self.unblocks)} tuple(s){status}"
        )


def suggest_repairs(
    engine: NedExplain, report: NedExplainReport
) -> list[RepairSuggestion]:
    """Propose selection relaxations for the blocked tuples of a run.

    Must be called right after ``engine.explain(...)`` produced
    *report* (the engine's TabQ snapshots carry the blocked tuples and
    their attribute values at each picky selection's input).
    """
    if not engine.last_tabqs:
        raise WhyNotQuestionError(
            "suggest_repairs needs the engine's last explain() state"
        )
    suggestions: list[RepairSuggestion] = []
    seen_nodes: set[int] = set()
    for answer, tabq in zip(
        [a for a in report.answers if not a.no_compatible_data],
        engine.last_tabqs,
    ):
        for node in answer.condensed:
            if not isinstance(node, Select) or id(node) in seen_nodes:
                continue
            seen_nodes.add(id(node))
            entry = tabq.entry(node)
            blocked = list(entry.blocked)
            if not blocked:
                continue
            relaxed = relax_condition(node.condition, blocked)
            if relaxed is None or relaxed == node.condition:
                continue
            suggestions.append(
                RepairSuggestion(
                    subquery=node,
                    original=node.condition,
                    suggested=relaxed,
                    unblocks=tuple(
                        t.how_provenance() for t in blocked
                    ),
                )
            )
    return suggestions


# ---------------------------------------------------------------------------
# Condition relaxation
# ---------------------------------------------------------------------------
def relax_condition(
    condition: Condition, blocked: list[Tuple]
) -> Condition | None:
    """Minimal relaxation letting every blocked tuple pass.

    Works conjunct by conjunct: conjuncts the blocked tuples already
    satisfy stay untouched; the failing ones are widened.  Returns
    ``None`` when some conjunct cannot be relaxed (attribute-attribute
    comparisons, non-orderable values).
    """
    relaxed_parts: list[Condition] = []
    for conjunct in condition.conjuncts():
        if all(conjunct.evaluate(t) for t in blocked):
            relaxed_parts.append(conjunct)
            continue
        widened = _relax_comparison(conjunct, blocked)
        if widened is None:
            return None
        relaxed_parts.append(widened)
    return And.of(*relaxed_parts)


def _relax_comparison(
    conjunct: Condition, blocked: list[Tuple]
) -> Condition | None:
    if not isinstance(conjunct, Comparison):
        return None
    if not isinstance(conjunct.left, Attr) or not isinstance(
        conjunct.right, Const
    ):
        return None
    attribute = conjunct.left.name
    bound = conjunct.right.value
    values = [t[attribute] for t in blocked if attribute in t]
    if any(v is None for v in values):
        return None

    op = conjunct.op
    if op in (">", ">="):
        lowest = min(values)
        if compare_values(lowest, "=", bound) and op == ">":
            # the paper's introductory fix: > 800BC  ->  >= 800BC
            return Comparison(Attr(attribute), ">=", Const(bound))
        return Comparison(Attr(attribute), ">=", Const(lowest))
    if op in ("<", "<="):
        highest = max(values)
        if compare_values(highest, "=", bound) and op == "<":
            return Comparison(Attr(attribute), "<=", Const(bound))
        return Comparison(Attr(attribute), "<=", Const(highest))
    if op == "=":
        alternatives = sorted({v for v in values}, key=repr)
        return Or.of(
            conjunct,
            *(
                Comparison(Attr(attribute), "=", Const(v))
                for v in alternatives
            ),
        )
    if op == "!=":
        # the only way a != blocks is value == bound: drop the conjunct
        return TrueCondition()
    return None


# ---------------------------------------------------------------------------
# Verification
# ---------------------------------------------------------------------------
def apply_repair(
    canonical: CanonicalQuery, suggestion: RepairSuggestion
) -> CanonicalQuery:
    """Rebuild the canonical query with the suggested condition."""
    new_root = _rebuild(canonical.root, suggestion)
    return canonical_from_tree(new_root, canonical.aliases)


def _rebuild(node: Query, suggestion: RepairSuggestion) -> Query:
    if node is suggestion.subquery:
        assert isinstance(node, Select)
        return Select(_rebuild(node.child, suggestion),
                      suggestion.suggested)
    if isinstance(node, RelationLeaf):
        return RelationLeaf(node.schema)
    if isinstance(node, Select):
        return Select(_rebuild(node.child, suggestion), node.condition)
    if isinstance(node, Project):
        return Project(_rebuild(node.child, suggestion), node.attributes)
    if isinstance(node, Aggregate):
        return Aggregate(
            _rebuild(node.child, suggestion), node.group_by, node.calls
        )
    if isinstance(node, Join):
        return Join(
            _rebuild(node.left, suggestion),
            _rebuild(node.right, suggestion),
            node.renaming,
        )
    if isinstance(node, Union):
        return Union(
            _rebuild(node.left, suggestion),
            _rebuild(node.right, suggestion),
            node.renaming,
        )
    if isinstance(node, Difference):
        return Difference(
            _rebuild(node.left, suggestion),
            _rebuild(node.right, suggestion),
            node.renaming,
        )
    raise WhyNotQuestionError(f"cannot rebuild node {node!r}")


def verify_repair(
    engine: NedExplain,
    suggestion: RepairSuggestion,
) -> RepairSuggestion:
    """Check that the repair lets the blocked data reach the result.

    Re-evaluates the patched query and verifies that every previously
    blocked derivation now has a successor in the final result.
    Returns a copy of the suggestion with ``verified`` filled in.
    """
    patched = apply_repair(engine.canonical, suggestion)
    result = evaluate(patched.root, engine.instance)
    surviving_lineages = [t.lineage for t in result.result]
    blocked_lineages = _blocked_lineages(engine, suggestion)
    ok = all(
        any(blocked <= alive for alive in surviving_lineages)
        for blocked in blocked_lineages
    )
    return RepairSuggestion(
        subquery=suggestion.subquery,
        original=suggestion.original,
        suggested=suggestion.suggested,
        unblocks=suggestion.unblocks,
        verified=ok,
    )


def _blocked_lineages(
    engine: NedExplain, suggestion: RepairSuggestion
) -> list[frozenset[str]]:
    lineages: list[frozenset[str]] = []
    for tabq in engine.last_tabqs:
        try:
            entry = tabq.entry(suggestion.subquery)
        except Exception:  # noqa: BLE001 - node absent from this tc's TabQ
            continue
        for t in entry.blocked:
            lineages.append(t.lineage)
    return lineages
