"""Why-Not questions: v-tuples, conditional tuples, predicates.

Implements Defs. 2.4-2.6 of the paper.  A Why-Not question w.r.t. a
query ``Q`` is a predicate ``P`` over ``Q``'s target type: a disjunction
of *conditional tuples* (c-tuples).  A c-tuple pairs a v-tuple --
attribute/value-or-variable pairs -- with a conjunctive condition over
its variables (``x cop a`` / ``x cop y``, Def. 2.5).

Example (the running example's question, Ex. 2.1)::

    P = (A.name: "Homer", ap: $x1) with x1 > 25
      | (A.name: $x2)             with x2 != "Homer" and x2 != "Sophocles"

built as::

    tc1 = CTuple({"A.name": "Homer", "ap": Var("x1")},
                 var_cmp("x1", ">", 25))
    tc2 = CTuple({"A.name": Var("x2")},
                 And.of(var_cmp("x2", "!=", "Homer"),
                        var_cmp("x2", "!=", "Sophocles")))
    P = Predicate.of(tc1, tc2)
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..errors import WhyNotQuestionError
from ..relational.algebra import Query
from ..relational.conditions import (
    And,
    Comparison,
    Condition,
    Const,
    TrueCondition,
    Var,
    var_cmp,
)
from ..relational.tuples import Value


class CTuple:
    """A conditional tuple ``(t_v, cond)`` (Def. 2.5).

    Parameters
    ----------
    entries:
        Mapping from attribute names (over the query's target type, or
        unrenamed qualified/aggregated attributes) to either a constant
        value or a :class:`~repro.relational.conditions.Var`.
    condition:
        Conjunction of comparisons over the v-tuple's variables.
        Defaults to ``true``.
    """

    def __init__(
        self,
        entries: Mapping[str, Value | Var],
        condition: Condition | None = None,
    ):
        if not entries:
            raise WhyNotQuestionError("a c-tuple must have attributes")
        self._entries: dict[str, Value | Var] = dict(entries)
        self.condition: Condition = condition or TrueCondition()
        if self.condition.attributes():
            raise WhyNotQuestionError(
                "c-tuple conditions range over variables, not attributes: "
                f"{sorted(self.condition.attributes())}"
            )
        unknown = self.condition.variables() - self.variables()
        if unknown:
            raise WhyNotQuestionError(
                f"condition references variables {sorted(unknown)} absent "
                "from the v-tuple"
            )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def type(self) -> frozenset[str]:
        """The type of the c-tuple: its attribute set."""
        return frozenset(self._entries)

    def entries(self) -> Iterator[tuple[str, Value | Var]]:
        return iter(self._entries.items())

    def entry(self, attribute: str) -> Value | Var:
        try:
            return self._entries[attribute]
        except KeyError:
            raise WhyNotQuestionError(
                f"c-tuple has no attribute {attribute!r}"
            ) from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._entries

    def constants(self) -> dict[str, Value]:
        """Attribute -> constant for the constant-valued entries."""
        return {
            attr: entry
            for attr, entry in self._entries.items()
            if not isinstance(entry, Var)
        }

    def variable_entries(self) -> dict[str, str]:
        """Attribute -> variable name for the variable entries."""
        return {
            attr: entry.name
            for attr, entry in self._entries.items()
            if isinstance(entry, Var)
        }

    def variables(self) -> frozenset[str]:
        """All variable names of the v-tuple (the set ``X``)."""
        return frozenset(self.variable_entries().values())

    # ------------------------------------------------------------------
    # Derivation (used by unrenaming)
    # ------------------------------------------------------------------
    def rename_attributes(self, mapping: Mapping[str, str]) -> "CTuple":
        """Return a copy with attribute names rewritten via *mapping*."""
        renamed: dict[str, Value | Var] = {}
        for attr, entry in self._entries.items():
            new_name = mapping.get(attr, attr)
            if new_name in renamed and renamed[new_name] != entry:
                raise WhyNotQuestionError(
                    f"renaming collapses attribute {new_name!r} onto "
                    "conflicting entries"
                )
            renamed[new_name] = entry
        return CTuple(renamed, self.condition)

    def merged_with(self, other: "CTuple") -> "CTuple | None":
        """Join two c-tuples (the ``|><|`` of Def. 2.7).

        Entries are combined; conditions are conjoined (duplicate
        conjuncts dropped).  Returns ``None`` when the two tuples give
        the same attribute conflicting entries (unsatisfiable branch).
        """
        combined: dict[str, Value | Var] = dict(self._entries)
        for attr, entry in other._entries.items():
            if attr in combined and combined[attr] != entry:
                return None
            combined[attr] = entry
        conjuncts = list(
            dict.fromkeys(
                self.condition.conjuncts() + other.condition.conjuncts()
            )
        )
        return CTuple(combined, And.of(*conjuncts))

    def restricted_to(self, attributes: Iterable[str]) -> "CTuple | None":
        """Restrict to *attributes*; ``None`` when nothing remains.

        The condition keeps only the conjuncts whose variables are still
        mentioned by the restricted v-tuple.
        """
        kept = {
            attr: entry
            for attr, entry in self._entries.items()
            if attr in set(attributes)
        }
        if not kept:
            return None
        alive_vars = {
            entry.name for entry in kept.values() if isinstance(entry, Var)
        }
        conjuncts = [
            conj
            for conj in self.condition.conjuncts()
            if conj.variables() <= alive_vars
        ]
        return CTuple(kept, And.of(*conjuncts))

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CTuple):
            return NotImplemented
        return (
            self._entries == other._entries
            and self.condition == other.condition
        )

    def __hash__(self) -> int:
        return hash(
            (frozenset(self._entries.items()), repr(self.condition))
        )

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{attr}:{entry!r}" for attr, entry in sorted(self._entries.items())
        )
        if isinstance(self.condition, TrueCondition):
            return f"({pairs})"
        return f"(({pairs}), {self.condition!r})"


class Predicate:
    """A Why-Not question: a disjunction of c-tuples (Def. 2.6)."""

    def __init__(self, ctuples: Iterable[CTuple]):
        self.ctuples: tuple[CTuple, ...] = tuple(ctuples)
        if not self.ctuples:
            raise WhyNotQuestionError(
                "a why-not predicate needs at least one c-tuple"
            )

    @classmethod
    def of(cls, *ctuples: CTuple) -> "Predicate":
        return cls(ctuples)

    def __iter__(self) -> Iterator[CTuple]:
        return iter(self.ctuples)

    def __len__(self) -> int:
        return len(self.ctuples)

    def validate_against(self, query: Query) -> None:
        """Check ``type(tc) <= T_Q`` for every c-tuple (Def. 2.6)."""
        target = query.target_type
        for tc in self.ctuples:
            extra = tc.type - target
            if extra:
                raise WhyNotQuestionError(
                    f"c-tuple {tc!r} references attributes "
                    f"{sorted(extra)} outside the query target type "
                    f"{sorted(target)}"
                )

    def __repr__(self) -> str:
        return " | ".join(repr(tc) for tc in self.ctuples)


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------
def why_not(**entries: Value) -> Predicate:
    """Build a single-c-tuple predicate from constant attribute values.

    Attribute names use ``__`` for the qualification dot, e.g.
    ``why_not(P__name="Hank", C__type="Car theft")`` builds the
    predicate ``(P.name:Hank, C.type:Car theft)`` of use case Crime1.
    """
    mapped = {name.replace("__", "."): value for name, value in entries.items()}
    return Predicate.of(CTuple(mapped))


def parse_predicate(text: str) -> Predicate:
    """Parse the paper's textual notation for Why-Not predicates.

    Grammar (whitespace-insensitive)::

        predicate := ctuple ("|" ctuple)*
        ctuple    := "(" pairs ")" | "((" pairs ")," conds ")"
        pairs     := attr ":" value ("," attr ":" value)*
        value     := quoted string | number | $var | bareword
        conds     := cond ("and" cond)*
        cond      := $var op (value)          -- op in =,!=,<,>,<=,>=

    Examples::

        parse_predicate("(P.name: Hank, C.type: 'Car theft')")
        parse_predicate("((P.name: Betsy, ct: $x), $x > 8)")
        parse_predicate("(name: Avatar) | (name: 'Up')")
    """
    chunks = _split_top_level(text, "|")
    return Predicate.of(*(_parse_ctuple(chunk) for chunk in chunks))


def _split_top_level(text: str, separator: str) -> list[str]:
    chunks: list[str] = []
    depth = 0
    current: list[str] = []
    in_quote: str | None = None
    for ch in text:
        if in_quote:
            current.append(ch)
            if ch == in_quote:
                in_quote = None
            continue
        if ch in "'\"":
            in_quote = ch
            current.append(ch)
        elif ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            current.append(ch)
        elif ch == separator and depth == 0:
            chunks.append("".join(current))
            current = []
        else:
            current.append(ch)
    chunks.append("".join(current))
    return [c.strip() for c in chunks if c.strip()]


def _parse_value(token: str) -> Value | Var:
    token = token.strip()
    if not token:
        raise WhyNotQuestionError("empty value in predicate text")
    if token.startswith("$"):
        return Var(token[1:])
    if token[0] in "'\"" and token[-1] == token[0] and len(token) >= 2:
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token  # bareword string


def _parse_ctuple(text: str) -> CTuple:
    text = text.strip()
    if not (text.startswith("(") and text.endswith(")")):
        raise WhyNotQuestionError(
            f"c-tuple must be parenthesised: {text!r}"
        )
    inner = text[1:-1].strip()
    condition: Condition = TrueCondition()
    if inner.startswith("("):
        # form: "(pairs), conds"
        close = _matching_paren(inner)
        pairs_text = inner[1:close]
        rest = inner[close + 1 :].strip()
        if rest.startswith(","):
            rest = rest[1:].strip()
        if rest:
            condition = _parse_conditions(rest)
    else:
        pairs_text = inner
    entries: dict[str, Value | Var] = {}
    for pair in _split_top_level(pairs_text, ","):
        attr, sep, value = pair.partition(":")
        if not sep:
            raise WhyNotQuestionError(
                f"expected 'attr: value' pair, got {pair!r}"
            )
        entries[attr.strip()] = _parse_value(value)
    return CTuple(entries, condition)


def _matching_paren(text: str) -> int:
    depth = 0
    for position, ch in enumerate(text):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return position
    raise WhyNotQuestionError(f"unbalanced parentheses in {text!r}")


def _parse_conditions(text: str) -> Condition:
    conjuncts: list[Condition] = []
    for chunk in _split_conjuncts(text):
        conjuncts.append(_parse_comparison(chunk))
    return And.of(*conjuncts)


def _split_conjuncts(text: str) -> list[str]:
    # split on the keyword "and" outside quotes
    parts: list[str] = []
    current: list[str] = []
    tokens = text.split()
    for token in tokens:
        if token.lower() == "and":
            parts.append(" ".join(current))
            current = []
        else:
            current.append(token)
    parts.append(" ".join(current))
    return [p for p in parts if p]


def _parse_comparison(text: str) -> Comparison:
    for op in ("!=", "<=", ">=", "=", "<", ">"):
        left, sep, right = text.partition(op)
        if sep:
            lhs = _parse_value(left)
            rhs = _parse_value(right)
            if not isinstance(lhs, Var):
                raise WhyNotQuestionError(
                    f"condition {text!r} must start with a variable"
                )
            if isinstance(rhs, Var):
                return Comparison(lhs, op, rhs)
            return Comparison(lhs, op, Const(rhs))
    raise WhyNotQuestionError(f"no comparison operator in {text!r}")


def ctuple_with_condition(
    entries: Mapping[str, Value | Var], **bounds: tuple[str, Value]
) -> CTuple:
    """Build a c-tuple with simple per-variable bounds.

    ``ctuple_with_condition({"ap": Var("x")}, x=(">", 25))`` is the
    c-tuple ``((ap: x), x > 25)``.
    """
    conds = [var_cmp(name, op, value) for name, (op, value) in bounds.items()]
    return CTuple(entries, And.of(*conds))
