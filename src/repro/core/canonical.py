"""Canonical query trees (Sec. 3.1, step 2b of the paper).

NedExplain fixes one canonical tree per query, chosen by two rationales:

1. *Favour selections over joins as answers*: selections are pushed
   down as far as the visibility frontier allows, so a too-strict
   filter is blamed before the join above it.
2. *Maximise the subqueries for which the aggregation condition can be
   checked*: joins are ordered so that the **breakpoint subquery** ``V``
   -- the smallest join subtree exposing all grouped and aggregated
   attributes without cross products -- sits as low as possible; all
   selections of an aggregate query are placed above ``V`` (exactly as
   the running example places ``sigma_{A.dob>800BC}`` above ``Q2``).

The **visibility frontier** is ``{V}`` plus every leaf outside ``V``
(for queries without aggregation it degenerates to all leaves).

Queries enter canonicalization as declarative :class:`SPJASpec` /
:class:`UnionSpec` objects (what a SQL parse produces); the output is a
:class:`CanonicalQuery` bundling the tree, the breakpoint, the frontier
and the ``m``-labels of its nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..errors import QueryError
from ..relational.aggregates import AggregateCall
from ..relational.algebra import (
    Aggregate,
    Join,
    Project,
    Query,
    RelationLeaf,
    Select,
    Union,
    assign_labels,
)
from ..relational.conditions import Condition
from ..relational.renaming import Renaming
from ..relational.schema import DatabaseSchema
from ..relational.tuples import alias_of


@dataclass(frozen=True)
class JoinPair:
    """One equi-join pair ``left = right -> new`` (qualified attrs)."""

    left: str
    right: str
    new: str | None = None

    def new_name(self) -> str:
        from ..relational.tuples import unqualified_name

        return self.new if self.new is not None else unqualified_name(self.left)


@dataclass
class SPJASpec:
    """Declarative form of one SPJA block (one SQL SELECT).

    Parameters
    ----------
    aliases:
        Ordered mapping alias -> stored table name (``eta_Q``).
    joins:
        Equi-join pairs in the order they were written.
    selections:
        Selection conditions (attributes leaf-qualified, or named after
        a join's introduced attribute).
    projection:
        Output attributes, or ``None`` for "everything".
    group_by / aggregates:
        Aggregation block ``alpha_{G,F}``; both empty means no
        aggregation.
    """

    aliases: dict[str, str]
    joins: list[JoinPair] = field(default_factory=list)
    selections: list[Condition] = field(default_factory=list)
    projection: tuple[str, ...] | None = None
    group_by: tuple[str, ...] = ()
    aggregates: tuple[AggregateCall, ...] = ()

    @property
    def has_aggregation(self) -> bool:
        return bool(self.group_by or self.aggregates)


@dataclass
class UnionSpec:
    """A union of two canonicalizable blocks (Def. 2.2, item 4)."""

    left: "SPJASpec | UnionSpec"
    right: "SPJASpec | UnionSpec"
    renaming: Renaming = field(default_factory=Renaming)


QuerySpec = SPJASpec | UnionSpec


@dataclass
class CanonicalQuery:
    """A canonicalized query, ready for NedExplain.

    Attributes
    ----------
    root:
        The canonical query tree ``T``.
    breakpoints:
        The breakpoint subqueries ``V`` (one per SPJA block with
        aggregation; empty for pure SPJ queries, where every leaf is a
        breakpoint).
    frontier:
        The visibility frontier: breakpoints plus leaves outside them.
    labels:
        label -> node for all nodes (leaves keep their alias; internal
        nodes are ``m0..mk`` in TabQ order).
    aliases:
        alias -> stored table mapping over all leaves.
    """

    root: Query
    breakpoints: tuple[Query, ...]
    frontier: tuple[Query, ...]
    labels: dict[str, Query]
    aliases: dict[str, str]

    @property
    def breakpoint(self) -> Query | None:
        """The single breakpoint of a non-union aggregate query."""
        if len(self.breakpoints) == 1:
            return self.breakpoints[0]
        return None

    def node(self, label: str) -> Query:
        try:
            return self.labels[label]
        except KeyError:
            raise QueryError(f"no node labelled {label!r}") from None

    def label_of(self, node: Query) -> str:
        for label, candidate in self.labels.items():
            if candidate is node:
                return label
        raise QueryError("node does not belong to this canonical query")

    def aggregate_nodes(self) -> tuple[Aggregate, ...]:
        return tuple(
            n for n in self.root.postorder() if isinstance(n, Aggregate)
        )

    def pretty(self) -> str:
        """Tree rendering with breakpoints marked by a bullet."""
        marks = {id(v) for v in self.breakpoints}

        def walk(node: Query, indent: int) -> list[str]:
            pad = "  " * indent
            bullet = "* " if id(node) in marks else ""
            tag = f"{node.name}: " if node.name else ""
            lines = [f"{pad}{bullet}{tag}{node.describe()}"]
            for child in node.children:
                lines.extend(walk(child, indent + 1))
            return lines

        return "\n".join(walk(self.root, 0))


# ---------------------------------------------------------------------------
# Canonicalization
# ---------------------------------------------------------------------------
def canonicalize(
    spec: QuerySpec, schema: DatabaseSchema, label_prefix: str = "m"
) -> CanonicalQuery:
    """Build the canonical tree for *spec* over *schema*."""
    root, breakpoints = _build(spec, schema)
    labels = assign_labels(root, prefix=label_prefix)
    frontier = _frontier(root, breakpoints)
    aliases = _collect_aliases(spec)
    return CanonicalQuery(
        root=root,
        breakpoints=tuple(breakpoints),
        frontier=frontier,
        labels=labels,
        aliases=aliases,
    )


def _collect_aliases(spec: QuerySpec) -> dict[str, str]:
    if isinstance(spec, SPJASpec):
        return dict(spec.aliases)
    out = _collect_aliases(spec.left)
    out.update(_collect_aliases(spec.right))
    return out


def _build(
    spec: QuerySpec, schema: DatabaseSchema
) -> tuple[Query, list[Query]]:
    if isinstance(spec, UnionSpec):
        left, left_bps = _build(spec.left, schema)
        right, right_bps = _build(spec.right, schema)
        return Union(left, right, spec.renaming), left_bps + right_bps
    return _build_spja(spec, schema)


class _TreeState:
    """Tracks the partially built join tree and attribute renamings."""

    def __init__(self) -> None:
        #: leaf-qualified attribute -> its current (possibly renamed)
        #: name at the top of the tree built so far
        self.current_name: dict[str, str] = {}

    def register_leaf(self, leaf: RelationLeaf) -> None:
        for attr in leaf.target_type:
            self.current_name[attr] = attr

    def apply_renaming(self, renaming: Renaming) -> None:
        for attr, name in list(self.current_name.items()):
            self.current_name[attr] = renaming.apply_to_attribute(name)

    def rewrite(self, attribute: str) -> str:
        """Map a leaf-qualified (or already-renamed) attr to its
        current name."""
        if attribute in self.current_name:
            return self.current_name[attribute]
        return attribute

    def rewrite_condition(self, condition: Condition) -> Condition:
        mapping = {
            attr: self.rewrite(attr) for attr in condition.attributes()
        }
        return condition.rename_attributes(mapping)


def _build_spja(
    spec: SPJASpec, schema: DatabaseSchema
) -> tuple[Query, list[Query]]:
    if not spec.aliases:
        raise QueryError("an SPJA block needs at least one relation")
    leaves = {
        alias: RelationLeaf(schema.relation(table).renamed(alias))
        for alias, table in spec.aliases.items()
    }

    needed_aliases = _needed_aliases(spec)
    order = _join_order(spec, needed_aliases)

    state = _TreeState()
    pending = list(spec.selections)
    placed: set[int] = set()

    def try_place_selections(node: Query, allow: bool) -> Query:
        """Attach every pending selection whose attributes are visible."""
        if not allow:
            return node
        for position, condition in enumerate(pending):
            if position in placed:
                continue
            rewritten = state.rewrite_condition(condition)
            if rewritten.attributes() <= node.target_type:
                node = Select(node, rewritten)
                placed.add(position)
        return node

    # For aggregate queries, selections may only sit above the
    # visibility frontier: above leaves outside V, or above V itself.
    aggregated = spec.has_aggregation

    current: Query | None = None
    used: list[str] = []
    breakpoint_node: Query | None = None
    consumed_pairs: set[int] = set()

    for alias in order:
        leaf: Query = leaves[alias]
        state.register_leaf(leaves[alias])
        if current is None:
            current = try_place_selections(leaf, allow=not aggregated)
            used.append(alias)
        else:
            pairs = [
                (position, pair)
                for position, pair in enumerate(spec.joins)
                if position not in consumed_pairs
                and _connects(pair, used, alias)
            ]
            triples = []
            for position, pair in pairs:
                consumed_pairs.add(position)
                left_attr, right_attr = _orient(pair, used, alias)
                triples.append(
                    (
                        state.rewrite(left_attr),
                        right_attr,
                        pair.new_name(),
                    )
                )
            renaming = Renaming.of(*triples)
            # Selections on the incoming leaf (outside V) may sit below
            # the join when the query has no aggregation, or when the
            # leaf is not part of V (IQ \ IV leaves are breakpoints).
            leaf_is_outside_v = breakpoint_node is not None
            right: Query = try_place_selections(
                leaf, allow=not aggregated or leaf_is_outside_v
            )
            current = Join(current, right, renaming)
            state.apply_renaming(renaming)
            used.append(alias)
            if breakpoint_node is None and needed_aliases <= set(used):
                if aggregated:
                    breakpoint_node = current
            current = try_place_selections(
                current,
                allow=not aggregated or breakpoint_node is not None,
            )

    assert current is not None
    # Residual join pairs over already-used aliases become selections.
    for position, pair in enumerate(spec.joins):
        if position in consumed_pairs:
            continue
        from ..relational.conditions import attr_attr_cmp

        condition = attr_attr_cmp(
            state.rewrite(pair.left), "=", state.rewrite(pair.right)
        )
        current = Select(current, condition)

    if aggregated and breakpoint_node is None:
        # single-relation aggregate query (or no qualified needed
        # attributes): the whole join-free tree is the breakpoint
        breakpoint_node = current
    current = try_place_selections(current, allow=True)
    unplaced = [
        pending[position]
        for position in range(len(pending))
        if position not in placed
    ]
    if unplaced:
        raise QueryError(
            f"could not place selections {unplaced!r}: attributes never "
            "become visible"
        )

    if aggregated:
        group = tuple(state.rewrite(a) for a in spec.group_by)
        calls = tuple(
            AggregateCall(c.function, state.rewrite(c.attribute), c.alias)
            for c in spec.aggregates
        )
        current = Aggregate(current, group, calls)

    if spec.projection is not None:
        attrs = tuple(state.rewrite(a) for a in spec.projection)
        if frozenset(attrs) != current.target_type:
            current = Project(current, attrs)

    breakpoints = [breakpoint_node] if breakpoint_node is not None else []
    return current, breakpoints


def _needed_aliases(spec: SPJASpec) -> set[str]:
    """Aliases of ``G union {A1..An}`` (what V must cover)."""
    if not spec.has_aggregation:
        return set()
    needed: set[str] = set()
    attrs = list(spec.group_by) + [c.attribute for c in spec.aggregates]
    for attr in attrs:
        alias = alias_of(attr)
        if alias is not None and alias in spec.aliases:
            needed.add(alias)
        else:
            # attribute introduced by a join: both origins are needed
            for pair in spec.joins:
                if pair.new_name() == attr:
                    for origin in (pair.left, pair.right):
                        origin_alias = alias_of(origin)
                        if origin_alias is not None:
                            needed.add(origin_alias)
    return needed


def _join_graph(spec: SPJASpec) -> dict[str, set[str]]:
    graph: dict[str, set[str]] = {alias: set() for alias in spec.aliases}
    for pair in spec.joins:
        a, b = alias_of(pair.left), alias_of(pair.right)
        if a is None or b is None:
            raise QueryError(
                f"join pair {pair!r} must use qualified attributes"
            )
        if a not in graph or b not in graph:
            raise QueryError(
                f"join pair {pair!r} references unknown aliases"
            )
        graph[a].add(b)
        graph[b].add(a)
    return graph


def _join_order(spec: SPJASpec, needed: set[str]) -> list[str]:
    """Left-deep join order realizing a minimal breakpoint subtree.

    Without aggregation the order follows the query as written.  With
    aggregation, we grow the tree from a needed alias, at each step
    preferring the connected alias that lies on a shortest path to a
    still-uncovered needed alias -- this keeps ``V`` (the point where
    all needed aliases are covered) as small as possible.  Cross
    products are appended last, only for disconnected aliases.
    """
    all_aliases = list(spec.aliases)
    if len(all_aliases) == 1:
        return all_aliases
    graph = _join_graph(spec)

    if not needed:
        # follow the query as written, but only ever add an alias that
        # is connected to the tree built so far (deferring join pairs
        # whose endpoints are both still missing)
        first = alias_of(spec.joins[0].left) if spec.joins else all_aliases[0]
        order = [first]  # type: ignore[list-item]
        covered = set(order)
        while len(order) < len(all_aliases):
            next_alias = None
            for pair in spec.joins:
                a, b = alias_of(pair.left), alias_of(pair.right)
                if a in covered and b not in covered:
                    next_alias = b
                    break
                if b in covered and a not in covered:
                    next_alias = a
                    break
            if next_alias is None:
                next_alias = next(
                    alias for alias in all_aliases if alias not in covered
                )
            order.append(next_alias)
            covered.add(next_alias)
        return order

    start = next(a for a in all_aliases if a in needed)
    order = [start]
    covered = {start}
    remaining_needed = set(needed) - covered
    while len(order) < len(all_aliases):
        candidates = [
            a
            for a in all_aliases
            if a not in covered
            and any(n in covered for n in graph[a])
        ]
        if not candidates:
            # disconnected: cross products, spec order
            candidates = [a for a in all_aliases if a not in covered]
            order.append(candidates[0])
            covered.add(candidates[0])
            remaining_needed.discard(candidates[0])
            continue
        if remaining_needed:
            best = min(
                candidates,
                key=lambda a: (
                    _distance_to_any(graph, a, remaining_needed),
                    all_aliases.index(a),
                ),
            )
        else:
            best = min(candidates, key=all_aliases.index)
        order.append(best)
        covered.add(best)
        remaining_needed.discard(best)
    return order


def _distance_to_any(
    graph: Mapping[str, set[str]], start: str, targets: set[str]
) -> int:
    if start in targets:
        return 0
    seen = {start}
    frontier = [start]
    distance = 0
    while frontier:
        distance += 1
        nxt: list[str] = []
        for node in frontier:
            for neighbour in graph[node]:
                if neighbour in targets:
                    return distance
                if neighbour not in seen:
                    seen.add(neighbour)
                    nxt.append(neighbour)
        frontier = nxt
    return 10**6  # unreachable: effectively infinite


def _connects(pair: JoinPair, used: Sequence[str], incoming: str) -> bool:
    a, b = alias_of(pair.left), alias_of(pair.right)
    return (a in used and b == incoming) or (b in used and a == incoming)


def _orient(
    pair: JoinPair, used: Sequence[str], incoming: str
) -> tuple[str, str]:
    """Return (attr-on-built-tree, attr-on-incoming-leaf)."""
    if alias_of(pair.left) in used:
        return pair.left, pair.right
    return pair.right, pair.left


def _frontier(
    root: Query, breakpoints: Iterable[Query]
) -> tuple[Query, ...]:
    breakpoints = list(breakpoints)
    if not breakpoints:
        return tuple(root.leaves())
    under: set[int] = set()
    for bp in breakpoints:
        for node in bp.postorder():
            under.add(id(node))
    outside_leaves = [
        leaf for leaf in root.leaves() if id(leaf) not in under
    ]
    return tuple(breakpoints) + tuple(outside_leaves)


def canonical_from_tree(
    root: Query,
    aliases: Mapping[str, str] | None = None,
    label_prefix: str = "m",
) -> CanonicalQuery:
    """Wrap a hand-built algebra tree as a :class:`CanonicalQuery`.

    For trees constructed directly from :mod:`repro.relational.algebra`
    nodes (extensions such as :class:`~repro.relational.algebra.Difference`
    queries, or deliberately non-canonical variants for ablations).
    Breakpoints are recovered per aggregation node as the smallest
    subquery exposing its grouped and aggregated attributes; no
    selection re-placement is performed -- the tree is taken as is.
    """
    from ..relational.algebra import (
        Aggregate,
        subtree_covering,
        validate_tree,
    )

    validate_tree(root)
    labels = assign_labels(root, prefix=label_prefix)
    breakpoints: list[Query] = []
    for node in root.postorder():
        if isinstance(node, Aggregate):
            covering = _covering_by_aliases(node.child, node)
            if covering is not None:
                breakpoints.append(covering)
    if aliases is None:
        aliases = {leaf.alias: leaf.alias for leaf in root.leaves()}
    return CanonicalQuery(
        root=root,
        breakpoints=tuple(breakpoints),
        frontier=_frontier(root, breakpoints),
        labels=labels,
        aliases=dict(aliases),
    )


def _covering_by_aliases(subtree: Query, aggregate) -> Query | None:
    """Smallest node of *subtree* whose aliases cover the aggregate's
    needed attributes (renaming-insensitive coverage)."""
    needed_aliases = {
        alias_of(attr)
        for attr in aggregate.needed_attributes
        if alias_of(attr) is not None
    }
    best: Query | None = None
    if not needed_aliases <= set(subtree.input_aliases):
        return subtree
    best = subtree
    changed = True
    while changed:
        changed = False
        for child in best.children:
            if needed_aliases <= set(child.input_aliases):
                best = child
                changed = True
                break
    return best


def is_at_or_above_breakpoint(
    node: Query, canonical: CanonicalQuery
) -> bool:
    """True when *node* contains some breakpoint ``V`` (V subquery of m).

    Nodes strictly *inside* V (and leaves outside it) are "below" the
    frontier; the aggregation-condition check of Alg. 3 applies only at
    or above it.
    """
    return any(bp.is_subquery_of(node) for bp in canonical.breakpoints)
