"""Predicate unrenaming (Def. 2.7 of the paper).

A Why-Not predicate is stated over the query's *target type*, which may
contain attributes introduced by join/union renamings (e.g. the ``name``
attribute of use case Imdb2).  Answering the question requires tracing
*source* tuples, so each c-tuple must be rewritten over the query's
input schema: every renamed attribute ``Anew`` is replaced by its left
origin ``A1`` on the left branch and its right origin ``A2`` on the
right branch.

Following Def. 2.7:

* at a join, the two branch results are themselves *joined* (merged into
  a single c-tuple carrying both origins -- see Ex. 2.2);
* at a union, they are *disjoined* (the unrenamed predicate grows one
  disjunct per branch);
* projections, selections, and aggregations pass the c-tuple through
  unchanged (aggregated attributes survive unrenaming; Def. 2.8 allows
  them in compatibility checks and Def. 2.12 consumes their conditions
  as ``tc.cond_alpha``).
"""

from __future__ import annotations

from ..errors import WhyNotQuestionError
from ..relational.algebra import Difference, Join, Query, RelationLeaf, Union
from .whynot_question import CTuple, Predicate


def unrename_ctuple(query: Query, tc: CTuple) -> list[CTuple]:
    """Compute ``UnR_Q(tc)``: the disjunction of unrenamed c-tuples.

    After the recursive inversion, attributes that are still join-
    introduced names are residue (they travelled through a branch that
    does not contain the introducing join) and are stripped -- their
    constraints live on in the inverted origin copies, exactly as in
    the paper's Ex. 2.2 where the final unrenamed predicate contains
    ``A.aid`` and ``AB.aid`` but not ``aid``.
    """
    residue = _join_codomains(query)
    out: list[CTuple] = []
    for part in _unrename(query, tc):
        keep = part.type - residue
        stripped = part.restricted_to(keep)
        if stripped is None:
            raise WhyNotQuestionError(
                f"unrenaming {tc!r} left no source attributes"
            )
        out.append(stripped)
    return _dedupe(out)


def _join_codomains(query: Query) -> frozenset[str]:
    """All attribute names introduced by join renamings in the tree."""
    names: set[str] = set()
    for node in query.postorder():
        if isinstance(node, Join):
            names |= node.renaming.codomain
    return frozenset(names)


def _unrename(query: Query, tc: CTuple) -> list[CTuple]:
    if isinstance(query, RelationLeaf):
        return [tc]
    if isinstance(query, Join):
        left_tc = _invert(tc, query, side="left")
        right_tc = _invert(tc, query, side="right")
        left_parts = _unrename(query.left, left_tc)
        right_parts = _unrename(query.right, right_tc)
        merged: list[CTuple] = []
        for lhs in left_parts:
            for rhs in right_parts:
                joined = lhs.merged_with(rhs)
                if joined is not None:
                    merged.append(joined)
        if not merged:
            raise WhyNotQuestionError(
                f"unrenaming {tc!r} through {query!r} produced no "
                "consistent c-tuple"
            )
        return merged
    if isinstance(query, Union):
        left_tc = _invert(tc, query, side="left")
        right_tc = _invert(tc, query, side="right")
        out: list[CTuple] = []
        out.extend(_unrename(query.left, left_tc))
        out.extend(_unrename(query.right, right_tc))
        return _dedupe(out)
    if isinstance(query, Difference):
        # extension: the missing answer can only stem from the left
        # branch -- the right branch *removes* data
        left_tc = _invert(tc, query, side="left")
        return _unrename(query.left, left_tc)
    # unary pi / sigma / alpha: pass through
    (child,) = query.children
    return _unrename(child, tc)


def unrename_predicate(query: Query, predicate: Predicate) -> list[CTuple]:
    """Compute ``UnR_Q(P)`` for a whole predicate (Def. 2.7, last part).

    The result is the flattened disjunction over all c-tuples of *P*;
    NedExplain runs once per element (Sec. 3.1, step 1).
    """
    out: list[CTuple] = []
    for tc in predicate:
        out.extend(unrename_ctuple(query, tc))
    return _dedupe(out)


def _invert(tc: CTuple, node: Join | Union | Difference, side: str) -> CTuple:
    """Apply ``nu|1^-1`` (or ``nu|2^-1``) to the c-tuple's attributes."""
    renaming = node.renaming
    mapping: dict[str, str] = {}
    for attr in tc.type:
        if side == "left":
            origin = renaming.invert_left(attr)
        else:
            origin = renaming.invert_right(attr)
        if origin != attr:
            mapping[attr] = origin
    if not mapping:
        return tc
    return tc.rename_attributes(mapping)


def _dedupe(ctuples: list[CTuple]) -> list[CTuple]:
    seen: set[CTuple] = set()
    out: list[CTuple] = []
    for tc in ctuples:
        if tc not in seen:
            seen.add(tc)
            out.append(tc)
    return out
