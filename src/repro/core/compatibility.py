"""Compatibility of source tuples with a c-tuple (Def. 2.8).

Given an unrenamed c-tuple ``tc`` and the query input instance ``I_Q``,
this module computes

* the **direct compatible set** ``Dir_tc`` -- the source tuples that
  carry the constant values / satisfiable variable bindings of ``tc``,
  with the paper's requirement that all pairs of ``tc`` referencing the
  same relation co-occur in the same source tuple (Sec. 3.1, step 2a);
* ``S_tc`` -- the relation aliases typing the tuples of ``Dir_tc``;
* the **indirect compatible set** ``InDir_tc`` -- the full instance of
  every relation in ``S_Q - S_tc`` (data needed to *produce* the
  missing answer but not constrained by it).

``Dir_tc | InDir_tc`` is the tuple set ``D`` against which successors
are validated (Notation 2.1).

The :class:`CompatibleFinder` mirrors the paper's implementation note:
when a stored :class:`~repro.relational.database.Database` is available
it retrieves candidate ids through indexed ``SELECT`` lookups (the
``SELECT A.aid FROM A WHERE A.name = 'Homer'`` of Ex. 3.1) instead of
scanning the instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..obs.trace import current_tracer
from ..relational.conditions import Var, is_satisfiable
from ..relational.database import Database
from ..robustness.budget import current_context
from ..robustness.faults import fault_point
from ..relational.instance import DatabaseInstance
from ..relational.tuples import Tuple, Value, alias_of, unqualified_name
from .whynot_question import CTuple


@dataclass(frozen=True)
class CompatibilitySets:
    """The outcome of CompatibleFinder for one c-tuple."""

    ctuple: CTuple
    #: alias -> compatible tuples of that relation (only aliases with hits)
    direct: Mapping[str, tuple[Tuple, ...]]
    #: S_tc: aliases typing the direct compatible tuples
    direct_aliases: frozenset[str]
    #: S_Q - S_tc
    indirect_aliases: frozenset[str]
    #: identifiers of the direct compatible tuples
    dir_tids: frozenset[str]
    #: identifiers of every tuple of the indirect relations
    indir_tids: frozenset[str]
    #: aliases actually constrained by tc (qualified attributes)
    constrained_aliases: frozenset[str]

    @property
    def valid_tids(self) -> frozenset[str]:
        """``D = Dir_tc | InDir_tc`` as a set of base-tuple ids."""
        return self.dir_tids | self.indir_tids

    def direct_tuples(self) -> tuple[Tuple, ...]:
        """All direct compatible tuples, grouped by alias order."""
        out: list[Tuple] = []
        for alias in sorted(self.direct):
            out.extend(self.direct[alias])
        return tuple(out)

    @property
    def is_empty(self) -> bool:
        """True when no source tuple is compatible with the c-tuple."""
        return not self.dir_tids


def tuple_matches_ctuple(t: Tuple, tc: CTuple) -> bool:
    """Decide Def. 2.8 for one source tuple.

    ``t`` is compatible with ``tc`` iff (1) they share attributes and
    (2) some valuation equates the shared entries and satisfies
    ``tc.cond``: constants must match exactly, variables are bound to
    the tuple's values, and the residual condition must stay
    satisfiable.
    """
    shared = t.type & tc.type
    if not shared:
        return False
    bound: dict[str, Value] = {}
    for attr in shared:
        entry = tc.entry(attr)
        value = t[attr]
        if isinstance(entry, Var):
            if entry.name in bound and bound[entry.name] != value:
                return False
            bound[entry.name] = value
        elif entry != value:
            return False
    return is_satisfiable(tc.condition, bound)


class CompatibleFinder:
    """Computes :class:`CompatibilitySets` over a query input instance.

    Parameters
    ----------
    instance:
        The query input instance ``I_Q`` (one relation per alias).
    database, aliases:
        Optional stored database plus the ``eta_Q`` alias mapping;
        when given, constant constraints are served by indexed id
        lookups on the stored tables (the paper's SELECT statements)
        and only the candidates are checked against the full c-tuple.
    use_columnar:
        When the stored-database index path is unavailable, narrow
        full scans through the memoized columnar value dictionaries
        instead (``ColumnarTable.rows_equal``): candidate rows are the
        intersection of the per-attribute equality row sets, in stored
        row order.  Candidate *sets* are identical to a full scan, but
        the comparison-budget ticks (sized by the candidate list) may
        be lower than the row path's.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        database: Database | None = None,
        aliases: Mapping[str, str] | None = None,
        use_columnar: bool = False,
    ):
        self.instance = instance
        self.database = database
        self.aliases = dict(aliases or {})
        self.use_columnar = use_columnar

    def find(self, tc: CTuple) -> CompatibilitySets:
        """Compute ``Dir_tc`` / ``InDir_tc`` for the c-tuple."""
        fault_point("compatible.find")
        tracer = current_tracer()
        if tracer is None:
            return self._find(tc)
        with tracer.span(
            "find", category="compatible", ctuple=str(tc)
        ) as span:
            sets = self._find(tc)
            span.set_tag("direct", len(sets.dir_tids))
            span.set_tag("indirect", len(sets.indir_tids))
            tracer.metrics.counter("compatible.finds").inc()
            return sets

    def _find(self, tc: CTuple) -> CompatibilitySets:
        constrained = frozenset(
            alias
            for alias in (alias_of(attr) for attr in tc.type)
            if alias is not None and alias in self.instance
        )
        direct: dict[str, tuple[Tuple, ...]] = {}
        for alias in sorted(constrained):
            hits = self._compatible_in(alias, tc)
            if hits:
                direct[alias] = tuple(hits)
        direct_aliases = frozenset(direct)
        all_aliases = frozenset(self.instance.relation_names())
        indirect_aliases = all_aliases - direct_aliases
        dir_tids = frozenset(
            t.tid for hits in direct.values() for t in hits if t.tid
        )
        indir_tids = frozenset(
            t.tid
            for alias in indirect_aliases
            for t in self.instance.relation(alias)
            if t.tid
        )
        return CompatibilitySets(
            ctuple=tc,
            direct=direct,
            direct_aliases=direct_aliases,
            indirect_aliases=indirect_aliases,
            dir_tids=dir_tids,
            indir_tids=indir_tids,
            constrained_aliases=constrained,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _compatible_in(self, alias: str, tc: CTuple) -> list[Tuple]:
        relation = self.instance.relation(alias)
        candidates = self._candidates(alias, tc)
        if candidates is None:
            candidates = list(relation)
        context = current_context()
        if context is not None:
            context.tick_comparisons(len(candidates))
        return [t for t in candidates if tuple_matches_ctuple(t, tc)]

    def _candidates(self, alias: str, tc: CTuple) -> list[Tuple] | None:
        """Index-served candidate tuples, or ``None`` for a full scan."""
        if self.database is None:
            if self.use_columnar:
                return self._columnar_candidates(alias, tc)
            return None
        table_name = self.aliases.get(alias, alias)
        if table_name not in self.database:
            return None
        table = self.database.table(table_name)
        equalities: dict[str, Value] = {}
        for attr, entry in tc.entries():
            if alias_of(attr) != alias or isinstance(entry, Var):
                continue
            equalities[unqualified_name(attr)] = entry
        if not equalities:
            return None
        ids = self.database.table(table_name).select_ids(equalities)
        relation = self.instance.relation(alias)
        prefix = f"{table.schema.name}:"
        out: list[Tuple] = []
        for tid in ids:
            suffix = tid[len(prefix):] if tid.startswith(prefix) else tid
            out.append(relation.by_tid(f"{alias}:{suffix}"))
        return out

    def _columnar_candidates(
        self, alias: str, tc: CTuple
    ) -> list[Tuple] | None:
        """Candidates via the columnar dictionaries, or ``None``.

        Only constant equalities narrow; variables and conditions are
        still decided by ``tuple_matches_ctuple`` on the candidates.
        """
        equalities: list[tuple[str, Value]] = []
        for attr, entry in tc.entries():
            if alias_of(attr) != alias or isinstance(entry, Var):
                continue
            equalities.append((attr, entry))
        if not equalities:
            return None
        from ..columnar import columnar_table  # lazy: optional path

        table = columnar_table(self.instance, alias)
        rows: set[int] | None = None
        for attr, value in equalities:
            if attr not in table.batch.codes:
                return None  # schema mismatch: fall back to full scan
            matched = set(table.rows_equal(attr, value))
            rows = matched if rows is None else rows & matched
            if not rows:
                return []
        assert rows is not None
        return [table.source_tuple(row) for row in sorted(rows)]


def find_compatibles(
    tc: CTuple,
    instance: DatabaseInstance,
    database: Database | None = None,
    aliases: Mapping[str, str] | None = None,
) -> CompatibilitySets:
    """Convenience wrapper around :class:`CompatibleFinder`."""
    return CompatibleFinder(instance, database, aliases).find(tc)
