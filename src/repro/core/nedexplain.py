"""The NedExplain algorithm (Sec. 3 of the paper, Algorithms 1-3).

Given a canonical query tree, a database instance, and a Why-Not
predicate, NedExplain:

1. unrenames the predicate (Def. 2.7) and runs once per resulting
   c-tuple (Alg. 1, outer loop);
2. computes the direct/indirect compatible sets (CompatibleFinder);
3. initializes ``TabQ`` and the secondary global structures;
4. visits the subqueries in decreasing-depth order, evaluating each
   manipulation on its input, finding the valid successors of the
   compatible tuples (Alg. 3), and recording picky subqueries -- both
   per blocked compatible origin (the ``(t_I, Q')`` pairs of Def. 2.12)
   and per violated aggregation condition (the ``(⊥, Q')`` pairs);
5. stops early when no compatible trace can survive
   (checkEarlyTermination, Alg. 2);
6. derives the secondary answer (Def. 2.14) from the survival of the
   indirect relations.

Phase timings (Initialization, CompatibleFinder, SuccessorsFinder,
Bottom-Up) are accumulated exactly as Fig. 5 of the paper reports them.
Each timed section reads the injectable clock of
:mod:`repro.obs.clock`; under an ambient tracer every section also
becomes a ``phase`` span whose duration *is* the accumulated
measurement, so per-phase span sums and ``report.phase_times_ms``
agree by construction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..errors import (
    BatchError,
    BudgetExceededError,
    CancelledError,
    ConfigurationError,
    EvaluationError,
    LoadShedError,
    ReproError,
    WhyNotQuestionError,
)
from ..relational.algebra import Aggregate, Query
from ..relational.database import Database
from ..relational.evalcache import EvaluationCache, get_default_cache
from ..relational.evaluator import EvaluationResult
from ..obs.clock import perf_counter
from ..obs.trace import current_tracer
from ..relational.instance import DatabaseInstance
from ..relational.tuples import Tuple
from ..robustness.breaker import CircuitBreakerBoard
from ..robustness.budget import (
    Budget,
    ExecutionContext,
    current_context,
    execution_context,
)
from ..robustness.executor import CancellationToken, ParallelExecutor
from ..robustness.faults import fault_scope
from ..robustness.journal import BatchJournal
from ..robustness.outcomes import (
    FailureInfo,
    QuestionOutcome,
    ReplayedOutcome,
)
from ..robustness.resilience import DegradationLadder, RetryPolicy
from .answers import DetailedEntry, NedExplainReport, WhyNotAnswer
from .canonical import CanonicalQuery
from .compatibility import (
    CompatibilitySets,
    CompatibleFinder,
    tuple_matches_ctuple,
)
from .successors import find_successors
from .tabq import TabEntry, TabQ
from .unrename import unrename_ctuple
from .whynot_question import CTuple, Predicate, parse_predicate

#: The four phases of Fig. 5.
PHASES = ("Initialization", "CompatibleFinder", "SuccessorsFinder", "BottomUp")


class _PhaseTimer:
    """Times one section of a Fig. 5 phase.

    With tracing off: two reads of the injectable clock.  With tracing
    on: a ``phase`` span whose duration is *also* the value added to
    the engine's phase accumulator -- one measurement, two views, so
    ``sum(phase spans) == report.phase_times_ms`` exactly.  The section
    is recorded even when it unwinds on an exception (a degraded,
    budget-exhausted report still accounts the time it burned).
    """

    __slots__ = ("engine", "name", "_tracer", "_span", "_started")

    def __init__(self, engine: "NedExplain", name: str):
        self.engine = engine
        self.name = name

    def __enter__(self) -> "_PhaseTimer":
        self.engine._note_phase(self.name)
        self._tracer = current_tracer()
        if self._tracer is None:
            self._span = None
            self._started = perf_counter()
        else:
            self._span = self._tracer.start_span(
                self.name, category="phase", phase=self.name
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._span is None:
            elapsed_ms = (perf_counter() - self._started) * 1000.0
        else:
            self._tracer.end_span(self._span)
            elapsed_ms = self._span.duration_ms
        self.engine._phases[self.name] += elapsed_ms
        return False


@dataclass
class NedExplainConfig:
    """Tunable behaviour of the algorithm.

    ``early_termination`` toggles Alg. 2 (ablation A3 of DESIGN.md);
    ``compute_secondary`` toggles Def. 2.14; ``check_answer_presence``
    reports when the "missing" answer is in fact present in the result.
    ``use_shared_evaluation`` routes the bottom-up pass through one
    shared (cached) query evaluation instead of re-applying every
    manipulation per c-tuple; disabling it restores the paper's
    literal per-question loop (the oracle of the differential tests).
    ``use_columnar`` additionally runs that shared evaluation on the
    batch-at-a-time engine of :mod:`repro.columnar` (identical rows,
    lineage, and TabQ picks; the row engine stays the oracle) and lets
    CompatibleFinder narrow full scans through the columnar value
    dictionaries; it requires ``use_shared_evaluation``.
    ``budget`` is the default execution budget applied to every
    ``explain``/``explain_each`` call that does not pass its own; when
    it runs out the call returns an explicit *degraded* report
    (``report.partial``) instead of raising.
    ``retry`` is the default :class:`~repro.robustness.resilience.RetryPolicy`
    applied by ``explain_each`` to questions that fail with a transient
    error (again overridable per call).
    """

    early_termination: bool = True
    compute_secondary: bool = True
    check_answer_presence: bool = True
    use_shared_evaluation: bool = True
    use_columnar: bool = False
    budget: Budget | None = None
    retry: RetryPolicy | None = None


class NedExplain:
    """Reusable explainer for one canonical query over one database.

    Parameters
    ----------
    canonical:
        The canonicalized query (see :func:`repro.core.canonical.canonicalize`).
    database:
        A stored :class:`~repro.relational.database.Database`.  The
        query input instance is derived through the canonical alias
        mapping; CompatibleFinder uses the database's indexes.
    instance:
        Alternatively, a ready-made query input instance.
    cache:
        The :class:`~repro.relational.evalcache.EvaluationCache` the
        shared bottom-up evaluation is served from; defaults to the
        process-wide cache.  Only consulted when
        ``config.use_shared_evaluation`` is on.
    """

    def __init__(
        self,
        canonical: CanonicalQuery,
        database: Database | None = None,
        instance: DatabaseInstance | None = None,
        config: NedExplainConfig | None = None,
        cache: EvaluationCache | None = None,
    ):
        if (database is None) == (instance is None):
            raise WhyNotQuestionError(
                "provide exactly one of database / instance"
            )
        self.canonical = canonical
        self.config = config or NedExplainConfig()
        if (
            self.config.use_columnar
            and not self.config.use_shared_evaluation
        ):
            raise ConfigurationError(
                "use_columnar requires use_shared_evaluation: the "
                "columnar engine evaluates the whole tree once and "
                "serves row views from the shared cache entry"
            )
        if database is not None:
            self.instance = database.input_instance(canonical.aliases)
        else:
            assert instance is not None
            self.instance = instance
        self.finder = CompatibleFinder(
            self.instance,
            database,
            canonical.aliases,
            use_columnar=self.config.use_columnar,
        )
        self.cache = cache if cache is not None else get_default_cache()
        # Per-explain mutable state lives in a threading.local: a
        # parallel batch runs explain() concurrently on one engine, and
        # each worker thread must see only its own question's shared
        # evaluation, phase accumulators, and TabQs.
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Per-thread explain state
    # ------------------------------------------------------------------
    @property
    def _shared(self) -> EvaluationResult | None:
        """The shared evaluation the current explain() call reads from
        (thread-local: one per concurrently explaining thread)."""
        return getattr(self._local, "shared", None)

    @_shared.setter
    def _shared(self, value: EvaluationResult | None) -> None:
        self._local.shared = value

    @property
    def _phases(self) -> dict[str, float]:
        phases = getattr(self._local, "phases", None)
        if phases is None:
            phases = {}
            self._local.phases = phases
        return phases

    @_phases.setter
    def _phases(self, value: dict[str, float]) -> None:
        self._local.phases = value

    @property
    def last_tabqs(self) -> list[TabQ]:
        """TabQ of each processed c-tuple from the last explain() call
        *on this thread* (a parallel batch's workers each keep their
        own; the submitting thread's list is untouched by them)."""
        tabqs = getattr(self._local, "last_tabqs", None)
        if tabqs is None:
            tabqs = []
            self._local.last_tabqs = tabqs
        return tabqs

    @last_tabqs.setter
    def last_tabqs(self, value: list[TabQ]) -> None:
        self._local.last_tabqs = value

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def explain(
        self,
        predicate: Predicate | CTuple | str,
        budget: Budget | None = None,
    ) -> NedExplainReport:
        """Answer a Why-Not question; returns the full report.

        With a *budget* (argument, ``config.budget``, or an ambient
        :func:`~repro.robustness.budget.execution_context` installed by
        the caller), exhaustion does not raise: the call returns a
        *degraded* report (``report.partial`` set, the partially-filled
        TabQ retained in ``last_tabqs``) holding every answer completed
        before the budget ran out.
        """
        predicate = self._coerce(predicate)
        predicate.validate_against(self.canonical.root)
        budget = budget if budget is not None else self.config.budget
        tracer = current_tracer()
        if tracer is None:
            if budget is not None and current_context() is None:
                with execution_context(ExecutionContext(budget)):
                    return self._explain_validated(predicate)
            return self._explain_validated(predicate)
        with tracer.span(
            "explain", category="run", predicate=str(predicate)
        ) as run_span:
            if budget is not None and current_context() is None:
                with execution_context(ExecutionContext(budget)):
                    report = self._explain_validated(predicate)
            else:
                report = self._explain_validated(predicate)
            run_span.set_tag("answers", len(report.answers))
            run_span.set_tag("partial", report.partial)
            return report

    def _explain_validated(self, predicate: Predicate) -> NedExplainReport:
        self._phases = {phase: 0.0 for phase in PHASES}
        self.last_tabqs = []
        answers: list[WhyNotAnswer] = []
        partial = False
        degraded_reason: str | None = None

        try:
            self._shared = None
            if self.config.use_shared_evaluation:
                # evaluation cost used to live in the per-entry
                # bottom-up pass; keep it in the same Fig. 5 phase for
                # comparability
                with _PhaseTimer(self, "BottomUp"):
                    self._shared = self.cache.get_or_evaluate(
                        self.canonical.root,
                        self.instance,
                        self.canonical.aliases,
                        engine=(
                            "columnar"
                            if self.config.use_columnar
                            else "row"
                        ),
                    )

            with _PhaseTimer(self, "Initialization"):
                pairs: list[tuple[CTuple, CTuple]] = []
                for original in predicate:
                    for unrenamed in unrename_ctuple(
                        self.canonical.root, original
                    ):
                        pairs.append((original, unrenamed))

            for original, unrenamed in pairs:
                answer, tabq = self._explain_ctuple(unrenamed)
                if (
                    self.config.check_answer_presence
                    and tabq is not None
                ):
                    root_entry = tabq.entry(self.canonical.root)
                    if root_entry.output is not None and any(
                        tuple_matches_ctuple(t, original)
                        for t in root_entry.output
                    ):
                        answer.answer_not_missing = True
                answers.append(answer)
                if tabq is not None:
                    self.last_tabqs.append(tabq)
        except BudgetExceededError as exc:
            # Budgeted degradation: return what was completed plus a
            # best-effort answer for the in-flight c-tuple, explicitly
            # flagged -- never a bare traceback (cf. the approximate,
            # bounded-effort answers of Lee et al. 2020).
            partial = True
            degraded_reason = str(exc)
            if exc.partial_answer is not None:
                answers.append(exc.partial_answer)
            if exc.partial is not None:
                self.last_tabqs.append(exc.partial)
        return NedExplainReport(
            tuple(answers),
            dict(self._phases),
            partial=partial,
            degraded_reason=degraded_reason,
        )

    def explain_many(
        self,
        predicates: Iterable[Predicate | CTuple | str],
        budget: Budget | None = None,
    ) -> tuple[NedExplainReport, ...]:
        """Answer many Why-Not questions against one shared evaluation.

        The query tree is evaluated (at most) once -- through the
        engine's :class:`~repro.relational.evalcache.EvaluationCache`
        -- and every question recomputes only its own compatible sets,
        successor traces, and TabQ columns.  Reports are returned in
        question order and are observationally identical to ``N``
        independent :meth:`explain` calls (the differential test suite
        asserts this over all Table-4 use cases and hundreds of
        randomized workloads).

        The batch is *fault-isolating*: every question runs to an
        outcome even when an earlier one fails.  When all questions
        succeed, the reports are returned; when any failed, a
        :class:`~repro.errors.BatchError` is raised whose ``outcomes``
        attribute still carries one
        :class:`~repro.robustness.outcomes.QuestionOutcome` per
        question (use :meth:`explain_each` to get the outcomes without
        the exception).
        """
        outcomes = self.explain_each(predicates, budget=budget)
        failed = [o for o in outcomes if not o.ok]
        if failed:
            raise BatchError(
                f"{len(failed)} of {len(outcomes)} questions failed "
                "(all outcomes attached)",
                outcomes=outcomes,
            )
        return tuple(o.report for o in outcomes)  # type: ignore[misc]

    def explain_each(
        self,
        predicates: Iterable[Predicate | CTuple | str],
        budget: Budget | None = None,
        retry: RetryPolicy | None = None,
        breakers: CircuitBreakerBoard | None = None,
        fallback_baseline: bool = False,
        ladder: DegradationLadder | None = None,
        journal: BatchJournal | None = None,
        workers: int = 1,
        queue_size: int | None = None,
        shed_after: int | None = None,
        batch_deadline_s: float | None = None,
        cancel: CancellationToken | None = None,
    ) -> tuple[QuestionOutcome | ReplayedOutcome, ...]:
        """Fault-isolating, resilient batch: one outcome per question.

        Each question gets a fresh per-question
        :class:`~repro.robustness.budget.ExecutionContext` (built from
        *budget*, falling back to ``config.budget``) and resolves to
        either a report or a structured failure (error class, phase,
        budget spent) -- a failing question never takes the rest of the
        batch down, and an aborted evaluation never leaves a partial
        entry in the shared cache.  Unexpected non-library exceptions
        are wrapped in :class:`~repro.errors.EvaluationError` so the
        ``except ReproError`` contract holds for callers.

        Resilience knobs (all optional; defaults reproduce the plain
        fault-isolated batch):

        *retry*
            a :class:`~repro.robustness.resilience.RetryPolicy`
            (falling back to ``config.retry``): transient failures are
            re-attempted with deterministic backoff on the ambient
            clock; ``outcome.attempts`` counts what each question
            consumed.
        *breakers*
            a :class:`~repro.robustness.breaker.CircuitBreakerBoard`
            consulted between attempts; a fresh board is created when
            a retry policy is active and none is passed.  An open
            breaker for the failing site stops further retries -- the
            question drops down the degradation ladder instead of
            hammering a persistently broken site.
        *fallback_baseline* / *ladder*
            when retries are exhausted, answer with the Why-Not
            baseline instead of failing
            (``outcome.degradation_level == "baseline"``,
            the answer in ``outcome.baseline``).
        *journal*
            a :class:`~repro.robustness.journal.BatchJournal`: every
            resolved outcome is durably appended as soon as it
            completes, and questions a previous (killed) run already
            completed are replayed verbatim as
            :class:`~repro.robustness.outcomes.ReplayedOutcome`\\ s.
            A parallel batch appends in completion order; resume is by
            question identity (index + digest), so the merged result
            is still identical to an uninterrupted run.

        Concurrency knobs (all optional; ``workers=1`` runs the same
        admission policy inline and is byte-identical to the historical
        sequential loop):

        *workers* / *queue_size*
            size of the supervised worker pool and of its bounded
            submission queue (see
            :class:`~repro.robustness.executor.ParallelExecutor`).
            Ambient context (clock, tracer, budget context, fault
            scope) propagates to every worker; per-worker tracers and
            metrics are merged back into the caller's.  Outcomes are
            returned in submission order, and under a
            :class:`~repro.obs.clock.ManualClock` a ``workers=N`` run
            is byte-identical to the sequential one.
        *shed_after*
            admission quota: questions beyond the first *shed_after*
            non-replayed ones resolve to explicit ``"shed"`` outcomes
            without doing any work (never silently dropped).
        *batch_deadline_s*
            whole-batch deadline on the ambient clock; per-question
            budgets are capped to the remaining batch time, and
            questions that have not started when it expires resolve to
            explicit ``"cancelled"`` outcomes.
        *cancel*
            a :class:`~repro.robustness.executor.CancellationToken`
            (e.g. set from a SIGINT/SIGTERM handler): setting it drains
            the batch gracefully -- in-flight questions finish and are
            journalled, unstarted ones become ``"cancelled"`` outcomes.
        """
        effective = budget if budget is not None else self.config.budget
        if retry is None:
            retry = self.config.retry
        if breakers is None and retry is not None:
            breakers = CircuitBreakerBoard()
        if ladder is None and fallback_baseline:
            ladder = DegradationLadder.for_engine(self)
        executor = ParallelExecutor(
            workers=workers,
            queue_size=queue_size,
            shed_after=shed_after,
            batch_deadline_s=batch_deadline_s,
            cancel=cancel,
        )

        def _replay(index, predicate):
            if journal is None:
                return None
            record = journal.completed(index, str(predicate))
            if record is None:
                return None
            return ReplayedOutcome(question=predicate, record=record)

        def _resolve(index, predicate):
            question_budget = self._capped_budget(
                effective, executor.remaining_s()
            )
            return self._resolve_outcome(
                predicate, question_budget, retry, breakers, ladder
            )

        def _record(index, predicate, outcome):
            if journal is not None:
                journal.record(index, str(predicate), outcome.to_dict())

        def _on_shed(index, predicate):
            error = LoadShedError(
                f"question shed by admission quota "
                f"(shed_after={shed_after})",
                index=index,
            )
            return QuestionOutcome(
                question=predicate,
                failure=FailureInfo.from_error(error, attempts=0),
                error=error,
                attempts=0,
                degradation_level="shed",
            )

        def _on_cancelled(index, predicate, reason):
            error = CancelledError(
                f"question cancelled before start: {reason}",
                reason=reason,
            )
            return QuestionOutcome(
                question=predicate,
                failure=FailureInfo.from_error(error, attempts=0),
                error=error,
                attempts=0,
                degradation_level="cancelled",
            )

        return tuple(
            executor.run(
                predicates,
                _resolve,
                replay=_replay,
                record=_record,
                on_shed=_on_shed,
                on_cancelled=_on_cancelled,
            )
        )

    @staticmethod
    def _capped_budget(
        base: Budget | None, remaining_s: float | None
    ) -> Budget | None:
        """Cap a per-question budget to the remaining batch deadline."""
        if remaining_s is None:
            return base
        # Budget requires a positive deadline; the executor cancels
        # unstarted questions once the deadline passes, so a question
        # caught in the tiny gap just gets an immediately-exhausted one.
        remaining_s = max(remaining_s, 1e-9)
        if base is None:
            return Budget(deadline_s=remaining_s)
        if base.deadline_s is not None and base.deadline_s <= remaining_s:
            return base
        return Budget(
            deadline_s=remaining_s,
            max_rows=base.max_rows,
            max_comparisons=base.max_comparisons,
        )

    def _resolve_outcome(
        self,
        predicate: Predicate | CTuple | str,
        budget: Budget | None,
        retry: RetryPolicy | None,
        breakers: CircuitBreakerBoard | None,
        ladder: DegradationLadder | None,
    ) -> QuestionOutcome:
        """One question, driven to an outcome through the resilience
        machinery: attempt -> retry (backoff, breaker-gated) ->
        degradation ladder -> structured failure.

        The whole resolution (all attempts) runs under a
        :func:`~repro.robustness.faults.fault_scope` keyed by the
        question, so question-scoped fault plans fire identically
        whether the batch is sequential or parallel."""
        question_key = str(predicate)
        with fault_scope(question_key):
            return self._resolve_scoped(
                predicate, budget, retry, breakers, ladder, question_key
            )

    def _resolve_scoped(
        self,
        predicate: Predicate | CTuple | str,
        budget: Budget | None,
        retry: RetryPolicy | None,
        breakers: CircuitBreakerBoard | None,
        ladder: DegradationLadder | None,
        question_key: str,
    ) -> QuestionOutcome:
        max_attempts = retry.max_attempts if retry is not None else 1
        attempts = 0
        failed_site: str | None = None
        last_error: ReproError | None = None
        last_context: ExecutionContext | None = None
        while attempts < max_attempts:
            attempts += 1
            context = ExecutionContext(budget)
            try:
                with execution_context(context):
                    report = self.explain(predicate)
            except ReproError as exc:
                error: ReproError = exc
            except Exception as exc:  # noqa: BLE001 -- containment
                wrapped = EvaluationError(
                    f"unexpected {type(exc).__name__} while explaining "
                    f"{predicate!r}: {exc}"
                )
                wrapped.__cause__ = exc
                error = wrapped
            else:
                if failed_site is not None and breakers is not None:
                    # a half-open probe (or plain retry) succeeded:
                    # report the recovery so the breaker can close
                    breakers.record_success(failed_site)
                return QuestionOutcome(
                    question=predicate,
                    report=report,
                    attempts=attempts,
                )
            # ---- failure path -------------------------------------
            failed_site = (
                getattr(error, "site", None) or type(error).__name__
            )
            if breakers is not None:
                breakers.record_failure(failed_site)
            last_error, last_context = error, context
            if (
                retry is None
                or attempts >= max_attempts
                or not retry.is_retryable(error)
            ):
                break
            if breakers is not None and not breakers.allow(failed_site):
                break  # breaker open: stop hammering this site
            tracer = current_tracer()
            if tracer is not None:
                tracer.metrics.counter("resilience.retries").inc()
                tracer.metrics.counter(
                    f"resilience.retries.{failed_site}"
                ).inc()
            retry.wait(attempts - 1, key=question_key)
        assert last_error is not None and last_context is not None
        failure = FailureInfo.from_error(
            last_error,
            phase=last_context.phase,
            spent=last_context.spent(),
            attempts=attempts,
        )
        if ladder is not None:
            baseline = ladder.baseline_answer(predicate)
            if baseline is not None:
                return QuestionOutcome(
                    question=predicate,
                    failure=failure,
                    error=last_error,
                    attempts=attempts,
                    degradation_level="baseline",
                    baseline=baseline,
                )
        return QuestionOutcome(
            question=predicate,
            failure=failure,
            error=last_error,
            attempts=attempts,
        )

    def _note_phase(self, name: str) -> None:
        """Point the ambient execution context at the running phase."""
        context = current_context()
        if context is not None:
            context.phase = name

    def _coerce(self, predicate: Predicate | CTuple | str) -> Predicate:
        if isinstance(predicate, str):
            return parse_predicate(predicate)
        if isinstance(predicate, CTuple):
            return Predicate.of(predicate)
        return predicate

    # ------------------------------------------------------------------
    # Alg. 1: main loop for one unrenamed c-tuple
    # ------------------------------------------------------------------
    def _explain_ctuple(
        self, tc: CTuple
    ) -> tuple[WhyNotAnswer, TabQ | None]:
        with _PhaseTimer(self, "CompatibleFinder"):
            compat = self.finder.find(tc)

        if compat.is_empty:
            return (
                WhyNotAnswer(ctuple=tc, no_compatible_data=True),
                None,
            )

        with _PhaseTimer(self, "Initialization"):
            tabq = TabQ(self.canonical.root, self.instance, compat)

        detailed: list[DetailedEntry] = []
        try:
            for index in range(len(tabq)):
                entry = tabq[index]
                if self.config.early_termination and self._check_early_termination(
                    tabq, index
                ):
                    break
                self._process_entry(tabq, entry, compat, tc, detailed)
        except BudgetExceededError as exc:
            # Attach everything completed so far so the caller can
            # report a best-effort prefix of the answer (Alg. 1 cut
            # short mid-traversal).
            exc.partial = tabq
            exc.partial_answer = WhyNotAnswer(
                ctuple=tc, detailed=tuple(detailed), partial=True
            )
            raise

        secondary: tuple[Query, ...] = ()
        if self.config.compute_secondary:
            with _PhaseTimer(self, "BottomUp"):
                picky_nodes = {id(e.subquery) for e in detailed}
                secondary = self._secondary_answer(
                    tabq, compat, picky_nodes
                )

        answer = WhyNotAnswer(
            ctuple=tc,
            detailed=tuple(detailed),
            secondary=secondary,
            empty_outputs=tuple(
                e.node for e in tabq.empty_output_man
            ),
        )
        return answer, tabq

    def _process_entry(
        self,
        tabq: TabQ,
        entry: TabEntry,
        compat: CompatibilitySets,
        tc: CTuple,
        detailed: list[DetailedEntry],
    ) -> None:
        node = entry.node
        with _PhaseTimer(self, "BottomUp"):
            if self._shared is not None:
                # shared-evaluation path: per-node inputs/outputs come
                # from the one cached evaluation (identical, by
                # construction, to what re-applying every manipulation
                # would produce)
                if not entry.is_leaf:
                    entry.input = list(self._shared.flat_input(node))
                entry.output = list(self._shared.output(node))
            elif entry.is_leaf:
                entry.output = node.apply([entry.input])
            else:
                inputs = [
                    list(tabq.entry(child).output or [])
                    for child in node.children
                ]
                entry.input = [t for part in inputs for t in part]
                entry.output = node.apply(inputs)
            parent = entry.parent
            if not entry.output:
                tabq.mark_empty(entry)

        if entry.is_leaf:
            if entry.compatibles:
                if parent is not None:
                    parent.add_compatibles(entry.compatibles)
                tabq.mark_non_picky(entry)
            return

        # Alg. 3: FindSuccessors
        with _PhaseTimer(self, "SuccessorsFinder"):
            step = find_successors(
                entry.output,
                entry.compatibles,
                compat.valid_tids,
                compat.dir_tids,
            )
            if parent is not None:
                parent.add_compatibles(step.successors)
            if step.successors:
                tabq.mark_non_picky(entry)
            if step.blocked:
                tabq.mark_picky(entry, step.blocked)
            for origin in sorted(step.died):
                detailed.append(DetailedEntry(origin, node))

            # Aggregation-condition check (Def. 2.12, second part):
            # applies to nodes strictly above the breakpoint V of an
            # aggregation.
            aggregate = self._relevant_aggregate(node)
            if aggregate is not None:
                tc_agg = tc.restricted_to(
                    set(aggregate.group_by)
                    | set(aggregate.aggregated_attributes)
                )
                if tc_agg is not None:
                    admits_in = self._admits(
                        aggregate, entry.compatibles, tc_agg
                    )
                    admits_out = self._admits(
                        aggregate, list(step.successors), tc_agg
                    )
                    already = any(
                        e.subquery is node and e.tid is not None
                        for e in detailed
                    )
                    if (
                        admits_in is True
                        and admits_out is False
                        and not already
                    ):
                        detailed.append(DetailedEntry(None, node))
                        if not step.blocked:
                            tabq.mark_picky(entry, ())

    # ------------------------------------------------------------------
    # Alg. 2: checkEarlyTermination
    # ------------------------------------------------------------------
    def _check_early_termination(self, tabq: TabQ, index: int) -> bool:
        if index == 0:
            return False
        entry = tabq[index]
        previous = tabq[index - 1]
        if entry.level == previous.level:
            return False
        # 1) any non-picky subquery at the previous (deeper) level?
        j = index - 1
        while j >= 0 and tabq[j].level == previous.level:
            if tabq[j] in tabq.non_picky_man:
                return False
            j -= 1
        # 2) any untouched relation leaf that could still introduce
        #    compatible tuples?
        k = index
        while k < len(tabq):
            if tabq[k].op == "relation schema":
                return False
            k += 1
        return True

    # ------------------------------------------------------------------
    # Aggregation-condition support
    # ------------------------------------------------------------------
    def _relevant_aggregate(self, node: Query) -> Aggregate | None:
        """The aggregation whose breakpoint V is a *proper* subquery of
        *node*, if the two belong to the same union branch."""
        for aggregate in self.canonical.aggregate_nodes():
            breakpoint = self._breakpoint_of(aggregate)
            if breakpoint is None or breakpoint is node:
                continue
            if not breakpoint.is_subquery_of(node):
                continue
            if node.is_subquery_of(aggregate) or aggregate.is_subquery_of(
                node
            ):
                return aggregate
        return None

    def _breakpoint_of(self, aggregate: Aggregate) -> Query | None:
        for candidate in self.canonical.breakpoints:
            if candidate.is_subquery_of(aggregate):
                return candidate
        return None

    def _admits(
        self,
        aggregate: Aggregate,
        tuples: list[Tuple],
        tc_agg: CTuple,
    ) -> bool | None:
        """Does this tuple set still admit the constrained aggregate?

        Applies ``alpha_{G,F}`` to *tuples* (unless they already carry
        the aggregated attributes) and checks whether any resulting
        tuple is compatible with the G/Agg restriction of the c-tuple.
        Returns ``None`` when the check is not decidable at this node
        (attributes no longer visible).
        """
        needed_direct = tc_agg.type
        if tuples and needed_direct <= tuples[0].type:
            candidates = tuples
        elif not tuples or aggregate.needed_attributes <= tuples[0].type:
            candidates = aggregate.aggregate_tuples(tuples)
        else:
            return None
        return any(
            tuple_matches_ctuple(t, tc_agg) for t in candidates
        )

    # ------------------------------------------------------------------
    # Def. 2.14: secondary answer
    # ------------------------------------------------------------------
    def _secondary_answer(
        self,
        tabq: TabQ,
        compat: CompatibilitySets,
        picky_nodes: set[int],
    ) -> tuple[Query, ...]:
        out: list[Query] = []
        seen: set[int] = set()
        for alias in sorted(compat.indirect_aliases):
            blocker = self._relation_blocker(tabq, alias)
            if blocker is None:
                continue
            node = blocker.node
            # complement the primary answer: a subquery already blamed
            # by the detailed answer is not repeated here
            if id(node) in picky_nodes or id(node) in seen:
                continue
            seen.add(id(node))
            out.append(node)
        return tuple(out)

    def _relation_blocker(
        self, tabq: TabQ, alias: str
    ) -> TabEntry | None:
        """Lowest evaluated subquery after which no tuple of *alias*
        has any (plain) successor."""
        leaf_entry = None
        for entry in tabq:
            if entry.is_leaf and entry.node.name == alias:
                leaf_entry = entry
                break
        if leaf_entry is None or not leaf_entry.input:
            return None  # empty stored relation: no d in I|S exists
        prefix = f"{alias}:"
        current: TabEntry | None = leaf_entry
        while current is not None and current.output is not None:
            alive = any(
                any(tid.startswith(prefix) for tid in t.lineage)
                for t in current.output
            )
            if not alive:
                return current
            current = current.parent
        return None


# ---------------------------------------------------------------------------
# Convenience entry point
# ---------------------------------------------------------------------------
def nedexplain(
    canonical: CanonicalQuery,
    predicate: Predicate | CTuple | str,
    database: Database | None = None,
    instance: DatabaseInstance | None = None,
    config: NedExplainConfig | None = None,
) -> NedExplainReport:
    """One-shot API: explain *predicate* against *canonical* query."""
    engine = NedExplain(
        canonical, database=database, instance=instance, config=config
    )
    return engine.explain(predicate)
