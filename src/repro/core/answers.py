"""Why-Not answer types (Defs. 2.12-2.14 of the paper).

Three granularities are produced per c-tuple:

* **detailed** -- pairs ``(t_I, Q')`` of a direct compatible tuple and
  the subquery picky for it, plus ``(None, Q')`` pairs for subqueries
  violating the aggregation condition (the paper writes the latter as
  ``(null, m3)`` in use case Crime9);
* **condensed** -- just the set of picky subqueries;
* **secondary** -- subqueries after which an entire indirect relation
  disappears (empty intermediate results, Ex. 2.7 / use case Crime5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..relational.algebra import Query
from .whynot_question import CTuple


@dataclass(frozen=True)
class DetailedEntry:
    """One pair of the detailed answer.

    ``tid`` is the identifier of the picked compatible tuple, or
    ``None`` (the paper's ``⊥``/null) for an aggregation-condition
    violation.
    """

    tid: str | None
    subquery: Query

    @property
    def subquery_label(self) -> str:
        return self.subquery.name or self.subquery.describe()

    def to_dict(self) -> dict:
        """JSON-ready view (the ``--json`` CLI report format)."""
        return {"tid": self.tid, "subquery": self.subquery_label}

    def __repr__(self) -> str:
        who = self.tid if self.tid is not None else "null"
        return f"({who}, {self.subquery_label})"


@dataclass
class WhyNotAnswer:
    """All answers for one (unrenamed) c-tuple."""

    ctuple: CTuple
    detailed: tuple[DetailedEntry, ...] = ()
    secondary: tuple[Query, ...] = ()
    #: labels of subqueries with empty output (diagnostic)
    empty_outputs: tuple[Query, ...] = ()
    #: True when no source tuple was compatible with the c-tuple
    no_compatible_data: bool = False
    #: True when the "missing" answer is actually present in the result
    answer_not_missing: bool = False
    #: True when the traversal was cut short by an exhausted execution
    #: budget: the detailed entries are a best-effort prefix of the
    #: full answer, not the complete blame set
    partial: bool = False

    @property
    def condensed(self) -> tuple[Query, ...]:
        """The condensed answer: picky subqueries, deduplicated
        (Def. 2.13)."""
        seen: set[int] = set()
        out: list[Query] = []
        for entry in self.detailed:
            if id(entry.subquery) not in seen:
                seen.add(id(entry.subquery))
                out.append(entry.subquery)
        return tuple(out)

    @property
    def condensed_labels(self) -> tuple[str, ...]:
        return tuple(q.name or q.describe() for q in self.condensed)

    @property
    def secondary_labels(self) -> tuple[str, ...]:
        return tuple(q.name or q.describe() for q in self.secondary)

    @property
    def detailed_pairs(self) -> tuple[tuple[str | None, str], ...]:
        """Detailed answer as ``(tid, label)`` pairs for display."""
        return tuple(
            (entry.tid, entry.subquery_label) for entry in self.detailed
        )

    def is_empty(self) -> bool:
        return not self.detailed and not self.secondary

    def to_dict(self) -> dict:
        """JSON-ready view (the ``--json`` CLI report format)."""
        return {
            "ctuple": str(self.ctuple),
            "detailed": [entry.to_dict() for entry in self.detailed],
            "condensed": list(self.condensed_labels),
            "secondary": list(self.secondary_labels),
            "empty_outputs": [
                q.name or q.describe() for q in self.empty_outputs
            ],
            "no_compatible_data": self.no_compatible_data,
            "answer_not_missing": self.answer_not_missing,
            "partial": self.partial,
        }

    def __repr__(self) -> str:
        parts = [f"detailed={list(self.detailed)!r}"]
        if self.secondary:
            parts.append(f"secondary={list(self.secondary_labels)!r}")
        if self.no_compatible_data:
            parts.append("no_compatible_data=True")
        if self.answer_not_missing:
            parts.append("answer_not_missing=True")
        if self.partial:
            parts.append("partial=True")
        return f"WhyNotAnswer({', '.join(parts)})"


@dataclass
class NedExplainReport:
    """Full output of one NedExplain run over a predicate.

    The overall Why-Not answer of a predicate is the union of the
    answers of each (unrenamed) c-tuple (Sec. 2.5 / Sec. 3.1); the
    per-c-tuple breakdown is preserved because the paper reports union
    use cases (Gov7) as one answer set per c-tuple.
    """

    answers: tuple[WhyNotAnswer, ...] = ()
    #: milliseconds per phase: Initialization, CompatibleFinder,
    #: SuccessorsFinder, BottomUp (the four phases of Fig. 5)
    phase_times_ms: dict[str, float] = field(default_factory=dict)
    #: True when an execution budget ran out mid-run: the report is an
    #: explicit best-effort, degraded answer (see docs/robustness.md)
    partial: bool = False
    #: human-readable reason the run was degraded, when ``partial``
    degraded_reason: str | None = None

    def __iter__(self) -> Iterator[WhyNotAnswer]:
        return iter(self.answers)

    @property
    def detailed(self) -> tuple[DetailedEntry, ...]:
        """Union of the detailed answers over all c-tuples."""
        out: list[DetailedEntry] = []
        seen: set[tuple[str | None, int]] = set()
        for answer in self.answers:
            for entry in answer.detailed:
                key = (entry.tid, id(entry.subquery))
                if key not in seen:
                    seen.add(key)
                    out.append(entry)
        return tuple(out)

    @property
    def condensed(self) -> tuple[Query, ...]:
        seen: set[int] = set()
        out: list[Query] = []
        for answer in self.answers:
            for query in answer.condensed:
                if id(query) not in seen:
                    seen.add(id(query))
                    out.append(query)
        return tuple(out)

    @property
    def condensed_labels(self) -> tuple[str, ...]:
        return tuple(q.name or q.describe() for q in self.condensed)

    @property
    def secondary(self) -> tuple[Query, ...]:
        seen: set[int] = set()
        out: list[Query] = []
        for answer in self.answers:
            for query in answer.secondary:
                if id(query) not in seen:
                    seen.add(id(query))
                    out.append(query)
        return tuple(out)

    @property
    def secondary_labels(self) -> tuple[str, ...]:
        return tuple(q.name or q.describe() for q in self.secondary)

    @property
    def total_time_ms(self) -> float:
        return sum(self.phase_times_ms.values())

    @property
    def degradation_level(self) -> str:
        """The ladder rung this report sits on: ``"full"`` or
        ``"partial"`` (a report can never be the ``"baseline"`` or
        ``"failed"`` rung -- those live on the
        :class:`~repro.robustness.outcomes.QuestionOutcome`)."""
        return "partial" if self.partial else "full"

    def is_empty(self) -> bool:
        return all(answer.is_empty() for answer in self.answers)

    def to_dict(self) -> dict:
        """JSON-ready view (the ``--json`` CLI report format)."""
        return {
            "answers": [answer.to_dict() for answer in self.answers],
            "phase_times_ms": dict(self.phase_times_ms),
            "total_time_ms": self.total_time_ms,
            "partial": self.partial,
            "degraded_reason": self.degraded_reason,
            "degradation_level": self.degradation_level,
        }

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines: list[str] = []
        for index, answer in enumerate(self.answers):
            lines.append(f"c-tuple {index}: {answer.ctuple!r}")
            if answer.no_compatible_data:
                lines.append("  no compatible source data")
            if answer.answer_not_missing:
                lines.append("  the requested answer is not missing")
            if answer.detailed:
                rendered = ", ".join(repr(e) for e in answer.detailed)
                lines.append(f"  detailed : {rendered}")
                lines.append(
                    "  condensed: "
                    + ", ".join(answer.condensed_labels)
                )
            elif not answer.no_compatible_data:
                lines.append("  detailed : (empty)")
            if answer.partial:
                lines.append("  (partial: execution budget exhausted)")
            if answer.secondary:
                lines.append(
                    "  secondary: " + ", ".join(answer.secondary_labels)
                )
        if self.partial:
            reason = self.degraded_reason or "execution budget exhausted"
            lines.append(f"PARTIAL RESULT: {reason}")
        return "\n".join(lines)


def merge_reports(reports: Iterable[NedExplainReport]) -> NedExplainReport:
    """Merge several reports (e.g. one per predicate disjunct)."""
    answers: list[WhyNotAnswer] = []
    phases: dict[str, float] = {}
    partial = False
    degraded_reason: str | None = None
    for report in reports:
        answers.extend(report.answers)
        for phase, value in report.phase_times_ms.items():
            phases[phase] = phases.get(phase, 0.0) + value
        if report.partial:
            partial = True
            degraded_reason = degraded_reason or report.degraded_reason
    return NedExplainReport(
        tuple(answers), phases, partial=partial,
        degraded_reason=degraded_reason,
    )
