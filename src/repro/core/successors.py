"""Valid successors of compatible tuples (Notation 2.1 / Alg. 3).

For one manipulation ``m`` with compatible input tuples
``m.Compatibles`` and output ``m.Output``, the *valid successors* are
the output tuples

* whose full (base) lineage is contained in ``D = Dir | InDir`` -- the
  validity requirement that fixes the baseline's "traced through
  foreign data" failures (use cases Crime8, Imdb2), and
* that directly succeed at least one compatible input tuple (some
  parent is in ``m.Compatibles``).

The module also tracks, per *direct compatible origin* (a tuple of
``Dir_tc``), whether its trace is still alive -- the information the
detailed answer (Def. 2.12) reports as ``(t_I, Q')`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..obs.trace import current_tracer
from ..relational.tuples import Tuple
from ..robustness.budget import current_context


@dataclass(frozen=True)
class SuccessorStep:
    """Outcome of one FindSuccessors application (Alg. 3)."""

    #: valid successors found in the output
    successors: tuple[Tuple, ...]
    #: compatible input tuples with no valid successor (TabQ's Blocked)
    blocked: tuple[Tuple, ...]
    #: Dir-origin tids alive in the compatible input
    origins_in: frozenset[str]
    #: Dir-origin tids still alive among the valid successors
    origins_out: frozenset[str]

    @property
    def died(self) -> frozenset[str]:
        """Origins whose trace ends at this manipulation."""
        return self.origins_in - self.origins_out


def find_successors(
    output: Sequence[Tuple],
    compatibles: Sequence[Tuple],
    valid_tids: frozenset[str],
    dir_tids: frozenset[str],
) -> SuccessorStep:
    """Compute the valid successors of *compatibles* in *output*.

    Mirrors Alg. 3: an output tuple is kept when its lineage lies
    within ``valid_tids`` (``Dir | InDir``) and it derives directly
    from a compatible input tuple.
    """
    context = current_context()
    if context is not None:
        # one validity + derivation check per output candidate, one
        # survival check per compatible input
        context.tick_comparisons(len(output) + len(compatibles))
    compatible_set = set(compatibles)
    successors: list[Tuple] = []
    for candidate in output:
        if not candidate.lineage <= valid_tids:
            continue
        if _derives_from_compatible(candidate, compatible_set):
            successors.append(candidate)

    survived: set[Tuple] = set()
    for successor in successors:
        for parent in successor.parents:
            if parent in compatible_set:
                survived.add(parent)
        if not successor.parents and successor in compatible_set:
            survived.add(successor)
    blocked = tuple(c for c in compatibles if c not in survived)

    origins_in = _origins(compatibles, dir_tids)
    origins_out = _origins(successors, dir_tids)
    tracer = current_tracer()
    if tracer is not None:
        metrics = tracer.metrics
        metrics.counter("successors.steps").inc()
        metrics.counter("successors.checks").inc(
            len(output) + len(compatibles)
        )
        metrics.counter("successors.found").inc(len(successors))
        metrics.counter("successors.blocked").inc(len(blocked))
    return SuccessorStep(
        successors=tuple(successors),
        blocked=blocked,
        origins_in=origins_in,
        origins_out=origins_out,
    )


def _derives_from_compatible(
    candidate: Tuple, compatible_set: set[Tuple]
) -> bool:
    if not candidate.parents:
        # leaves copy their input: the tuple is its own predecessor
        return candidate in compatible_set
    return any(parent in compatible_set for parent in candidate.parents)


def _origins(
    tuples: Iterable[Tuple], dir_tids: frozenset[str]
) -> frozenset[str]:
    """Dir-origin tids occurring in the lineage of *tuples*."""
    alive: set[str] = set()
    for t in tuples:
        alive |= t.lineage & dir_tids
    return frozenset(alive)
