"""Declarative pickyness (Defs. 2.9-2.11) -- the specification oracle.

NedExplain computes picky subqueries incrementally (Alg. 1-3).  This
module implements the *definitions* directly over a full
:class:`~repro.relational.evaluator.EvaluationResult`: transitive
successors (Def. 2.9), valid successors ``VS(Q, I, D, t)``
(Notation 2.1), picky manipulations (Def. 2.10) and picky queries
(Def. 2.11).

It exists so the test suite can check the algorithm against the
paper's formal semantics -- including Property 2.1 (at most one picky
subquery per compatible tuple).
"""

from __future__ import annotations

from typing import Iterable

from ..relational.algebra import Query, RelationLeaf
from ..relational.evaluator import EvaluationResult
from ..relational.tuples import Tuple


def transitive_predecessors(t: Tuple) -> set[Tuple]:
    """All tuples reachable through ``parents`` chains, incl. *t*."""
    seen: set[Tuple] = set()
    stack = [t]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(current.parents)
    return seen


def is_successor_wrt_query(t: Tuple, source: Tuple) -> bool:
    """Def. 2.9: *t* is a successor of *source* w.r.t. the query that
    produced it (composition of per-manipulation successor steps)."""
    return source in transitive_predecessors(t)


def valid_successors(
    node: Query,
    result: EvaluationResult,
    valid_tids: frozenset[str],
    source: Tuple,
) -> list[Tuple]:
    """``VS(Q, I, D, t)``: valid successors of *source* in the output
    of subquery *node* (Notation 2.1).

    A successor is valid when its full lineage lies within the tuple
    set ``D`` (given as base-tuple ids *valid_tids*).
    """
    out: list[Tuple] = []
    for candidate in result.output(node):
        if candidate == source or is_successor_wrt_query(candidate, source):
            if candidate.lineage <= valid_tids:
                out.append(candidate)
    return out


def is_picky_manipulation(
    node: Query,
    result: EvaluationResult,
    valid_tids: frozenset[str],
    source: Tuple,
) -> bool:
    """Def. 2.10: *node*'s manipulation has no valid successor of
    *source* in its output (for *source* in its input)."""
    inputs = result.flat_input(node)
    if source not in inputs:
        return False
    for candidate in result.output(node):
        if candidate.lineage <= valid_tids and (
            source in candidate.parents
            or (not candidate.parents and candidate == source)
        ):
            return False
    return True


def is_picky_query(
    node: Query,
    result: EvaluationResult,
    valid_tids: frozenset[str],
    source: Tuple,
) -> bool:
    """Def. 2.11: *node* is picky w.r.t. ``D`` and *source*.

    (1) the trace of *source* is still alive just below *node* (some
    valid successor exists in a child's output, or the source itself
    sits in the node's input for leaves/base relations), and (2) the
    top-level operator of *node* kills every such survivor.
    """
    if isinstance(node, RelationLeaf):
        # a leaf copies its input; it can never be picky
        return False
    alive_below: list[Tuple] = []
    for child in node.children:
        for candidate in result.output(child):
            is_alive = candidate == source or is_successor_wrt_query(
                candidate, source
            )
            if is_alive and candidate.lineage <= valid_tids:
                alive_below.append(candidate)
    if not alive_below:
        return False
    return not valid_successors(node, result, valid_tids, source)


def picky_subqueries(
    root: Query,
    result: EvaluationResult,
    valid_tids: frozenset[str],
    source: Tuple,
) -> list[Query]:
    """All subqueries picky for *source* (Property 2.1 says <= 1)."""
    return [
        node
        for node in root.postorder()
        if is_picky_query(node, result, valid_tids, source)
    ]


def trace_path(
    root: Query,
    result: EvaluationResult,
    valid_tids: frozenset[str],
    source: Tuple,
) -> list[tuple[Query, int]]:
    """Diagnostic: per subquery, how many valid successors survive.

    Useful in examples and debugging sessions to visualise where a
    compatible tuple's trace thins out and dies.
    """
    out: list[tuple[Query, int]] = []
    for node in root.postorder():
        out.append(
            (node, len(valid_successors(node, result, valid_tids, source)))
        )
    return out
