"""NedExplain core: query-based why-not provenance (the paper's
contribution).

Typical usage::

    from repro.core import (
        SPJASpec, JoinPair, canonicalize, NedExplain, parse_predicate,
    )

    spec = SPJASpec(
        aliases={"A": "A", "AB": "AB", "B": "B"},
        joins=[JoinPair("A.aid", "AB.aid"), JoinPair("AB.bid", "B.bid")],
        selections=[attr_cmp("A.dob", ">", -800)],
        group_by=("A.name",),
        aggregates=(AggregateCall("avg", "B.price", "ap"),),
    )
    canonical = canonicalize(spec, database.schema)
    report = NedExplain(canonical, database=database).explain(
        "((A.name: Homer, ap: $x1), $x1 > 25)"
    )
    print(report.summary())
"""

from .answers import (
    DetailedEntry,
    NedExplainReport,
    WhyNotAnswer,
    merge_reports,
)
from .canonical import (
    CanonicalQuery,
    JoinPair,
    QuerySpec,
    SPJASpec,
    UnionSpec,
    canonical_from_tree,
    canonicalize,
    is_at_or_above_breakpoint,
)
from .compatibility import (
    CompatibilitySets,
    CompatibleFinder,
    find_compatibles,
    tuple_matches_ctuple,
)
from .nedexplain import PHASES, NedExplain, NedExplainConfig, nedexplain
from .pickyness import (
    is_picky_manipulation,
    is_picky_query,
    is_successor_wrt_query,
    picky_subqueries,
    trace_path,
    transitive_predecessors,
    valid_successors,
)
from .successors import SuccessorStep, find_successors
from .tabq import TabEntry, TabQ
from .unrename import unrename_ctuple, unrename_predicate
from .whynot_question import (
    CTuple,
    Predicate,
    ctuple_with_condition,
    parse_predicate,
    why_not,
)

__all__ = [
    "CanonicalQuery",
    "CompatibilitySets",
    "CompatibleFinder",
    "CTuple",
    "DetailedEntry",
    "JoinPair",
    "NedExplain",
    "NedExplainConfig",
    "NedExplainReport",
    "PHASES",
    "Predicate",
    "QuerySpec",
    "SPJASpec",
    "SuccessorStep",
    "TabEntry",
    "TabQ",
    "UnionSpec",
    "WhyNotAnswer",
    "canonical_from_tree",
    "canonicalize",
    "ctuple_with_condition",
    "find_compatibles",
    "find_successors",
    "is_at_or_above_breakpoint",
    "is_picky_manipulation",
    "is_picky_query",
    "is_successor_wrt_query",
    "merge_reports",
    "nedexplain",
    "parse_predicate",
    "picky_subqueries",
    "trace_path",
    "transitive_predecessors",
    "tuple_matches_ctuple",
    "unrename_ctuple",
    "unrename_predicate",
    "valid_successors",
    "why_not",
]
