"""Tracing core: :class:`Span`, :class:`Tracer`, and the ambient hook.

The engine's hot layers are wired with lightweight instrumentation
points; when no tracer is installed each point costs one context-var
read and a ``None`` check (the same discipline as
:func:`repro.robustness.faults.fault_point`), so production runs with
tracing off are observationally free.  When a tracer *is* installed --
``with tracing() as tracer:`` -- every instrumented section becomes a
:class:`Span` in a parent/child tree:

======================  =================================================
category                emitted by
======================  =================================================
``run``                 :meth:`repro.core.nedexplain.NedExplain.explain`
                        (one root span per why-not question)
``phase``               each timed section of Algorithm 1, tagged with
                        the Fig. 5 phase name; phase wall-clock totals
                        (``report.phase_times_ms``) are *derived from
                        these spans*, so span sums and reported totals
                        agree by construction
``operator``            one span per algebra node application in
                        :func:`repro.relational.evaluator.evaluate`,
                        tagged with the node fingerprint, postorder
                        index, and input/output cardinalities; the
                        columnar engine
                        (:func:`repro.columnar.evaluate_columnar`)
                        emits one span per *batch* instead, adding
                        ``batch_index``/``batch_size``/``eval`` tags,
                        so a node's cardinality is the sum of its
                        spans within one evaluation serial
``compatible``          :meth:`repro.core.compatibility.CompatibleFinder.find`
``cache``               :meth:`repro.relational.evalcache.EvaluationCache.get_or_evaluate`
======================  =================================================

Each tracer owns a :class:`~repro.obs.metrics.MetricsRegistry`; the
instrumented layers feed it counters/histograms (cache hits, budget
ticks, fault firings) through the same ambient hook.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Mapping

from ..errors import ConfigurationError
from .clock import Clock, current_clock
from .metrics import MetricsRegistry


class Span:
    """One timed, tagged section of a traced run."""

    __slots__ = (
        "name",
        "category",
        "span_id",
        "parent_id",
        "start",
        "end",
        "tags",
    )

    def __init__(
        self,
        name: str,
        category: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        tags: dict | None = None,
    ):
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.tags: dict = tags or {}

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration_ms(self) -> float:
        if self.end is None:
            raise ConfigurationError(
                f"span {self.name!r} is still open; no duration yet"
            )
        return (self.end - self.start) * 1000.0

    def set_tag(self, key: str, value) -> None:
        self.tags[key] = value

    def __repr__(self) -> str:
        state = (
            f"{self.duration_ms:.3f}ms" if self.finished else "open"
        )
        return (
            f"Span({self.name!r}, cat={self.category!r}, {state}, "
            f"id={self.span_id}, parent={self.parent_id})"
        )


class Tracer:
    """Collects the spans and metrics of one traced run.

    Not thread-safe (the engine is single-threaded per question, like
    :class:`~repro.robustness.budget.ExecutionContext`): a tracer's
    span stack models *one* thread of execution.  Parallel batches
    therefore give every worker its own private tracer and fold the
    results back with :meth:`absorb` -- never share one tracer across
    threads.  Spans nest through an explicit stack: :meth:`start_span`
    parents the new span under the innermost open one.  Finished spans
    are kept in *completion* order; exporters sort by start time.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.clock = clock if clock is not None else current_clock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def start_span(
        self, name: str, category: str = "", **tags
    ) -> Span:
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            name=name,
            category=category,
            span_id=self._next_id,
            parent_id=parent,
            start=self.clock.perf_counter(),
            tags=tags or None,
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> Span:
        """Close *span* (and any deeper spans left open by an abort).

        An exception can unwind past open child spans; closing them at
        the same instant keeps the trace well-formed instead of losing
        the whole subtree.
        """
        if span not in self._stack:
            raise ConfigurationError(
                f"span {span.name!r} is not open on this tracer"
            )
        now = self.clock.perf_counter()
        while self._stack:
            top = self._stack.pop()
            top.end = now
            self.spans.append(top)
            if top is span:
                break
        return span

    @contextmanager
    def span(
        self, name: str, category: str = "", **tags
    ) -> Iterator[Span]:
        opened = self.start_span(name, category, **tags)
        try:
            yield opened
        finally:
            self.end_span(opened)

    # ------------------------------------------------------------------
    # Merging (parallel batches)
    # ------------------------------------------------------------------
    def absorb(self, other: "Tracer") -> None:
        """Fold a finished worker tracer into this one.

        The worker's spans are appended with their ids shifted past
        this tracer's id space (parent/child links preserved), and its
        metrics registry is merged through
        :meth:`~repro.obs.metrics.MetricsRegistry.absorb`.  Call this
        from the coordinating thread after the worker has finished --
        absorbing a tracer with open spans is a configuration error.
        """
        if other._stack:
            raise ConfigurationError(
                f"cannot absorb a tracer with {len(other._stack)} "
                "open span(s)"
            )
        offset = self._next_id
        for span in other.spans:
            span.span_id += offset
            if span.parent_id is not None:
                span.parent_id += offset
            self.spans.append(span)
        self._next_id = offset + other._next_id
        self.metrics.absorb(other.metrics.snapshot())

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> tuple[Span, ...]:
        return tuple(self._stack)

    def by_category(self, category: str) -> list[Span]:
        return [s for s in self.spans if s.category == category]

    def total_ms(self, category: str) -> float:
        return sum(s.duration_ms for s in self.by_category(category))

    def phase_totals_ms(self) -> dict[str, float]:
        """Summed duration of ``phase`` spans, keyed by phase name."""
        totals: dict[str, float] = {}
        for span in self.by_category("phase"):
            phase = span.tags.get("phase", span.name)
            totals[phase] = totals.get(phase, 0.0) + span.duration_ms
        return totals

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return (
            f"Tracer({len(self.spans)} finished, "
            f"{len(self._stack)} open, {len(self.metrics)} metrics)"
        )


# ---------------------------------------------------------------------------
# Ambient tracer
# ---------------------------------------------------------------------------
_TRACER: ContextVar[Tracer | None] = ContextVar(
    "repro_tracer", default=None
)


def current_tracer() -> Tracer | None:
    """The ambient :class:`Tracer`, or ``None`` when tracing is off."""
    return _TRACER.get()


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install a tracer (a fresh one unless given) for the block."""
    installed = tracer if tracer is not None else Tracer()
    token = _TRACER.set(installed)
    try:
        yield installed
    finally:
        _TRACER.reset(token)


class _NoopSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set_tag(self, key: str, value) -> None:
        return None


NOOP_SPAN = _NoopSpan()


def span(name: str, category: str = "", **tags):
    """Context manager: a span on the ambient tracer, or a no-op.

    The convenience entry point for cool paths; hot loops should hoist
    ``current_tracer()`` out of the loop and branch on ``None`` once.
    """
    tracer = _TRACER.get()
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, category, **tags)


def metric_counter(name: str, n: int = 1) -> None:
    """Increment a counter on the ambient tracer's registry (no-op
    when tracing is off)."""
    tracer = _TRACER.get()
    if tracer is not None:
        tracer.metrics.counter(name).inc(n)


def metric_observe(name: str, value: float) -> None:
    """Observe a histogram value on the ambient registry (no-op when
    tracing is off)."""
    tracer = _TRACER.get()
    if tracer is not None:
        tracer.metrics.histogram(name).observe(value)


def metrics_snapshot() -> dict[str, dict] | None:
    """Snapshot of the ambient registry, or ``None`` if tracing is off."""
    tracer = _TRACER.get()
    if tracer is None:
        return None
    return tracer.metrics.snapshot()
