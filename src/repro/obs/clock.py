"""Injectable clocks: one time source for the whole engine.

Every layer that measures time -- the execution budgets of
:mod:`repro.robustness.budget`, the phase accounting of
:mod:`repro.core.nedexplain`, the spans of :mod:`repro.obs.trace` --
reads it through the ambient :class:`Clock` installed here instead of
calling :mod:`time` directly.  Two payoffs:

* **determinism** -- tests install a :class:`ManualClock` and advance
  it explicitly, so deadline and tracing behaviour is reproducible
  without sleeping (the chaos and budget suites do);
* **consistency** -- span durations, phase totals, and budget
  deadlines are all measured against the *same* source, which is what
  makes "per-phase span durations sum to the reported total" a
  checkable invariant rather than a hope.

The ambient clock is a :class:`contextvars.ContextVar` (mirroring
:func:`repro.robustness.budget.execution_context`), defaulting to the
process :class:`SystemClock`; production code pays one context-var read
per measured section, nothing more.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from ..errors import ConfigurationError


class Clock:
    """A monotonic time source.

    ``monotonic`` is the coarse scheduling clock (budget deadlines);
    ``perf_counter`` is the high-resolution measurement clock (span
    durations, phase accounting).  The system clock keeps the two
    distinct exactly as :mod:`time` does; manual clocks collapse them
    into one controllable value.
    """

    def monotonic(self) -> float:
        raise NotImplementedError

    def perf_counter(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block until *seconds* have passed on this clock.

        Retry backoff (:class:`repro.robustness.resilience.RetryPolicy`)
        waits through this method rather than :func:`time.sleep`, so a
        test under a :class:`ManualClock` advances instantly and never
        sleeps for real.
        """
        raise NotImplementedError


class SystemClock(Clock):
    """The real wall clock (:func:`time.monotonic` and friends)."""

    def monotonic(self) -> float:
        return time.monotonic()

    def perf_counter(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def __repr__(self) -> str:
        return "SystemClock()"


class ManualClock(Clock):
    """A clock that only moves when told to.

    Tests install one via :func:`use_clock` and :meth:`advance` it past
    deadlines instead of sleeping::

        clock = ManualClock()
        with use_clock(clock):
            context = ExecutionContext(Budget(deadline_s=5.0))
            clock.advance(6.0)
            context.check_deadline()   # raises BudgetExceededError
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new reading."""
        if seconds < 0:
            raise ConfigurationError(
                f"cannot advance a clock by {seconds!r} seconds"
            )
        with self._lock:
            self._now += seconds
            return self._now

    def monotonic(self) -> float:
        return self._now

    def perf_counter(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        """Sleeping on a manual clock just advances it -- instantly."""
        if seconds > 0:
            self.advance(seconds)

    def fork(self) -> "ManualClock":
        """A new manual clock starting at this clock's current reading.

        Parallel batches give each question a private fork: virtual
        time becomes *per question*, so one question's retry backoff
        (which "sleeps" by advancing its clock) can never inflate a
        phase measured concurrently by another question.  All engine
        time consumers read differences, never absolute readings, so a
        fork is behaviourally indistinguishable from the parent as long
        as only its own question advances it -- which is exactly what
        makes a ``workers=N`` manual-clock run byte-identical to the
        sequential one.
        """
        return ManualClock(self.monotonic())

    def __repr__(self) -> str:
        return f"ManualClock(now={self._now:.6f})"


#: The process-wide default time source.
SYSTEM_CLOCK = SystemClock()

_CLOCK: ContextVar[Clock] = ContextVar("repro_clock", default=SYSTEM_CLOCK)


def current_clock() -> Clock:
    """The ambient :class:`Clock` (the system clock unless overridden)."""
    return _CLOCK.get()


@contextmanager
def use_clock(clock: Clock) -> Iterator[Clock]:
    """Install *clock* as the ambient time source for the block."""
    token = _CLOCK.set(clock)
    try:
        yield clock
    finally:
        _CLOCK.reset(token)


def monotonic() -> float:
    """Ambient-clock :func:`time.monotonic`."""
    return _CLOCK.get().monotonic()


def perf_counter() -> float:
    """Ambient-clock :func:`time.perf_counter`."""
    return _CLOCK.get().perf_counter()
