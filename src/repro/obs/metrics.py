"""Metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the numeric side of the observability subsystem: where
spans (:mod:`repro.obs.trace`) answer *where time went*, metrics answer
*how much work happened* -- cache hits, budget ticks, operator output
cardinalities, fault-site firings.  The instruments are deliberately
minimal (no labels, no exposition format) because their one consumer is
the snapshot exporter feeding ``--metrics`` and the bench artifacts.

Instruments are created lazily through the registry accessors, so
instrumentation sites never need registration boilerplate::

    registry.counter("cache.hits").inc()
    registry.histogram("evaluator.rows_out").observe(len(output))

Well-known names emitted by the resilience layer
(:mod:`repro.robustness.resilience` / :mod:`repro.robustness.breaker`):
``resilience.retries`` (+ per-site ``resilience.retries.<site>``)
counts retry attempts consumed; ``resilience.fallbacks.baseline`` /
``resilience.fallbacks.failed`` count degradation-ladder outcomes;
``breaker.opens`` (+ per-site) counts circuit-breaker trips and the
``breaker.state.<site>`` gauge holds the current state code
(0 closed, 1 half-open, 2 open).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Mapping, Sequence

from ..errors import ConfigurationError

#: Default histogram buckets: powers of ten from 1 to 1M -- wide enough
#: for row counts and comparison batches, small enough to stay flat.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)


class Counter:
    """A monotonically increasing count.

    ``inc`` is atomic under an internal lock (a bare ``+=`` is a
    read-modify-write that loses updates across threads)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {n})"
            )
        with self._lock:
            self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        # a single attribute store: already atomic, no lock needed
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A fixed-bucket histogram (cumulative-style bucket counts).

    ``buckets`` are the inclusive upper bounds; observations above the
    last bound land in the implicit overflow bucket.  Bucket counts are
    *per bucket* (not cumulative) internally; the snapshot reports them
    alongside ``count`` and ``sum`` so consumers can derive either view.
    """

    __slots__ = (
        "name", "buckets", "bucket_counts", "count", "sum", "_lock",
    )

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly "
                f"increasing and non-empty, got {buckets!r}"
            )
        self.name = name
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # + overflow
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, "
            f"sum={self.sum:.3f})"
        )


class MetricsRegistry:
    """Lazily-created named instruments, one flat namespace.

    A name is permanently bound to the first instrument kind that
    claimed it; asking for the same name as a different kind is a
    :class:`~repro.errors.ConfigurationError` (silent shadowing would
    corrupt the snapshot).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(
            name, Histogram, lambda: Histogram(name, buckets)
        )

    def snapshot(self) -> dict[str, dict]:
        """Flat, JSON-ready view of every instrument, sorted by name."""
        out: dict[str, dict] = {}
        with self._lock:
            instruments = dict(self._instruments)
        for name in sorted(instruments):
            instrument = instruments[name]
            if isinstance(instrument, Counter):
                out[name] = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {"type": "gauge", "value": instrument.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "mean": instrument.mean,
                    "buckets": list(instrument.buckets),
                    "bucket_counts": list(instrument.bucket_counts),
                }
        return out

    def absorb(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold one :meth:`snapshot` into this registry's instruments.

        Counters and histograms add; gauges take the snapshot's value
        (last write wins, matching :func:`merge_snapshots`).  The
        parallel executor uses this to merge each worker's private
        registry back into the batch caller's tracer, so a traced
        ``workers=N`` run reports the same totals one thread would.
        """
        for name, data in snapshot.items():
            kind = data["type"]
            if kind == "counter":
                self.counter(name).inc(int(data["value"]))
            elif kind == "gauge":
                self.gauge(name).set(data["value"])
            else:
                histogram = self.histogram(
                    name, buckets=tuple(data["buckets"])
                )
                if list(histogram.buckets) != list(data["buckets"]):
                    raise ConfigurationError(
                        f"cannot absorb histogram {name!r}: bucket "
                        "layout mismatch"
                    )
                with histogram._lock:
                    histogram.count += data["count"]
                    histogram.sum += data["sum"]
                    histogram.bucket_counts = [
                        a + b
                        for a, b in zip(
                            histogram.bucket_counts,
                            data["bucket_counts"],
                        )
                    ]

    def reset(self) -> None:
        """Drop every instrument (names become free again)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"


def counter_values(
    snapshot: Mapping[str, Mapping], prefix: str | None = None
) -> dict[str, int]:
    """The counter subset of a :meth:`MetricsRegistry.snapshot`.

    Returns ``{name: value}`` for every counter instrument, optionally
    restricted to names starting with *prefix*.  Counters are the
    deterministic face of the metrics registry -- row/comparison ticks,
    cache hits and misses, traversal steps -- so this is the projection
    the benchmark regression gate (:mod:`repro.bench.gate`) compares
    exactly, immune to wall-clock jitter.
    """
    return {
        name: int(data["value"])
        for name, data in snapshot.items()
        if data.get("type") == "counter"
        and (prefix is None or name.startswith(prefix))
    }


def merge_snapshots(
    snapshots: Sequence[Mapping[str, Mapping]],
) -> dict[str, dict]:
    """Combine several snapshots (counters/histograms add, gauges keep
    the last value) -- used by the bench runner to aggregate runs."""
    out: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, data in snapshot.items():
            if name not in out:
                out[name] = {k: (list(v) if isinstance(v, list) else v)
                             for k, v in data.items()}
                continue
            merged = out[name]
            if merged["type"] != data["type"]:
                raise ConfigurationError(
                    f"cannot merge metric {name!r}: kind mismatch "
                    f"({merged['type']} vs {data['type']})"
                )
            if data["type"] == "counter":
                merged["value"] += data["value"]
            elif data["type"] == "gauge":
                merged["value"] = data["value"]
            else:
                if list(merged["buckets"]) != list(data["buckets"]):
                    raise ConfigurationError(
                        f"cannot merge histogram {name!r}: "
                        "bucket layout mismatch"
                    )
                merged["count"] += data["count"]
                merged["sum"] += data["sum"]
                merged["bucket_counts"] = [
                    a + b
                    for a, b in zip(
                        merged["bucket_counts"], data["bucket_counts"]
                    )
                ]
                merged["mean"] = (
                    merged["sum"] / merged["count"]
                    if merged["count"]
                    else 0.0
                )
    return out
