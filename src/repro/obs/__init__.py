"""Observability subsystem: tracing, metrics, machine-readable runs.

The paper's evaluation is a phase-wise runtime breakdown of
Algorithm 1 (Fig. 5/6); instrumented provenance systems -- PUG's
inspectable middleware, the provenance-based debugger of
Diestelkämper & Herschel -- treat that kind of visibility as a product
feature, not an afterthought.  This package is the engine's equivalent:

* :mod:`~repro.obs.clock` -- the injectable time source shared by
  budgets, phase accounting, and spans (deterministic tests, one
  consistent clock per run);
* :mod:`~repro.obs.trace` -- :class:`Span` / :class:`Tracer` with an
  ambient context-var hook and a strict no-op fast path when disabled;
* :mod:`~repro.obs.metrics` -- counters, gauges, fixed-bucket
  histograms behind a lazily-populated registry;
* :mod:`~repro.obs.export` -- JSON-lines trace artifacts, Chrome-trace
  conversion, text-tree rendering, metrics snapshots.

Typical use::

    from repro.obs import tracing, write_trace_jsonl

    with tracing() as tracer:
        report = engine.explain("(A.name: Homer)")
    write_trace_jsonl(tracer, "run.trace.jsonl")
"""

from .clock import (
    SYSTEM_CLOCK,
    Clock,
    ManualClock,
    SystemClock,
    current_clock,
    monotonic,
    perf_counter,
    use_clock,
)
from .export import (
    TRACE_FORMAT_VERSION,
    read_trace_jsonl,
    render_trace,
    span_record,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
    write_trace_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_values,
    merge_snapshots,
)
from .trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    current_tracer,
    metric_counter,
    metric_observe,
    metrics_snapshot,
    span,
    tracing,
)

__all__ = [
    "Clock",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "NOOP_SPAN",
    "SYSTEM_CLOCK",
    "Span",
    "SystemClock",
    "TRACE_FORMAT_VERSION",
    "Tracer",
    "counter_values",
    "current_clock",
    "current_tracer",
    "merge_snapshots",
    "metric_counter",
    "metric_observe",
    "metrics_snapshot",
    "monotonic",
    "perf_counter",
    "read_trace_jsonl",
    "render_trace",
    "span",
    "span_record",
    "to_chrome_trace",
    "tracing",
    "use_clock",
    "write_chrome_trace",
    "write_metrics_json",
    "write_trace_jsonl",
]
