"""Exporters: JSON-lines traces, Chrome traces, text trees, snapshots.

Four consumers, four formats, one :class:`~repro.obs.trace.Tracer`:

* :func:`write_trace_jsonl` / :func:`read_trace_jsonl` -- the
  machine-readable run artifact.  Line 1 is a header record, then one
  record per span (start order), then one trailing metrics record; the
  reader validates the layout, so "the trace parses" is a real check,
  not just ``json.loads`` succeeding line by line.
* :func:`to_chrome_trace` / :func:`write_chrome_trace` -- the same
  spans as ``chrome://tracing`` / Perfetto complete events (``ph: X``,
  microsecond timestamps).
* :func:`render_trace` -- an indented text tree for terminals, the
  ``--trace``-less quick look.
* :func:`write_metrics_json` -- the flat metrics snapshot.

All durations are wall-clock milliseconds measured on the tracer's
:class:`~repro.obs.clock.Clock`; timestamps are offsets from the
earliest span so artifacts from different runs diff cleanly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import ConfigurationError
from .trace import Span, Tracer

#: JSONL artifact format version (bump on layout changes).
TRACE_FORMAT_VERSION = 1


def _sorted_spans(tracer: Tracer) -> list[Span]:
    open_count = len(tracer.open_spans)
    if open_count:
        raise ConfigurationError(
            f"cannot export a trace with {open_count} open span(s); "
            "close them (or let the tracing() block exit) first"
        )
    return sorted(tracer.spans, key=lambda s: (s.start, s.span_id))


def _epoch(spans: list[Span]) -> float:
    return spans[0].start if spans else 0.0


def span_record(span: Span, epoch: float) -> dict[str, Any]:
    """One span as a JSON-ready record (times relative to *epoch*)."""
    record: dict[str, Any] = {
        "kind": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "category": span.category,
        "start_ms": (span.start - epoch) * 1000.0,
        "duration_ms": span.duration_ms,
    }
    if span.tags:
        record["tags"] = dict(span.tags)
    return record


def write_trace_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Write the JSON-lines trace artifact; returns the path."""
    spans = _sorted_spans(tracer)
    epoch = _epoch(spans)
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        header = {
            "kind": "header",
            "format": "repro.obs.trace",
            "version": TRACE_FORMAT_VERSION,
            "spans": len(spans),
        }
        handle.write(json.dumps(header) + "\n")
        for span in spans:
            handle.write(
                json.dumps(span_record(span, epoch), default=str) + "\n"
            )
        footer = {
            "kind": "metrics",
            "metrics": tracer.metrics.snapshot(),
        }
        handle.write(json.dumps(footer) + "\n")
    return target


def read_trace_jsonl(
    path: str | Path,
) -> tuple[list[dict], dict[str, dict]]:
    """Parse and validate a JSONL trace; returns (spans, metrics).

    Raises :class:`~repro.errors.ConfigurationError` on a malformed
    artifact: missing/at-wrong-position header, span count mismatch,
    records missing required fields, or a dangling parent reference.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ConfigurationError(f"trace file {path} is empty")
    try:
        records = [json.loads(line) for line in lines]
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"trace file {path} is not valid JSON-lines: {exc}"
        ) from exc
    header = records[0]
    if (
        header.get("kind") != "header"
        or header.get("format") != "repro.obs.trace"
    ):
        raise ConfigurationError(
            f"trace file {path} does not start with a repro.obs.trace "
            "header record"
        )
    if records[-1].get("kind") != "metrics":
        raise ConfigurationError(
            f"trace file {path} does not end with a metrics record"
        )
    spans = records[1:-1]
    if any(r.get("kind") != "span" for r in spans):
        raise ConfigurationError(
            f"trace file {path} contains non-span body records"
        )
    if header.get("spans") != len(spans):
        raise ConfigurationError(
            f"trace file {path} header announces {header.get('spans')} "
            f"spans but carries {len(spans)}"
        )
    required = {"id", "name", "category", "start_ms", "duration_ms"}
    ids = set()
    for record in spans:
        missing = required - record.keys()
        if missing:
            raise ConfigurationError(
                f"span record {record.get('id')!r} is missing "
                f"{sorted(missing)}"
            )
        ids.add(record["id"])
    for record in spans:
        parent = record.get("parent")
        if parent is not None and parent not in ids:
            raise ConfigurationError(
                f"span {record['id']} references unknown parent "
                f"{parent}"
            )
    return spans, records[-1]["metrics"]


# ---------------------------------------------------------------------------
# Chrome trace (chrome://tracing, Perfetto)
# ---------------------------------------------------------------------------
def to_chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """The trace as a Chrome/Perfetto ``traceEvents`` document."""
    spans = _sorted_spans(tracer)
    epoch = _epoch(spans)
    events = []
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": span.category or "repro",
                "ph": "X",
                "ts": (span.start - epoch) * 1_000_000.0,
                "dur": span.duration_ms * 1000.0,
                "pid": 1,
                "tid": 1,
                "args": {
                    str(k): v for k, v in sorted(span.tags.items())
                },
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"format": "repro.obs.trace"},
    }


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write the Chrome/Perfetto trace document; returns the path."""
    target = Path(path)
    target.write_text(
        json.dumps(to_chrome_trace(tracer), indent=1, default=str),
        encoding="utf-8",
    )
    return target


# ---------------------------------------------------------------------------
# Text tree
# ---------------------------------------------------------------------------
def render_trace(
    tracer: Tracer, max_tag_chars: int = 60
) -> str:
    """Indented text tree of the trace (parents before children)."""
    spans = _sorted_spans(tracer)
    if not spans:
        return "(empty trace)"
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        tags = ", ".join(
            f"{k}={v}" for k, v in sorted(span.tags.items())
        )
        if len(tags) > max_tag_chars:
            tags = tags[: max_tag_chars - 3] + "..."
        suffix = f"  [{tags}]" if tags else ""
        label = (
            f"{span.category}:{span.name}"
            if span.category
            else span.name
        )
        lines.append(
            f"{'  ' * depth}{label}  {span.duration_ms:.3f} ms{suffix}"
        )
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Metrics snapshot
# ---------------------------------------------------------------------------
def _prometheus_name(name: str) -> str:
    """Map a dotted instrument name onto the Prometheus charset."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_"


def render_prometheus(snapshot: dict[str, dict]) -> str:
    """A :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` as
    Prometheus text exposition (version 0.0.4).

    Dots become underscores (``service.responses.429`` ->
    ``service_responses_429``); histograms expand into the
    ``_bucket``/``_sum``/``_count`` triple with cumulative ``le``
    labels.  The service's ``/metrics?format=prometheus`` endpoint
    serves exactly this text, so any standard scraper can watch a
    long-lived why-not server without a JSON shim.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        record = snapshot[name]
        kind = record.get("type")
        metric = _prometheus_name(name)
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {record['value']}")
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            buckets = record.get("buckets", [])
            counts = record.get("bucket_counts", [])
            for bound, count in zip(buckets, counts):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{bound}"}} {cumulative}'
                )
            lines.append(
                f'{metric}_bucket{{le="+Inf"}} {record["count"]}'
            )
            lines.append(f"{metric}_sum {record['sum']}")
            lines.append(f"{metric}_count {record['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def write_metrics_json(tracer: Tracer, path: str | Path) -> Path:
    """Write the flat metrics snapshot as a JSON document."""
    target = Path(path)
    target.write_text(
        json.dumps(tracer.metrics.snapshot(), indent=2, sort_keys=True),
        encoding="utf-8",
    )
    return target
