"""Lineage utilities (Sec. 2.3 of the paper; Cui & Widom lineage).

The evaluator (see :mod:`repro.relational.evaluator`) already attaches
to every derived tuple its direct predecessors (``parents``) and its
base lineage (``lineage``).  This module provides the derived notions
the paper builds on top:

* ``lineage(t)`` w.r.t. the manipulation that produced ``t`` -- the
  direct predecessors, presented as a set of typed tuples;
* successor / predecessor relationships (Def. 2.9);
* how-provenance style rendering (used in Table 2 of the paper).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .tuples import Tuple


def direct_lineage(t: Tuple) -> frozenset[Tuple]:
    """The lineage of *t* w.r.t. its producing manipulation.

    For a base tuple this is the tuple itself (the lineage of a stored
    tuple is its own singleton).
    """
    if t.parents:
        return frozenset(t.parents)
    return frozenset((t,))


def base_lineage(t: Tuple) -> frozenset[str]:
    """The identifiers of the base tuples *t* derives from."""
    return t.lineage


def is_successor(candidate: Tuple, source: Tuple) -> bool:
    """True when *candidate* is a successor of *source* w.r.t. the
    manipulation that produced *candidate* (Sec. 2.3).

    ``source`` must be a direct predecessor: it occurs in the lineage of
    ``candidate`` w.r.t. that manipulation.
    """
    return source in candidate.parents or (
        not candidate.parents and candidate == source
    )


def successors_in(
    output: Iterable[Tuple], source: Tuple
) -> list[Tuple]:
    """All tuples of *output* that are successors of *source*."""
    return [t for t in output if is_successor(t, source)]


def descends_from(candidate: Tuple, base_tid: str) -> bool:
    """True when base tuple *base_tid* is in *candidate*'s lineage.

    This is the transitive successor notion of Def. 2.9 projected onto
    base tuples: ``candidate`` is a (plain) successor of the base tuple
    w.r.t. the whole query iff the base tuple id occurs in its lineage.
    """
    return base_tid in t_lineage(candidate)


def t_lineage(t: Tuple) -> frozenset[str]:
    """Alias of :func:`base_lineage` kept close to the paper's wording."""
    return t.lineage


def lineage_within(t: Tuple, allowed: frozenset[str]) -> bool:
    """True when the full lineage of *t* is contained in *allowed*.

    This is the *validity* requirement of Notation 2.1: a successor is
    valid w.r.t. a tuple set ``D`` iff its lineage is included in ``D``.
    """
    return t.lineage <= allowed


def how_provenance(t: Tuple) -> str:
    """Render *t*'s derivation as a compact how-provenance string."""
    return t.how_provenance()


def format_output(tuples: Sequence[Tuple]) -> str:
    """Human-readable rendering of an operator output with provenance."""
    if not tuples:
        return "(empty)"
    lines = []
    for t in tuples:
        pairs = ", ".join(
            f"{attr}={value!r}" for attr, value in sorted(t.items())
        )
        lines.append(f"  {t.how_provenance()}: ({pairs})")
    return "\n".join(lines)
