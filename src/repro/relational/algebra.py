"""Query algebra of Def. 2.2: unions of SPJA queries as explicit trees.

A query is a tree whose leaves are relation aliases (``[R]``) and whose
internal nodes are the operators

* ``Join(left, right, nu)``   -- ``[Q1] |><|_nu [Q2]``
* ``Project(child, W)``       -- ``pi_W [Q1]``
* ``Select(child, C)``        -- ``sigma_C [Q1]``
* ``Aggregate(child, G, F)``  -- ``alpha_{G,F} [Q1]``
* ``Union(left, right, nu)``  -- ``[Q1] U_nu [Q2]``

Every node doubles as the *manipulation* ``m_Q`` of Sec. 2.3: its
:meth:`Query.apply` method evaluates the operator on explicit input
tuple lists, producing output tuples whose ``parents`` are their direct
predecessors and whose ``lineage`` is the union of the parents' --
exactly the successor/lineage structure Defs. 2.9-2.11 trace.

Nodes validate themselves on construction (disjoint input schemas,
well-typed projections/renamings/aggregations), so an ill-formed tree
fails fast instead of mis-evaluating.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import QueryError, SchemaError
from ..robustness.budget import current_context
from .aggregates import AggregateCall, check_distinct_aliases
from .conditions import (
    And,
    Attr,
    Comparison,
    Condition,
    Const,
    FalseCondition,
    Or,
    TrueCondition,
    Var,
)
from .renaming import Renaming
from .schema import RelationSchema, check_disjoint
from .tuples import Tuple, Value


def _tick_comparisons(n: int) -> None:
    """Charge *n* tuple comparisons to the ambient execution budget.

    Raises :class:`~repro.errors.BudgetExceededError` when the limit is
    crossed -- this is what contains a runaway operator *mid-loop*
    instead of only between operators.
    """
    if n:
        context = current_context()
        if context is not None:
            context.tick_comparisons(n)


def _dedupe(tuples: Iterable[Tuple]) -> list[Tuple]:
    """Drop duplicate (values, lineage) derivations, keeping order."""
    seen: set[Tuple] = set()
    out: list[Tuple] = []
    for t in tuples:
        if t not in seen:
            seen.add(t)
            out.append(t)
    return out


class Query:
    """Abstract base of all query-tree nodes.

    Attributes
    ----------
    name:
        Optional display label (the paper's ``m_Qi`` / ``m0 .. mk``);
        assigned during canonicalization / TabQ construction.
    """

    #: Operator tag; leaves use ``"relation schema"`` as in Alg. 1.
    op: str = "?"

    def __init__(self) -> None:
        self.name: str | None = None
        self._target_type: frozenset[str] | None = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def children(self) -> tuple["Query", ...]:
        """Direct child subqueries."""
        raise NotImplementedError

    @property
    def target_type(self) -> frozenset[str]:
        """The target type (output attributes) of the query."""
        if self._target_type is None:
            self._target_type = self._compute_target_type()
        return self._target_type

    def _compute_target_type(self) -> frozenset[str]:
        raise NotImplementedError

    @property
    def input_aliases(self) -> frozenset[str]:
        """The input schema ``S_Q`` as a set of relation aliases."""
        out: set[str] = set()
        for leaf in self.leaves():
            out.add(leaf.alias)
        return frozenset(out)

    def leaves(self) -> tuple["RelationLeaf", ...]:
        """All relation leaves, left to right."""
        if isinstance(self, RelationLeaf):
            return (self,)
        result: list[RelationLeaf] = []
        for child in self.children:
            result.extend(child.leaves())
        return tuple(result)

    def postorder(self) -> Iterator["Query"]:
        """Yield all nodes bottom-up, children before parents."""
        for child in self.children:
            yield from child.postorder()
        yield self

    def subqueries(self) -> tuple["Query", ...]:
        """All subqueries of this query, including itself."""
        return tuple(self.postorder())

    def is_subquery_of(self, other: "Query") -> bool:
        """True when this node occurs in *other*'s tree (or is it)."""
        return any(node is self for node in other.postorder())

    def contains(self, other: "Query") -> bool:
        """True when *other* occurs in this tree (or is this node)."""
        return other.is_subquery_of(self)

    def parent_of(self, node: "Query") -> "Query | None":
        """Return the parent of *node* within this tree, if any."""
        for candidate in self.postorder():
            for child in candidate.children:
                if child is node:
                    return candidate
        return None

    def depth_of(self, node: "Query") -> int:
        """Depth of *node* in this tree (the root having level 0)."""

        def walk(current: Query, depth: int) -> int | None:
            if current is node:
                return depth
            for child in current.children:
                found = walk(child, depth + 1)
                if found is not None:
                    return found
            return None

        depth = walk(self, 0)
        if depth is None:
            raise QueryError("node is not part of this query tree")
        return depth

    # ------------------------------------------------------------------
    # Evaluation (the manipulation m_Q of Sec. 2.3)
    # ------------------------------------------------------------------
    def apply(self, inputs: Sequence[Sequence[Tuple]]) -> list[Tuple]:
        """Evaluate this single operator on explicit child outputs.

        ``inputs`` holds one tuple list per child (leaves receive their
        stored relation instance as single input).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line operator description (used in answers/reports)."""
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        """Multi-line, indented rendering of the whole tree."""
        pad = "  " * indent
        tag = f"{self.name}: " if self.name else ""
        lines = [f"{pad}{tag}{self.describe()}"]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        tag = f"{self.name}: " if self.name else ""
        return f"<{tag}{self.describe()}>"


class RelationLeaf(Query):
    """A leaf ``[R]``: a relation alias with its (aliased) schema."""

    op = "relation schema"

    def __init__(self, schema: RelationSchema):
        super().__init__()
        self.schema = schema
        self.name = schema.name

    @property
    def alias(self) -> str:
        """The relation alias this leaf reads."""
        return self.schema.name

    @property
    def children(self) -> tuple[Query, ...]:
        return ()

    def _compute_target_type(self) -> frozenset[str]:
        return self.schema.type

    def apply(self, inputs: Sequence[Sequence[Tuple]]) -> list[Tuple]:
        if len(inputs) != 1:
            raise QueryError("a relation leaf takes exactly one input")
        return _dedupe(inputs[0])

    def describe(self) -> str:
        return f"[{self.alias}]"


class Select(Query):
    """A selection ``sigma_C [Q1]``."""

    op = "sigma"

    def __init__(self, child: Query, condition: Condition):
        super().__init__()
        if condition.variables():
            raise QueryError(
                "selection conditions must not contain variables"
            )
        unknown = condition.attributes() - child.target_type
        if unknown:
            raise QueryError(
                f"selection references attributes {sorted(unknown)} "
                "outside the child's target type"
            )
        self.child = child
        self.condition = condition

    @property
    def children(self) -> tuple[Query, ...]:
        return (self.child,)

    def _compute_target_type(self) -> frozenset[str]:
        return self.child.target_type

    def apply(self, inputs: Sequence[Sequence[Tuple]]) -> list[Tuple]:
        (child_tuples,) = inputs
        _tick_comparisons(len(child_tuples))
        out = []
        for t in child_tuples:
            if self.condition.evaluate(t):
                out.append(
                    Tuple(t.values, lineage=t.lineage, parents=(t,))
                )
        return _dedupe(out)

    def describe(self) -> str:
        return f"sigma[{self.condition!r}]"


class Project(Query):
    """A projection ``pi_W [Q1]``."""

    op = "pi"

    def __init__(self, child: Query, attributes: Iterable[str]):
        super().__init__()
        attrs = tuple(attributes)
        if not attrs:
            raise QueryError("projection must keep at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise QueryError(f"projection has duplicate attributes {attrs}")
        unknown = set(attrs) - child.target_type
        if unknown:
            raise QueryError(
                f"projection references attributes {sorted(unknown)} "
                "outside the child's target type"
            )
        self.child = child
        self.attributes = attrs

    @property
    def children(self) -> tuple[Query, ...]:
        return (self.child,)

    def _compute_target_type(self) -> frozenset[str]:
        return frozenset(self.attributes)

    def apply(self, inputs: Sequence[Sequence[Tuple]]) -> list[Tuple]:
        (child_tuples,) = inputs
        return _dedupe(t.project(self.attributes) for t in child_tuples)

    def describe(self) -> str:
        return f"pi[{', '.join(self.attributes)}]"


class Join(Query):
    """An equi-join ``[Q1] |><|_nu [Q2]`` via a renaming (Def. 2.2).

    The renaming pairs ``(A1, A2) -> Anew`` act as join conditions; the
    output exposes the shared value under ``Anew`` and maps every other
    attribute through ``nu`` (which is the identity for them).  An empty
    renaming yields the cross product.
    """

    op = "join"

    def __init__(self, left: Query, right: Query, renaming: Renaming):
        super().__init__()
        check_disjoint(left.input_aliases, right.input_aliases)
        overlap = left.target_type & right.target_type
        if overlap:
            raise QueryError(
                f"joined subqueries share target attributes "
                f"{sorted(overlap)}; rename first"
            )
        renaming.validate_against(left.target_type, right.target_type)
        self.left = left
        self.right = right
        self.renaming = renaming

    @property
    def children(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def _compute_target_type(self) -> frozenset[str]:
        return self.renaming.apply_to_type(
            self.left.target_type
        ) | self.renaming.apply_to_type(self.right.target_type)

    def apply(self, inputs: Sequence[Sequence[Tuple]]) -> list[Tuple]:
        left_tuples, right_tuples = inputs
        left_keys = tuple(t.left for t in self.renaming)
        right_keys = tuple(t.right for t in self.renaming)
        left_map = self.renaming.left_mapping(self.left.target_type)
        right_map = self.renaming.right_mapping(self.right.target_type)

        # Hash join on the renaming pairs (cross product when empty).
        index: dict[tuple[Value, ...], list[Tuple]] = {}
        _tick_comparisons(len(right_tuples))
        for rt in right_tuples:
            key = tuple(rt[a] for a in right_keys)
            if any(v is None for v in key):
                continue  # SQL: NULL never joins
            index.setdefault(key, []).append(rt)

        out: list[Tuple] = []
        for lt in left_tuples:
            key = tuple(lt[a] for a in left_keys)
            if any(v is None for v in key):
                continue
            matches = index.get(key, ())
            # per-probe tick: bounds a runaway (e.g. accidental cross)
            # join inside this very loop, not only after it returns
            _tick_comparisons(1 + len(matches))
            for rt in matches:
                values: dict[str, Value] = {}
                for attr, value in lt.items():
                    values[left_map.get(attr, attr)] = value
                for attr, value in rt.items():
                    new_name = right_map.get(attr, attr)
                    if new_name in values:
                        continue  # shared join attribute, equal value
                    values[new_name] = value
                out.append(
                    Tuple(
                        values,
                        lineage=lt.lineage | rt.lineage,
                        parents=(lt, rt),
                    )
                )
        return _dedupe(out)

    def describe(self) -> str:
        if not self.renaming.triples:
            return "join[cross]"
        conds = ", ".join(
            f"{t.left}={t.right}->{t.new}" for t in self.renaming
        )
        return f"join[{conds}]"


class Aggregate(Query):
    """An aggregation ``alpha_{G,F} [Q1]`` (Def. 2.2, item 3)."""

    op = "alpha"

    def __init__(
        self,
        child: Query,
        group_by: Iterable[str],
        calls: Sequence[AggregateCall],
    ):
        super().__init__()
        group = tuple(group_by)
        if len(set(group)) != len(group):
            raise QueryError(f"duplicate grouping attributes {group}")
        unknown = set(group) - child.target_type
        if unknown:
            raise QueryError(
                f"grouping references attributes {sorted(unknown)} "
                "outside the child's target type"
            )
        calls = tuple(calls)
        if not calls and not group:
            raise QueryError("aggregation needs grouping or aggregates")
        check_distinct_aliases(calls)
        for call in calls:
            if call.attribute not in child.target_type:
                raise QueryError(
                    f"aggregate input {call.attribute!r} is outside the "
                    "child's target type"
                )
            if call.alias in child.target_type or call.alias in group:
                raise QueryError(
                    f"aggregate output {call.alias!r} clashes with an "
                    "existing attribute"
                )
        self.child = child
        self.group_by = group
        self.calls = calls

    @property
    def children(self) -> tuple[Query, ...]:
        return (self.child,)

    @property
    def aggregated_attributes(self) -> frozenset[str]:
        """The fresh attributes ``Agg = {A'1, ..., A'n}``."""
        return frozenset(call.alias for call in self.calls)

    @property
    def needed_attributes(self) -> frozenset[str]:
        """``G union {A1, ..., An}``: what the breakpoint V must expose."""
        return frozenset(self.group_by) | frozenset(
            call.attribute for call in self.calls
        )

    def _compute_target_type(self) -> frozenset[str]:
        return frozenset(self.group_by) | self.aggregated_attributes

    def apply(self, inputs: Sequence[Sequence[Tuple]]) -> list[Tuple]:
        (child_tuples,) = inputs
        return self.aggregate_tuples(child_tuples)

    def aggregate_tuples(self, tuples: Sequence[Tuple]) -> list[Tuple]:
        """Group and aggregate an explicit tuple list.

        Exposed separately because NedExplain re-applies the aggregation
        to intermediate compatible-tuple sets when checking
        ``tc.cond_alpha`` (Def. 2.12, second part).
        """
        _tick_comparisons(len(tuples))
        groups: dict[tuple[Value, ...], list[Tuple]] = {}
        order: list[tuple[Value, ...]] = []
        for t in tuples:
            key = tuple(t[a] for a in self.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(t)
        if not self.group_by and not tuples:
            # SQL: aggregation without GROUP BY over the empty input
            # still yields one row (count = 0, other aggregates NULL).
            groups[()] = []
            order.append(())
        out: list[Tuple] = []
        for key in order:
            group = groups[key]
            values: dict[str, Value] = dict(zip(self.group_by, key))
            for call in self.calls:
                values[call.alias] = call.compute(group)
            lineage: set[str] = set()
            for member in group:
                lineage |= member.lineage
            out.append(
                Tuple(values, lineage=lineage, parents=tuple(group))
            )
        return _dedupe(out)

    def describe(self) -> str:
        calls = ", ".join(repr(c) for c in self.calls)
        return f"alpha[group={list(self.group_by)}; {calls}]"


class Union(Query):
    """A union ``[Q1] U_nu [Q2]`` (Def. 2.2, item 4)."""

    op = "union"

    def __init__(self, left: Query, right: Query, renaming: Renaming):
        super().__init__()
        check_disjoint(left.input_aliases, right.input_aliases)
        renaming.validate_against(left.target_type, right.target_type)
        left_renamed = renaming.apply_to_type(left.target_type)
        right_renamed = renaming.apply_to_type(right.target_type)
        if left_renamed != right_renamed:
            raise QueryError(
                "union branches have incompatible renamed types: "
                f"{sorted(left_renamed)} vs {sorted(right_renamed)}"
            )
        self.left = left
        self.right = right
        self.renaming = renaming

    @property
    def children(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def _compute_target_type(self) -> frozenset[str]:
        return self.renaming.apply_to_type(self.left.target_type)

    def apply(self, inputs: Sequence[Sequence[Tuple]]) -> list[Tuple]:
        left_tuples, right_tuples = inputs
        _tick_comparisons(len(left_tuples) + len(right_tuples))
        left_map = self.renaming.left_mapping(self.left.target_type)
        right_map = self.renaming.right_mapping(self.right.target_type)
        out: list[Tuple] = []
        for t in left_tuples:
            values = {
                left_map.get(attr, attr): value for attr, value in t.items()
            }
            out.append(Tuple(values, lineage=t.lineage, parents=(t,)))
        for t in right_tuples:
            values = {
                right_map.get(attr, attr): value for attr, value in t.items()
            }
            out.append(Tuple(values, lineage=t.lineage, parents=(t,)))
        return _dedupe(out)

    def describe(self) -> str:
        return "union"


class Difference(Query):
    """A set difference ``[Q1] -_nu [Q2]`` (extension).

    Set difference is the operator the paper explicitly defers to
    future work (Sec. 5): answering why-not questions over it requires
    tracing data that must reach the result *and* data that must not.
    The substrate supports it fully -- evaluation, lineage, and target
    typing mirror :class:`Union` -- and NedExplain handles it as an
    extension (see ``repro.core.difference_notes`` in the docs): an
    output tuple succeeds a left-input tuple; a left tuple whose value
    appears on the right has no successor, making the difference node
    picky for it.
    """

    op = "difference"

    def __init__(self, left: Query, right: Query, renaming: Renaming):
        super().__init__()
        check_disjoint(left.input_aliases, right.input_aliases)
        renaming.validate_against(left.target_type, right.target_type)
        left_renamed = renaming.apply_to_type(left.target_type)
        right_renamed = renaming.apply_to_type(right.target_type)
        if left_renamed != right_renamed:
            raise QueryError(
                "difference branches have incompatible renamed types: "
                f"{sorted(left_renamed)} vs {sorted(right_renamed)}"
            )
        self.left = left
        self.right = right
        self.renaming = renaming

    @property
    def children(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def _compute_target_type(self) -> frozenset[str]:
        return self.renaming.apply_to_type(self.left.target_type)

    def apply(self, inputs: Sequence[Sequence[Tuple]]) -> list[Tuple]:
        left_tuples, right_tuples = inputs
        _tick_comparisons(len(left_tuples) + len(right_tuples))
        left_map = self.renaming.left_mapping(self.left.target_type)
        right_map = self.renaming.right_mapping(self.right.target_type)
        blocked_values: set[frozenset] = set()
        for t in right_tuples:
            values = {
                right_map.get(attr, attr): value
                for attr, value in t.items()
            }
            blocked_values.add(frozenset(values.items()))
        out: list[Tuple] = []
        for t in left_tuples:
            values = {
                left_map.get(attr, attr): value for attr, value in t.items()
            }
            if frozenset(values.items()) in blocked_values:
                continue
            out.append(Tuple(values, lineage=t.lineage, parents=(t,)))
        return _dedupe(out)

    def describe(self) -> str:
        return "difference"


# ---------------------------------------------------------------------------
# Tree utilities
# ---------------------------------------------------------------------------
def assign_labels(root: Query, prefix: str = "m") -> dict[str, Query]:
    """Label internal nodes ``m0 .. mk`` in evaluation (TabQ) order.

    Nodes are visited by decreasing depth and left-to-right within one
    depth -- the storage order of the paper's TabQ -- so ``m0`` is the
    deepest, leftmost internal node, matching Fig. 4's labelling.
    Leaves keep their alias as label.  Returns a label -> node map.
    """
    ordered = tabq_order(root)
    labels: dict[str, Query] = {}
    counter = itertools.count()
    for node in ordered:
        if isinstance(node, RelationLeaf):
            node.name = node.alias
        else:
            node.name = f"{prefix}{next(counter)}"
        labels[node.name] = node
    return labels


def tabq_order(root: Query) -> list[Query]:
    """Nodes sorted by decreasing depth, then left-to-right (Sec. 3.1).

    This is the processing order of Alg. 1: deepest subqueries first,
    the root last.
    """
    positioned: list[tuple[int, int, Query]] = []

    def walk(node: Query, depth: int) -> None:
        # left-to-right order within a level follows discovery order
        positioned.append((depth, len(positioned), node))
        for child in node.children:
            walk(child, depth + 1)

    walk(root, 0)
    # Stable sort: by decreasing depth; ties keep pre-order (which is
    # left-to-right within one level).
    positioned.sort(key=lambda item: (-item[0], item[1]))
    return [node for _, _, node in positioned]


def find_node(root: Query, name: str) -> Query:
    """Return the node labelled *name* in *root*'s tree."""
    for node in root.postorder():
        if node.name == name:
            return node
    raise QueryError(f"no node labelled {name!r} in the query tree")


def validate_tree(root: Query) -> None:
    """Run structural sanity checks over a whole tree.

    Checks alias disjointness globally (Def. 2.2 requires the input
    schemas of binary operators to be disjoint, which implies each alias
    occurs in exactly one leaf).
    """
    aliases = [leaf.alias for leaf in root.leaves()]
    if len(set(aliases)) != len(aliases):
        duplicated = sorted(
            a for a in set(aliases) if aliases.count(a) > 1
        )
        raise SchemaError(
            f"aliases {duplicated} occur in more than one leaf; "
            "self-joins need distinct aliases"
        )


def target_condition_attributes(condition: Condition) -> frozenset[str]:
    """Attributes a selection condition needs from its input."""
    return condition.attributes()


# ---------------------------------------------------------------------------
# Structural fingerprints (shared-evaluation cache keys)
# ---------------------------------------------------------------------------
def _term_tokens(term: Attr | Const | Var) -> tuple:
    if isinstance(term, Attr):
        return ("attr", term.name)
    if isinstance(term, Const):
        # repr distinguishes 5 / 5.0 / '5' so value domains never collide
        return ("const", type(term.value).__name__, repr(term.value))
    if isinstance(term, Var):
        return ("var", term.name)
    raise QueryError(f"cannot fingerprint condition term {term!r}")


def condition_tokens(condition: Condition) -> tuple:
    """Canonical token structure of a condition (fingerprint input)."""
    if isinstance(condition, TrueCondition):
        return ("true",)
    if isinstance(condition, FalseCondition):
        return ("false",)
    if isinstance(condition, Comparison):
        return (
            "cmp",
            _term_tokens(condition.left),
            condition.op,
            _term_tokens(condition.right),
        )
    if isinstance(condition, And):
        return ("and",) + tuple(condition_tokens(p) for p in condition.parts)
    if isinstance(condition, Or):
        return ("or",) + tuple(condition_tokens(p) for p in condition.parts)
    raise QueryError(f"cannot fingerprint condition {condition!r}")


def _renaming_tokens(renaming: Renaming) -> tuple:
    return tuple((t.left, t.right, t.new) for t in renaming.triples)


def structure_tokens(node: Query) -> tuple:
    """Recursive canonical token structure of a query tree.

    Two trees produce equal tokens iff they are structurally equal:
    same operators in the same positions with the same conditions,
    attributes, renamings, aggregation calls, and leaf schemas.  Node
    *labels* (``name``) are deliberately excluded -- they are display
    metadata assigned during canonicalization, not query structure.
    """
    if isinstance(node, RelationLeaf):
        return (
            "relation",
            node.alias,
            tuple(node.schema.attributes),
            node.schema.key,
        )
    if isinstance(node, Select):
        return (
            "sigma",
            condition_tokens(node.condition),
            structure_tokens(node.child),
        )
    if isinstance(node, Project):
        return ("pi", node.attributes, structure_tokens(node.child))
    if isinstance(node, Join):
        return (
            "join",
            _renaming_tokens(node.renaming),
            structure_tokens(node.left),
            structure_tokens(node.right),
        )
    if isinstance(node, Aggregate):
        return (
            "alpha",
            node.group_by,
            tuple(
                (c.function, c.attribute, c.alias) for c in node.calls
            ),
            structure_tokens(node.child),
        )
    if isinstance(node, Union):
        return (
            "union",
            _renaming_tokens(node.renaming),
            structure_tokens(node.left),
            structure_tokens(node.right),
        )
    if isinstance(node, Difference):
        return (
            "difference",
            _renaming_tokens(node.renaming),
            structure_tokens(node.left),
            structure_tokens(node.right),
        )
    raise QueryError(f"cannot fingerprint query node {node!r}")


def query_fingerprint(
    root: Query, aliases: Mapping[str, str] | None = None
) -> str:
    """Stable structural hash of ``(Q, eta_Q)``.

    The fingerprint covers every operator, condition, projection,
    renaming, and aggregation call of the tree plus the leaf schemas
    and the alias mapping ``eta_Q``; any structural perturbation yields
    a different digest.  Structurally equal trees -- even distinct
    objects built from the same spec -- share one fingerprint, which is
    what lets the evaluation cache serve many why-not questions from a
    single evaluation.
    """
    payload = repr(
        (
            structure_tokens(root),
            tuple(sorted((aliases or {}).items())),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def alias_mapping_of(root: Query) -> dict[str, RelationSchema]:
    """Map alias -> aliased relation schema for all leaves."""
    return {leaf.alias: leaf.schema for leaf in root.leaves()}


def subtree_covering(root: Query, attributes: frozenset[str]) -> Query | None:
    """Smallest subquery of *root* whose target type covers *attributes*.

    Used to locate the breakpoint subquery ``V`` (Sec. 3.1, step 2b):
    the subquery closest to the leaves exposing all grouped and
    aggregated attributes.  Returns ``None`` when even *root* does not
    cover them.
    """
    if not attributes <= root.target_type:
        return None
    best: Query = root
    changed = True
    while changed:
        changed = False
        for child in best.children:
            if attributes <= child.target_type:
                best = child
                changed = True
                break
    return best
