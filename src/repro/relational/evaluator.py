"""Bottom-up query evaluation with lineage tracing.

This is the library's stand-in for the Trio system the paper's
implementations used for lineage: every operator application records,
on each output tuple, its direct predecessors and base lineage.  The
:class:`EvaluationResult` keeps the input/output tuple lists of every
subquery -- precisely the ``Input`` / ``Output`` columns of the paper's
TabQ structure -- so NedExplain and the Why-Not baseline can inspect
every intermediate result.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping, Sequence

from ..errors import EvaluationError, UnknownRelationError
from ..obs.trace import current_tracer
from ..robustness.budget import current_context
from ..robustness.faults import fault_point
from .algebra import Query, RelationLeaf, query_fingerprint, validate_tree
from .instance import DatabaseInstance, query_input_instance
from .tuples import Tuple, Value

#: Monotonic serial per evaluation run, shared by the row and columnar
#: engines.  Operator spans carry it as the ``eval`` tag so trace
#: consumers (``statistics.actuals_from_trace``) can aggregate
#: multi-span per-batch operator records within one evaluation without
#: mixing records of distinct evaluations.
_EVAL_SERIALS = itertools.count(1)


class EvaluationResult:
    """Per-node inputs and outputs of one query evaluation.

    Nodes are keyed by identity (two structurally equal operators in
    one tree are still distinct subqueries).  Because ``id()`` values
    are recycled once an object is garbage-collected, every keyed node
    is also held by strong reference (``_nodes``): a result that
    outlives its evaluation call -- e.g. inside an
    :class:`~repro.relational.evalcache.EvaluationCache` -- can never
    have its keys silently re-bound to unrelated query objects.
    """

    def __init__(self, root: Query):
        self.root = root
        self._outputs: dict[int, list[Tuple]] = {}
        self._inputs: dict[int, list[list[Tuple]]] = {}
        #: strong references keeping every keyed node alive (id-reuse
        #: safety; see the class docstring)
        self._nodes: dict[int, Query] = {}

    def set_node(
        self,
        node: Query,
        inputs: list[list[Tuple]],
        output: list[Tuple],
    ) -> None:
        """Record the evaluation of one node."""
        self._nodes[id(node)] = node
        self._inputs[id(node)] = inputs
        self._outputs[id(node)] = output

    def output(self, node: Query) -> list[Tuple]:
        """Output tuples of *node*."""
        try:
            return self._outputs[id(node)]
        except KeyError:
            raise EvaluationError(
                f"node {node!r} was not evaluated"
            ) from None

    def inputs(self, node: Query) -> list[list[Tuple]]:
        """Per-child input tuple lists of *node*."""
        try:
            return self._inputs[id(node)]
        except KeyError:
            raise EvaluationError(
                f"node {node!r} was not evaluated"
            ) from None

    def flat_input(self, node: Query) -> list[Tuple]:
        """All input tuples of *node*, children concatenated.

        This is the ``m.Input`` entry of TabQ: 'the input instance of a
        manipulation includes solely the output of its direct children'.
        """
        flat: list[Tuple] = []
        for part in self.inputs(node):
            flat.extend(part)
        return flat

    @property
    def result(self) -> list[Tuple]:
        """The output of the root, i.e. ``Q(I)``."""
        return self.output(self.root)

    def result_values(self) -> list[dict[str, Value]]:
        """Root output as plain value dicts, duplicates collapsed."""
        seen: set[frozenset] = set()
        out: list[dict[str, Value]] = []
        for t in self.result:
            key = frozenset(t.items())
            if key not in seen:
                seen.add(key)
                out.append(dict(t.items()))
        return out

    def nodes(self) -> Iterator[Query]:
        """All evaluated nodes, bottom-up."""
        return self.root.postorder()

    def rebind(self, new_root: Query) -> "EvaluationResult":
        """Re-key this result onto a structurally equal tree.

        A cached result is keyed by the node identities of the tree it
        was computed from; a caller holding a *different but
        structurally equal* tree (same fingerprint) gets a view keyed
        by its own nodes.  Inputs and outputs are shared, not copied --
        cached results must be treated as immutable.
        """
        old_nodes = list(self.root.postorder())
        new_nodes = list(new_root.postorder())
        if len(old_nodes) != len(new_nodes):
            raise EvaluationError(
                "cannot rebind evaluation result onto a tree of "
                "different shape"
            )
        clone = EvaluationResult(new_root)
        for old, new in zip(old_nodes, new_nodes):
            if old.op != new.op:
                raise EvaluationError(
                    "cannot rebind evaluation result onto a tree of "
                    "different shape"
                )
            clone.set_node(
                new, self._inputs[id(old)], self._outputs[id(old)]
            )
        return clone


def evaluate(root: Query, instance: DatabaseInstance) -> EvaluationResult:
    """Evaluate the query tree *root* over the input instance.

    *instance* must be a *query input instance*: one relation per leaf
    alias (see :func:`repro.relational.instance.query_input_instance`
    for deriving it from a stored database and an alias mapping).
    """
    validate_tree(root)
    result = EvaluationResult(root)
    context = current_context()
    # Tracing fast path: one context-var read per evaluation, one None
    # check per node when tracing is off.
    tracer = current_tracer()
    serial = next(_EVAL_SERIALS)
    for index, node in enumerate(root.postorder()):
        # Cooperative budget tick per operator: a deadline or row limit
        # stops the bottom-up pass between manipulations (the
        # comparison ticks inside Join/Select bound work *within* one).
        fault_point("operator.apply")
        if context is not None:
            context.check_deadline()
        span = None
        if tracer is not None:
            span = tracer.start_span(
                node.name or node.op,
                category="operator",
                op=node.op,
                fingerprint=query_fingerprint(node)[:12],
                postorder=index,
                eval=serial,
            )
        try:
            if isinstance(node, RelationLeaf):
                try:
                    stored = list(instance.relation(node.alias))
                except UnknownRelationError as exc:
                    raise EvaluationError(
                        f"query reads alias {node.alias!r} but the "
                        "input instance has no such relation"
                    ) from exc
                inputs = [stored]
            else:
                inputs = [
                    list(result.output(child)) for child in node.children
                ]
            output = node.apply(inputs)
        finally:
            if span is not None:
                tracer.end_span(span)
        if span is not None:
            span.set_tag(
                "rows_in", sum(len(part) for part in inputs)
            )
            span.set_tag("rows_out", len(output))
            tracer.metrics.counter("evaluator.operators").inc()
            tracer.metrics.histogram("evaluator.rows_out").observe(
                len(output)
            )
        result.set_node(node, inputs, output)
        if context is not None:
            context.tick_rows(len(output))
    return result


def evaluate_query(
    root: Query,
    database: DatabaseInstance,
    aliases: Mapping[str, str] | None = None,
    cache=None,
    use_columnar: bool = False,
) -> EvaluationResult:
    """Evaluate ``(Q, eta_Q)`` over a stored database (Def. 2.3).

    *aliases* maps each leaf alias to a stored relation name; when
    omitted, each alias is assumed to name a stored relation directly.
    *cache* may be an
    :class:`~repro.relational.evalcache.EvaluationCache`; repeated
    evaluations of structurally equal queries over unchanged data are
    then served from it (the returned result must be treated as
    immutable in that case).

    With ``use_columnar=True`` the evaluation routes through the
    batch-at-a-time engine of :mod:`repro.columnar` and the result is
    its lossless row view -- observationally identical tuples,
    lineage, and parent links (the row engine stays the differential
    oracle; see ``docs/columnar.md``).
    """
    mapping = resolve_aliases(root, database, aliases)
    input_instance = query_input_instance(database, mapping)
    if cache is not None:
        return cache.get_or_evaluate(
            root,
            input_instance,
            mapping,
            engine="columnar" if use_columnar else "row",
        )
    if use_columnar:
        from ..columnar import evaluate_columnar  # lazy: avoids cycle

        return evaluate_columnar(root, input_instance).row_view()
    return evaluate(root, input_instance)


def resolve_aliases(
    root: Query,
    database: DatabaseInstance,
    aliases: Mapping[str, str] | None = None,
) -> dict[str, str]:
    """Complete the alias mapping ``eta_Q`` for all leaves of *root*."""
    mapping = dict(aliases or {})
    for leaf in root.leaves():
        if leaf.alias not in mapping:
            if leaf.alias not in database:
                raise UnknownRelationError(
                    f"alias {leaf.alias!r} does not name a stored "
                    "relation and no alias mapping was provided"
                )
            mapping[leaf.alias] = leaf.alias
    return mapping


def result_contains(
    result: Sequence[Tuple], expected: Mapping[str, Value]
) -> bool:
    """True when some result tuple matches all given attribute values."""
    for t in result:
        if all(t.get(attr) == value for attr, value in expected.items()):
            return True
    return False
