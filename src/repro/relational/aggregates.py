"""Aggregation function calls (Def. 2.2, item 3).

The paper's aggregation operator ``alpha_{G,F}`` takes a grouping set
``G`` and a list ``F`` of aggregation calls ``f(A) -> A'`` with ``f``
among ``sum, count, avg, min, max``.  This module implements the
function calls; the operator itself lives in
:mod:`repro.relational.algebra`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..errors import QueryError
from .tuples import Tuple, Value

#: Names of the supported aggregation functions.
AGGREGATE_FUNCTIONS = ("sum", "count", "avg", "min", "max")


def _non_null(values: Iterable[Value]) -> list[Value]:
    return [v for v in values if v is not None]


def _agg_sum(values: Sequence[Value]) -> Value:
    kept = _non_null(values)
    if not kept:
        return None
    return sum(kept)


def _agg_count(values: Sequence[Value]) -> Value:
    # SQL count(A): number of non-null values.
    return len(_non_null(values))


def _agg_avg(values: Sequence[Value]) -> Value:
    kept = _non_null(values)
    if not kept:
        return None
    return sum(kept) / len(kept)


def _agg_min(values: Sequence[Value]) -> Value:
    kept = _non_null(values)
    if not kept:
        return None
    return min(kept)


def _agg_max(values: Sequence[Value]) -> Value:
    kept = _non_null(values)
    if not kept:
        return None
    return max(kept)


_IMPLEMENTATIONS: dict[str, Callable[[Sequence[Value]], Value]] = {
    "sum": _agg_sum,
    "count": _agg_count,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
}


@dataclass(frozen=True)
class AggregateCall:
    """One aggregation call ``f(A) -> A'``.

    Parameters
    ----------
    function:
        One of ``sum, count, avg, min, max``.
    attribute:
        The (qualified) input attribute ``A``.
    alias:
        The fresh output attribute name ``A'`` (unqualified).
    """

    function: str
    attribute: str
    alias: str

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise QueryError(
                f"unknown aggregation function {self.function!r}; "
                f"expected one of {AGGREGATE_FUNCTIONS}"
            )
        if "." in self.alias:
            raise QueryError(
                f"aggregate output attribute {self.alias!r} must be "
                "unqualified"
            )

    def compute(self, group: Sequence[Tuple]) -> Value:
        """Apply the aggregation function to a group of tuples."""
        values = [t[self.attribute] for t in group]
        return _IMPLEMENTATIONS[self.function](values)

    def __repr__(self) -> str:
        return f"{self.function}({self.attribute})->{self.alias}"


def check_distinct_aliases(calls: Sequence[AggregateCall]) -> None:
    """Raise :class:`QueryError` when two calls share an output alias."""
    aliases = [call.alias for call in calls]
    if len(set(aliases)) != len(aliases):
        raise QueryError(
            f"aggregate calls must have distinct output names, got {aliases}"
        )
