"""Tuples with qualified attributes, identities, and lineage.

This module implements the data model of Sec. 2.1 of the paper: a tuple
is a list of attribute/value pairs ``(A1:v1, ..., An:vn)``, where each
attribute is *qualified* by the relation alias it stems from (e.g.
``"A.name"``) or is a fresh unqualified attribute introduced by a
renaming or an aggregation (e.g. ``"aid"``, ``"ap"``).

On top of the paper's model, every tuple carries the bookkeeping needed
for provenance:

* ``tid`` -- the identifier of a *base* tuple (``None`` for derived
  tuples produced by operators);
* ``lineage`` -- the set of base-tuple identifiers this tuple derives
  from, in the sense of Cui & Widom's data lineage (the paper's Sec. 2.3
  builds directly on that notion);
* ``parents`` -- the direct predecessor tuples with respect to the
  manipulation that produced this tuple.  ``parents`` is what makes a
  derived tuple a *successor* (Def. 2.9) of its inputs.

Tuples compare equal on ``(values, lineage)``: two derivations of the
same values from different base data are distinct objects of study for
why-not provenance (the paper denotes the three outputs of its running
example's ``Q2`` as ``t4 t7 t2``, ``t4 t8 t1``, ``t5 t9 t3`` -- i.e. by
their lineage).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from ..errors import SchemaError

#: Values stored in tuples.  ``None`` represents SQL NULL.
Value = Any


def qualify(alias: str, attribute: str) -> str:
    """Return the qualified attribute name ``alias.attribute``."""
    return f"{alias}.{attribute}"


def is_qualified(attribute: str) -> bool:
    """Return True when *attribute* is of the form ``alias.name``."""
    return "." in attribute


def split_qualified(attribute: str) -> tuple[str, str]:
    """Split ``"A.name"`` into ``("A", "name")``.

    Raises :class:`SchemaError` when the attribute is unqualified.
    """
    alias, sep, name = attribute.partition(".")
    if not sep or not alias or not name:
        raise SchemaError(f"attribute {attribute!r} is not qualified")
    return alias, name


def alias_of(attribute: str) -> str | None:
    """Return the qualifying alias of *attribute*, or ``None``."""
    if not is_qualified(attribute):
        return None
    return split_qualified(attribute)[0]


def unqualified_name(attribute: str) -> str:
    """Return the attribute name without its qualifying alias."""
    if not is_qualified(attribute):
        return attribute
    return split_qualified(attribute)[1]


class Tuple:
    """An immutable tuple of attribute/value pairs with provenance.

    Parameters
    ----------
    values:
        Mapping from (qualified or renamed) attribute names to values.
    tid:
        Identifier of a base tuple.  Derived tuples pass ``None``.
    lineage:
        Base-tuple identifiers this tuple derives from.  Defaults to
        ``{tid}`` for base tuples and to the union of the parents'
        lineage for derived tuples.
    parents:
        Direct predecessor tuples w.r.t. the producing manipulation.
    """

    __slots__ = ("_values", "_tid", "_lineage", "_parents", "_hash")

    def __init__(
        self,
        values: Mapping[str, Value],
        tid: str | None = None,
        lineage: Iterable[str] | None = None,
        parents: Iterable["Tuple"] = (),
    ):
        if not values:
            raise SchemaError("a tuple must have at least one attribute")
        self._values: dict[str, Value] = dict(values)
        self._tid = tid
        self._parents: tuple[Tuple, ...] = tuple(parents)
        if lineage is not None:
            self._lineage = frozenset(lineage)
        elif tid is not None:
            self._lineage = frozenset((tid,))
        elif self._parents:
            merged: set[str] = set()
            for parent in self._parents:
                merged |= parent.lineage
            self._lineage = frozenset(merged)
        else:
            self._lineage = frozenset()
        self._hash = hash(
            (frozenset(self._values.items()), self._lineage)
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def tid(self) -> str | None:
        """Base-tuple identifier, or ``None`` for derived tuples."""
        return self._tid

    @property
    def lineage(self) -> frozenset[str]:
        """Base-tuple identifiers this tuple derives from."""
        return self._lineage

    @property
    def parents(self) -> tuple["Tuple", ...]:
        """Direct predecessors w.r.t. the producing manipulation."""
        return self._parents

    @property
    def values(self) -> Mapping[str, Value]:
        """Read-only view of the attribute/value mapping."""
        return dict(self._values)

    @property
    def type(self) -> frozenset[str]:
        """The type of the tuple: its set of attribute names (Sec 2.1)."""
        return frozenset(self._values)

    def is_base(self) -> bool:
        """Return True when this is a base (stored) tuple."""
        return self._tid is not None

    # ------------------------------------------------------------------
    # Mapping-style access
    # ------------------------------------------------------------------
    def __getitem__(self, attribute: str) -> Value:
        try:
            return self._values[attribute]
        except KeyError:
            raise SchemaError(
                f"tuple of type {sorted(self._values)} has no "
                f"attribute {attribute!r}"
            ) from None

    def get(self, attribute: str, default: Value = None) -> Value:
        """Return the value of *attribute*, or *default*."""
        return self._values.get(attribute, default)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def items(self) -> Iterable[tuple[str, Value]]:
        """Iterate over (attribute, value) pairs."""
        return self._values.items()

    # ------------------------------------------------------------------
    # Derivation helpers used by the operators
    # ------------------------------------------------------------------
    def project(self, attributes: Iterable[str]) -> "Tuple":
        """Return a derived tuple restricted to *attributes*.

        The result records this tuple as its single parent and inherits
        its lineage.
        """
        kept = {attr: self[attr] for attr in attributes}
        return Tuple(kept, lineage=self._lineage, parents=(self,))

    def merge(self, other: "Tuple") -> "Tuple":
        """Return the join of this tuple with *other*.

        Both tuples become parents; attribute sets must be disjoint
        (qualified schemas always are, Def. 2.2).
        """
        overlap = self.type & other.type
        if overlap:
            raise SchemaError(
                f"cannot merge tuples sharing attributes {sorted(overlap)}"
            )
        combined = dict(self._values)
        combined.update(other._values)
        return Tuple(
            combined,
            lineage=self._lineage | other._lineage,
            parents=(self, other),
        )

    def rename_attributes(self, mapping: Mapping[str, str]) -> "Tuple":
        """Return a derived tuple with attributes renamed via *mapping*.

        Attributes absent from *mapping* keep their name.  This is the
        tuple-level application of a renaming ``nu`` (Def. 2.1).
        """
        renamed = {
            mapping.get(attr, attr): value
            for attr, value in self._values.items()
        }
        if len(renamed) != len(self._values):
            raise SchemaError(
                f"renaming {dict(mapping)!r} collapses attributes of "
                f"tuple {self!r}"
            )
        return Tuple(renamed, lineage=self._lineage, parents=(self,))

    def with_parents(self, parents: Iterable["Tuple"]) -> "Tuple":
        """Return a copy of this tuple with the given direct parents."""
        return Tuple(
            self._values,
            tid=self._tid,
            lineage=self._lineage,
            parents=parents,
        )

    # ------------------------------------------------------------------
    # Identity, ordering, display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return (
            self._values == other._values
            and self._lineage == other._lineage
        )

    def __hash__(self) -> int:
        return self._hash

    def how_provenance(self) -> str:
        """Render the lineage as a how-provenance style string.

        The paper writes the output tuples of its running example as
        ``t4 |><| t7 |><| t2``; we render ``t2*t4*t7`` (sorted for
        determinism).
        """
        if self._tid is not None:
            return self._tid
        return "*".join(sorted(self._lineage))

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{attr}:{value!r}" for attr, value in sorted(self._values.items())
        )
        tag = self._tid if self._tid is not None else self.how_provenance()
        return f"Tuple[{tag}]({pairs})"


def base_tuple(alias: str, tid: str, **attributes: Value) -> Tuple:
    """Convenience constructor for a base tuple of relation *alias*.

    Attribute names given as keywords are qualified with *alias*::

        >>> t = base_tuple("A", "t4", name="Homer", dob=-800)
        >>> t["A.name"]
        'Homer'
    """
    values = {qualify(alias, name): value for name, value in attributes.items()}
    return Tuple(values, tid=tid)
