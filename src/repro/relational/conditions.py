"""Condition language for selections, joins, and conditional tuples.

Three kinds of terms appear in conditions:

* :class:`Attr` -- a (qualified) attribute reference, used by selection
  and theta-join conditions;
* :class:`Const` -- a literal value;
* :class:`Var` -- a variable of a conditional tuple (Def. 2.5), similar
  in spirit to labelled nulls.

Conditions are conjunctions/disjunctions of binary comparisons with the
comparison operators of Def. 2.5 (``=, !=, <, >, <=, >=``).  Evaluation
follows SQL three-valued logic collapsed to two values: any comparison
involving ``NULL`` (Python ``None``) or incomparable types is false.

The module also provides :func:`is_satisfiable`, the decision procedure
behind c-tuple compatibility (Def. 2.8 asks whether *some* valuation of
the free variables satisfies ``tc.cond``).  Conditions of the paper's
grammar -- comparisons between variables and constants or between
variables -- form order constraints over dense domains; satisfiability
is decided by union-find over equalities followed by bound propagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..errors import ConditionError
from .tuples import Tuple, Value

#: Comparison operators of Def. 2.5.
COMPARISON_OPS = ("=", "!=", "<", ">", "<=", ">=")

_NEGATION = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    ">": "<=",
    "<=": ">",
    ">=": "<",
}

_FLIP = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    ">": "<",
    "<=": ">=",
    ">=": "<=",
}


def _comparable(a: Value, b: Value) -> bool:
    """True when *a* and *b* live in the same ordered domain."""
    if a is None or b is None:
        return False
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return type(a) is type(b)


def compare_values(a: Value, op: str, b: Value) -> bool:
    """Apply comparison *op* to two values under SQL-like semantics.

    ``NULL`` and cross-domain comparisons are false (SQL's *unknown*
    collapsed to false), so selections silently drop such tuples rather
    than crash -- the behaviour a query debugger must mirror.
    """
    if op not in COMPARISON_OPS:
        raise ConditionError(f"unknown comparison operator {op!r}")
    if not _comparable(a, b):
        return False
    if op == "=":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == ">":
        return a > b
    if op == "<=":
        return a <= b
    return a >= b


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Attr:
    """A reference to a (qualified) attribute of the evaluated tuple."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A literal value."""

    value: Value

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Var:
    """A variable of a conditional tuple (Def. 2.4 / 2.5)."""

    name: str

    def __repr__(self) -> str:
        return f"${self.name}"


Term = Attr | Const | Var


def _resolve(
    term: Term,
    t: Tuple | None,
    valuation: Mapping[str, Value] | None,
) -> tuple[bool, Value]:
    """Resolve *term* to a value.

    Returns ``(resolved, value)``; ``resolved`` is False for a variable
    absent from the valuation.
    """
    if isinstance(term, Const):
        return True, term.value
    if isinstance(term, Attr):
        if t is None or term.name not in t:
            raise ConditionError(
                f"attribute {term.name!r} cannot be resolved against "
                f"{'no tuple' if t is None else sorted(t.type)}"
            )
        return True, t[term.name]
    if valuation is not None and term.name in valuation:
        return True, valuation[term.name]
    return False, None


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------
class Condition:
    """Abstract base of all conditions."""

    def evaluate(
        self,
        t: Tuple | None = None,
        valuation: Mapping[str, Value] | None = None,
    ) -> bool:
        """Evaluate against tuple *t* and variable *valuation*."""
        raise NotImplementedError

    def attributes(self) -> frozenset[str]:
        """All attribute names referenced by the condition."""
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """All variable names referenced by the condition."""
        raise NotImplementedError

    def conjuncts(self) -> tuple["Condition", ...]:
        """Flatten a conjunction into its atomic parts."""
        return (self,)

    def negated(self) -> "Condition":
        """Return the logical negation of this condition."""
        raise NotImplementedError

    def rename_attributes(self, mapping: Mapping[str, str]) -> "Condition":
        """Return a copy with attribute names rewritten via *mapping*."""
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return And.of(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or.of(self, other)


@dataclass(frozen=True)
class TrueCondition(Condition):
    """The trivially true condition (the ``true`` of Def. 2.5)."""

    def evaluate(self, t=None, valuation=None) -> bool:
        return True

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def variables(self) -> frozenset[str]:
        return frozenset()

    def conjuncts(self) -> tuple[Condition, ...]:
        return ()

    def negated(self) -> Condition:
        return FalseCondition()

    def rename_attributes(self, mapping) -> Condition:
        return self

    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseCondition(Condition):
    """The trivially false condition (negation closure helper)."""

    def evaluate(self, t=None, valuation=None) -> bool:
        return False

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def variables(self) -> frozenset[str]:
        return frozenset()

    def negated(self) -> Condition:
        return TrueCondition()

    def rename_attributes(self, mapping) -> Condition:
        return self

    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Comparison(Condition):
    """A binary comparison ``left op right``."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ConditionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, t=None, valuation=None) -> bool:
        ok_l, lhs = _resolve(self.left, t, valuation)
        ok_r, rhs = _resolve(self.right, t, valuation)
        if not ok_l or not ok_r:
            raise ConditionError(
                f"unbound variable in comparison {self!r}"
            )
        return compare_values(lhs, self.op, rhs)

    def attributes(self) -> frozenset[str]:
        names = [
            term.name
            for term in (self.left, self.right)
            if isinstance(term, Attr)
        ]
        return frozenset(names)

    def variables(self) -> frozenset[str]:
        names = [
            term.name
            for term in (self.left, self.right)
            if isinstance(term, Var)
        ]
        return frozenset(names)

    def negated(self) -> Condition:
        return Comparison(self.left, _NEGATION[self.op], self.right)

    def flipped(self) -> "Comparison":
        """Return the same constraint with operands swapped."""
        return Comparison(self.right, _FLIP[self.op], self.left)

    def rename_attributes(self, mapping) -> Condition:
        def rewrite(term: Term) -> Term:
            if isinstance(term, Attr) and term.name in mapping:
                return Attr(mapping[term.name])
            return term

        return Comparison(rewrite(self.left), self.op, rewrite(self.right))

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


@dataclass(frozen=True)
class And(Condition):
    """A conjunction of conditions."""

    parts: tuple[Condition, ...]

    @classmethod
    def of(cls, *parts: Condition) -> Condition:
        """Build a flattened conjunction, simplifying trivia."""
        flat: list[Condition] = []
        for part in parts:
            if isinstance(part, TrueCondition):
                continue
            if isinstance(part, FalseCondition):
                return FalseCondition()
            if isinstance(part, And):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if not flat:
            return TrueCondition()
        if len(flat) == 1:
            return flat[0]
        return cls(tuple(flat))

    def evaluate(self, t=None, valuation=None) -> bool:
        return all(part.evaluate(t, valuation) for part in self.parts)

    def attributes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.attributes()
        return out

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.variables()
        return out

    def conjuncts(self) -> tuple[Condition, ...]:
        flat: list[Condition] = []
        for part in self.parts:
            flat.extend(part.conjuncts())
        return tuple(flat)

    def negated(self) -> Condition:
        return Or.of(*(part.negated() for part in self.parts))

    def rename_attributes(self, mapping) -> Condition:
        return And.of(*(p.rename_attributes(mapping) for p in self.parts))

    def __repr__(self) -> str:
        return " and ".join(f"({part!r})" for part in self.parts)


@dataclass(frozen=True)
class Or(Condition):
    """A disjunction of conditions."""

    parts: tuple[Condition, ...]

    @classmethod
    def of(cls, *parts: Condition) -> Condition:
        """Build a flattened disjunction, simplifying trivia."""
        flat: list[Condition] = []
        for part in parts:
            if isinstance(part, FalseCondition):
                continue
            if isinstance(part, TrueCondition):
                return TrueCondition()
            if isinstance(part, Or):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if not flat:
            return FalseCondition()
        if len(flat) == 1:
            return flat[0]
        return cls(tuple(flat))

    def evaluate(self, t=None, valuation=None) -> bool:
        return any(part.evaluate(t, valuation) for part in self.parts)

    def attributes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.attributes()
        return out

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.variables()
        return out

    def negated(self) -> Condition:
        return And.of(*(part.negated() for part in self.parts))

    def rename_attributes(self, mapping) -> Condition:
        return Or.of(*(p.rename_attributes(mapping) for p in self.parts))

    def __repr__(self) -> str:
        return " or ".join(f"({part!r})" for part in self.parts)


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------
def attr_cmp(attribute: str, op: str, value: Value) -> Comparison:
    """``attribute op literal`` -- the common selection condition."""
    return Comparison(Attr(attribute), op, Const(value))


def attr_attr_cmp(left: str, op: str, right: str) -> Comparison:
    """``attribute op attribute`` -- a theta-join style condition."""
    return Comparison(Attr(left), op, Attr(right))


def var_cmp(variable: str, op: str, value: Value) -> Comparison:
    """``variable op literal`` -- a c-tuple condition (Def. 2.5)."""
    return Comparison(Var(variable), op, Const(value))


def var_var_cmp(left: str, op: str, right: str) -> Comparison:
    """``variable op variable`` -- a c-tuple condition (Def. 2.5)."""
    return Comparison(Var(left), op, Var(right))


# ---------------------------------------------------------------------------
# Satisfiability of c-tuple conditions
# ---------------------------------------------------------------------------
@dataclass
class _Bounds:
    """Interval-with-exclusions over a dense ordered domain."""

    lower: Value = None
    lower_strict: bool = False
    upper: Value = None
    upper_strict: bool = False
    excluded: set[Value] = None  # type: ignore[assignment]
    pinned: Value = None
    is_pinned: bool = False

    def __post_init__(self) -> None:
        if self.excluded is None:
            self.excluded = set()

    def pin(self, value: Value) -> bool:
        """Constrain to exactly *value*; False on contradiction."""
        if self.is_pinned:
            return self.pinned == value
        self.is_pinned = True
        self.pinned = value
        return self._check()

    def exclude(self, value: Value) -> bool:
        self.excluded.add(value)
        return self._check()

    def tighten_lower(self, value: Value, strict: bool) -> bool:
        if self.lower is None or _gt(value, self.lower) or (
            value == self.lower and strict and not self.lower_strict
        ):
            self.lower, self.lower_strict = value, strict
        return self._check()

    def tighten_upper(self, value: Value, strict: bool) -> bool:
        if self.upper is None or _lt(value, self.upper) or (
            value == self.upper and strict and not self.upper_strict
        ):
            self.upper, self.upper_strict = value, strict
        return self._check()

    def _check(self) -> bool:
        if self.is_pinned:
            v = self.pinned
            if v in self.excluded:
                return False
            if self.lower is not None and (
                _lt(v, self.lower) or (v == self.lower and self.lower_strict)
            ):
                return False
            if self.upper is not None and (
                _gt(v, self.upper) or (v == self.upper and self.upper_strict)
            ):
                return False
            return True
        if self.lower is not None and self.upper is not None:
            if _gt(self.lower, self.upper):
                return False
            if self.lower == self.upper:
                if self.lower_strict or self.upper_strict:
                    return False
                # the interval collapsed to a point
                if self.lower in self.excluded:
                    return False
        return True


def _lt(a: Value, b: Value) -> bool:
    return _comparable(a, b) and a < b


def _gt(a: Value, b: Value) -> bool:
    return _comparable(a, b) and a > b


class _UnionFind:
    """Union-find over variable names."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, name: str) -> str:
        parent = self._parent.setdefault(name, name)
        if parent == name:
            return name
        root = self.find(parent)
        self._parent[name] = root
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def is_satisfiable(
    condition: Condition,
    bound: Mapping[str, Value] | None = None,
) -> bool:
    """Decide whether *condition* has a satisfying variable valuation.

    *bound* pre-assigns values to some variables (in Def. 2.8 these are
    the variables fixed by the shared attributes of the c-tuple and the
    candidate source tuple); the remaining variables are free and range
    over dense ordered domains.

    Supports the grammar of Def. 2.5 -- conjunctions of ``x cop y`` and
    ``x cop a`` -- plus disjunctions (checked branch-wise).  Raises
    :class:`ConditionError` when the condition references attributes.
    """
    bound = dict(bound or {})
    if condition.attributes():
        raise ConditionError(
            "satisfiability is defined for variable/constant conditions "
            f"only; got attributes {sorted(condition.attributes())}"
        )
    if isinstance(condition, Or):
        return any(is_satisfiable(part, bound) for part in condition.parts)

    comparisons: list[Comparison] = []
    for part in condition.conjuncts():
        if isinstance(part, TrueCondition):
            continue
        if isinstance(part, FalseCondition):
            return False
        if isinstance(part, Or):
            # Rare mixed form: distribute by trying each branch with
            # the remaining conjuncts -- handled by full expansion.
            return any(
                is_satisfiable(
                    And.of(
                        branch,
                        *(c for c in condition.conjuncts() if c is not part),
                    ),
                    bound,
                )
                for branch in part.parts
            )
        if not isinstance(part, Comparison):
            raise ConditionError(f"unsupported condition node {part!r}")
        comparisons.append(_substitute_bound(part, bound))

    return _solve(comparisons)


def _substitute_bound(
    comparison: Comparison, bound: Mapping[str, Value]
) -> Comparison:
    def sub(term: Term) -> Term:
        if isinstance(term, Var) and term.name in bound:
            return Const(bound[term.name])
        return term

    return Comparison(sub(comparison.left), comparison.op, sub(comparison.right))


def _solve(comparisons: Sequence[Comparison]) -> bool:
    """Decide a conjunction of var/const order constraints."""
    uf = _UnionFind()
    residual: list[Comparison] = []

    # Pass 1: merge equalities between variables.
    for cmp in comparisons:
        if (
            cmp.op == "="
            and isinstance(cmp.left, Var)
            and isinstance(cmp.right, Var)
        ):
            uf.union(cmp.left.name, cmp.right.name)
        else:
            residual.append(cmp)

    def canonical(term: Term) -> Term:
        if isinstance(term, Var):
            return Var(uf.find(term.name))
        return term

    bounds: dict[str, _Bounds] = {}

    def bounds_of(name: str) -> _Bounds:
        return bounds.setdefault(name, _Bounds())

    var_edges: list[tuple[str, str, bool]] = []  # a < b (strict?)
    neq_pairs: list[tuple[str, str]] = []

    for cmp in residual:
        left, right = canonical(cmp.left), canonical(cmp.right)
        op = cmp.op
        if isinstance(left, Const) and isinstance(right, Const):
            if not compare_values(left.value, op, right.value):
                return False
            continue
        if isinstance(left, Const):
            left, right, op = right, left, _FLIP[op]
        # now left is a Var
        assert isinstance(left, Var)
        name = left.name
        if isinstance(right, Const):
            value = right.value
            ok = True
            if op == "=":
                ok = bounds_of(name).pin(value)
            elif op == "!=":
                ok = bounds_of(name).exclude(value)
            elif op == "<":
                ok = bounds_of(name).tighten_upper(value, strict=True)
            elif op == "<=":
                ok = bounds_of(name).tighten_upper(value, strict=False)
            elif op == ">":
                ok = bounds_of(name).tighten_lower(value, strict=True)
            else:
                ok = bounds_of(name).tighten_lower(value, strict=False)
            if not ok:
                return False
        else:
            other = right.name
            if op == "=":
                # equality discovered after the union pass; conservative
                # merge by pinning both through shared bounds
                uf.union(name, other)
                return _solve(
                    [
                        _canonicalize_all(c, uf)
                        for c in residual
                        if c is not cmp
                    ]
                )
            if op == "!=":
                if name == other:
                    return False
                neq_pairs.append((name, other))
            elif op in ("<", "<="):
                if name == other:
                    if op == "<":
                        return False
                    continue
                var_edges.append((name, other, op == "<"))
            else:
                if name == other:
                    if op == ">":
                        return False
                    continue
                var_edges.append((other, name, op == ">"))
            bounds_of(name)
            bounds_of(other)

    # Pass 2: propagate interval bounds across variable order edges
    # until a fixed point (at most |vars| * |edges| rounds).
    for _ in range(max(1, len(bounds))):
        changed = False
        for low, high, strict in var_edges:
            lo, hi = bounds[low], bounds[high]
            if hi.is_pinned:
                lo_upper = (hi.pinned, strict)
            else:
                lo_upper = (hi.upper, hi.upper_strict or strict)
            if lo_upper[0] is not None:
                before = (lo.upper, lo.upper_strict, lo.is_pinned)
                if not lo.tighten_upper(lo_upper[0], lo_upper[1]):
                    return False
                changed |= before != (lo.upper, lo.upper_strict, lo.is_pinned)
            hi_lower = (
                (lo.pinned, strict)
                if lo.is_pinned
                else (lo.lower, lo.lower_strict or strict)
            )
            if hi_lower[0] is not None:
                before = (hi.lower, hi.lower_strict, hi.is_pinned)
                if not hi.tighten_lower(hi_lower[0], hi_lower[1]):
                    return False
                changed |= before != (hi.lower, hi.lower_strict, hi.is_pinned)
        if not changed:
            break

    # Pass 3: strict cycles among free variables (a < b, b < a).
    if _has_strict_cycle(var_edges):
        return False

    # Pass 4: disequalities between two pinned variables.
    for a, b in neq_pairs:
        ba, bb = bounds[a], bounds[b]
        if ba.is_pinned and bb.is_pinned and ba.pinned == bb.pinned:
            return False
    return True


def _canonicalize_all(cmp: Comparison, uf: _UnionFind) -> Comparison:
    def canon(term: Term) -> Term:
        if isinstance(term, Var):
            return Var(uf.find(term.name))
        return term

    return Comparison(canon(cmp.left), cmp.op, canon(cmp.right))


def _has_strict_cycle(edges: Iterable[tuple[str, str, bool]]) -> bool:
    """Detect a cycle containing a strict edge in the order graph."""
    adjacency: dict[str, list[tuple[str, bool]]] = {}
    for low, high, strict in edges:
        adjacency.setdefault(low, []).append((high, strict))
        adjacency.setdefault(high, [])

    # A <=-cycle is fine (all equal); a cycle with any < is not.  We
    # check reachability: if u -> ... -> u via a path with a strict
    # edge, report a contradiction.
    nodes = list(adjacency)
    for start in nodes:
        # BFS carrying "saw a strict edge" flags
        seen: dict[str, bool] = {}
        frontier: list[tuple[str, bool]] = [(start, False)]
        while frontier:
            node, strict_seen = frontier.pop()
            for nxt, strict in adjacency.get(node, ()):  # pragma: no branch
                flag = strict_seen or strict
                if nxt == start and flag:
                    return True
                if seen.get(nxt) is None or (flag and not seen[nxt]):
                    seen[nxt] = flag
                    frontier.append((nxt, flag))
    return False
