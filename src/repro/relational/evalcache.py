"""Shared evaluation cache: evaluate once, explain many times.

NedExplain's debugging loop (Alg. 1) re-evaluates the whole query tree
for every why-not question, yet in an interactive session (and in the
paper's own Table 4 workload) many questions target the *same* query
over the *same* instance.  This module provides the shared substrate:

* cache keys combine a **structural fingerprint** of ``(Q, eta_Q)``
  (:func:`repro.relational.algebra.query_fingerprint`) with the data
  identity/version key of the instance
  (:attr:`repro.relational.instance.DatabaseInstance.data_key`), so

  - structurally equal query trees share entries, and
  - any mutation of the underlying data invalidates by key change;

* entries are managed LRU with hit/miss/eviction counters, making the
  "N questions, 1 evaluation" claim *assertable* (the batch benchmark
  and the differential test suite both do);

* cached :class:`~repro.relational.evaluator.EvaluationResult` objects
  hold strong references to their query nodes, so the ``id()``-keyed
  per-node maps stay sound for the lifetime of the entry; a hit against
  a structurally equal but distinct tree is re-keyed via
  :meth:`~repro.relational.evaluator.EvaluationResult.rebind`.

Cached results are shared -- callers must treat them as immutable and
copy tuple lists before modifying them (TabQ does).

The cache is **thread-safe with single-flight misses**: one reentrant
lock guards lookups, LRU mutation, the stats counters, and the miss
evaluation itself, so N worker threads asking for the same key perform
exactly one evaluation (the others block briefly and then hit) and the
hit/miss/store/eviction counters stay exact under any interleaving.
In the repo's locking order (see docs/robustness.md) the cache lock is
the outermost engine lock: code holding it may take the fault-plan and
metrics locks, never the reverse.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ConfigurationError
from ..obs.trace import current_tracer
from ..robustness.faults import fault_point
from .algebra import Query, query_fingerprint
from .evaluator import EvaluationResult, evaluate
from .instance import DatabaseInstance


@dataclass
class CacheStats:
    """Observable counters of one :class:`EvaluationCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: full query evaluations actually performed (== misses, kept
    #: separate so tests can assert the headline claim directly)
    evaluations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.evaluations = 0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, evaluations={self.evaluations})"
        )


@dataclass
class EvaluationCache:
    """LRU cache of query evaluations, keyed by structure + data.

    Parameters
    ----------
    maxsize:
        Maximum number of retained :class:`EvaluationResult` entries;
        the least recently used entry is evicted beyond that.
    """

    maxsize: int = 128
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.maxsize < 1:
            raise ConfigurationError("cache maxsize must be at least 1")
        self._entries: OrderedDict[tuple, EvaluationResult] = OrderedDict()
        # Reentrant: a miss evaluation can re-enter get_or_evaluate
        # (nested subquery evaluation through the same cache).
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    @staticmethod
    def key_for(
        root: Query,
        instance: DatabaseInstance,
        aliases: Mapping[str, str] | None = None,
        engine: str = "row",
    ) -> tuple:
        """The cache key: fingerprint of ``(Q, eta_Q)`` + data key.

        Columnar entries get a distinct key suffix -- the two engines
        produce observationally identical row views, but keeping the
        entries apart preserves each engine's native representation
        (and lets the differential suites hold both at once).  Row
        keys keep their historical two-element shape.
        """
        base = (query_fingerprint(root, aliases), instance.data_key)
        if engine == "row":
            return base
        return base + (engine,)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get_or_evaluate(
        self,
        root: Query,
        instance: DatabaseInstance,
        aliases: Mapping[str, str] | None = None,
        engine: str = "row",
    ) -> EvaluationResult:
        """Serve the evaluation of *root* over *instance* from cache.

        On a miss the tree is evaluated (lineage-tracing, exactly as
        :func:`~repro.relational.evaluator.evaluate`) and the result
        retained.  On a hit against a structurally equal but distinct
        tree object, the result is re-keyed onto the caller's nodes.

        Aborted evaluations never pollute the cache: ``evaluate`` may
        raise (budget exhaustion, injected fault) *before* the entry is
        stored, so every retained result is complete and the counters
        stay consistent -- an aborted miss is a miss without an
        evaluation, and a fault at the store site drops the entry but
        keeps the evaluation count honest.

        Misses are **single-flight**: the cache lock is held across the
        evaluation, so concurrent requests for one key produce exactly
        one evaluation -- the first thread in misses and stores, the
        rest hit the stored entry.  (Requests for *different* keys do
        serialize behind a long evaluation; per-question why-not work
        dominates evaluation time in a batch, so the trade keeps the
        "N questions, 1 evaluation" claim exact instead of racy.)

        With ``engine="columnar"`` the miss evaluates through
        :func:`repro.columnar.evaluate_columnar` and the entry stores
        the native :class:`~repro.columnar.engine.ColumnarResult`;
        conversion to the returned row view happens on demand and is
        memoized on the entry, so N questions against one cache entry
        still pay for exactly one evaluation *and* one conversion.
        """
        with self._lock:
            fault_point("cache.lookup")
            tracer = current_tracer()
            key = self.key_for(root, instance, aliases, engine)
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                if tracer is not None:
                    tracer.metrics.counter("cache.hits").inc()
                return self._row_view(cached, root)
            self.stats.misses += 1
            if tracer is None:
                result = self._evaluate(engine, root, instance)
            else:
                tracer.metrics.counter("cache.misses").inc()
                with tracer.span(
                    "evaluate", category="cache", fingerprint=key[0][:12]
                ):
                    result = self._evaluate(engine, root, instance)
            self.stats.evaluations += 1
            fault_point("cache.store")
            self._entries[key] = result
            if tracer is not None:
                tracer.metrics.counter("cache.stores").inc()
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                if tracer is not None:
                    tracer.metrics.counter("cache.evictions").inc()
            return self._row_view(result, root)

    @staticmethod
    def _evaluate(engine: str, root: Query, instance: DatabaseInstance):
        """Run one evaluation on the requested engine."""
        if engine == "columnar":
            # lazy import: repro.columnar imports this package
            from ..columnar import evaluate_columnar

            return evaluate_columnar(root, instance)
        if engine != "row":
            raise ConfigurationError(
                f"unknown evaluation engine {engine!r}; "
                "expected 'row' or 'columnar'"
            )
        return evaluate(root, instance)

    @staticmethod
    def _row_view(entry, root: Query) -> EvaluationResult:
        """The row view of an entry, re-keyed onto the caller's tree."""
        if isinstance(entry, EvaluationResult):
            if entry.root is root:
                return entry
            return entry.rebind(root)
        # ColumnarResult: memoized lossless conversion + rebind
        return entry.rebind(root)

    def peek(self, key: tuple) -> EvaluationResult | None:
        """The entry under *key*, without touching LRU order or stats."""
        with self._lock:
            return self._entries.get(key)

    def check_invariants(self) -> None:
        """Assert the cache is in a consistent, uncorrupted state.

        Used by the chaos suite after every seeded fault plan: counter
        arithmetic must add up, the LRU bound must hold, and every
        retained entry must be *complete* (all nodes of its tree were
        evaluated -- no partial result survived an aborted run).
        Raises :class:`AssertionError` on violation.  Takes the cache
        lock, so it sees a consistent point-in-time state even while
        worker threads keep using the cache.
        """
        with self._lock:
            assert (
                self.stats.lookups == self.stats.hits + self.stats.misses
            )
            assert 0 <= self.stats.evaluations <= self.stats.misses
            assert len(self._entries) <= self.maxsize
            entries = list(self._entries.values())
        for entry in entries:
            if hasattr(entry, "check_complete"):
                entry.check_complete()  # columnar: one batch per node
                continue
            for node in entry.root.postorder():
                entry.output(node)  # raises EvaluationError if missing

    def clear(self) -> None:
        """Drop all entries (counters are kept; use ``stats.reset()``)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (
            f"EvaluationCache({len(self._entries)}/{self.maxsize} "
            f"entries, {self.stats!r})"
        )


#: Process-wide default cache shared by NedExplain, the Why-Not
#: baseline, and ``repro.explain_batch`` unless a private cache is
#: passed explicitly.
DEFAULT_CACHE = EvaluationCache(maxsize=128)


def get_default_cache() -> EvaluationCache:
    """The process-wide shared :class:`EvaluationCache`."""
    return DEFAULT_CACHE
