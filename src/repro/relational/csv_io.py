"""CSV persistence for :class:`~repro.relational.database.Database`.

A database is stored as a directory with one ``<table>.csv`` per table
plus a ``_schema.json`` catalog (attribute order and key declarations).
Values round-trip with a small type tag-free convention: on load,
fields parse as int, then float, then stay strings; empty fields are
``NULL``.  This is the adoption path for users bringing their own data
to the why-not tooling (see ``repro.cli``).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..errors import ReproError, SchemaError
from ..robustness.faults import fault_point
from .database import Database
from .tuples import Value, qualify

_SCHEMA_FILE = "_schema.json"


def save_database(database: Database, directory: str | Path) -> Path:
    """Write *database* under *directory* (created if needed)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    catalog = {"name": database.name, "tables": []}
    for table_name in database.table_names():
        table = database.table(table_name)
        catalog["tables"].append(
            {
                "name": table_name,
                "attributes": list(table.schema.attributes),
                "key": table.schema.key,
            }
        )
        with open(path / f"{table_name}.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.schema.attributes)
            for row in table.rows:
                writer.writerow(
                    _render(row[qualify(table_name, attribute)])
                    for attribute in table.schema.attributes
                )
    with open(path / _SCHEMA_FILE, "w") as handle:
        json.dump(catalog, handle, indent=2)
    return path


def load_database(directory: str | Path) -> Database:
    """Load a database previously written by :func:`save_database`,
    or a plain directory of CSV files (headers define the schema)."""
    path = Path(directory)
    if not path.is_dir():
        raise SchemaError(f"{path} is not a directory")
    catalog_path = path / _SCHEMA_FILE
    if catalog_path.exists():
        try:
            with open(catalog_path) as handle:
                catalog = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SchemaError(
                f"{catalog_path.name}: invalid JSON catalog "
                f"(line {exc.lineno}, column {exc.colno}): {exc.msg}"
            ) from exc
        if not isinstance(catalog, dict) or not isinstance(
            catalog.get("tables"), list
        ):
            raise SchemaError(
                f"{catalog_path.name}: catalog must be a JSON object "
                "with a 'tables' list"
            )
        database = Database(catalog.get("name", path.name))
        for index, entry in enumerate(catalog["tables"]):
            if not isinstance(entry, dict):
                raise SchemaError(
                    f"{catalog_path.name}: tables[{index}] must be an "
                    f"object, got {type(entry).__name__}"
                )
            try:
                name = entry["name"]
                attributes = entry["attributes"]
            except KeyError as exc:
                raise SchemaError(
                    f"{catalog_path.name}: tables[{index}] is missing "
                    f"the {exc.args[0]!r} field (need 'name' and "
                    "'attributes')"
                ) from exc
            database.create_table(name, attributes, key=entry.get("key"))
            _load_rows(database, name, path)
        return database
    # schema-less directory: infer from CSV headers
    database = Database(path.name)
    csv_files = sorted(p for p in path.iterdir() if p.suffix == ".csv")
    if not csv_files:
        raise SchemaError(f"no CSV files found under {path}")
    for csv_path in csv_files:
        with open(csv_path, newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise SchemaError(
                    f"{csv_path.name} is empty (no header row)"
                ) from None
        database.create_table(csv_path.stem, header)
        _load_rows(database, csv_path.stem, path)
    return database


def _load_rows(database: Database, table_name: str, path: Path) -> None:
    csv_path = path / f"{table_name}.csv"
    if not csv_path.exists():
        return
    table = database.table(table_name)
    with open(csv_path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader, None)
            if header is None:
                return
            unknown = set(header) - set(table.schema.attributes)
            if unknown:
                raise SchemaError(
                    f"{csv_path.name} has columns {sorted(unknown)} not in "
                    f"the declared schema of {table_name!r}"
                )
            for lineno, line in enumerate(reader, start=2):
                fault_point("csv.row")
                if not line:
                    continue  # csv yields [] for blank lines
                if len(line) != len(header):
                    raise SchemaError(
                        f"{csv_path.name}:{lineno}: expected "
                        f"{len(header)} fields, got {len(line)}"
                    )
                values = {
                    attribute: _parse(text)
                    for attribute, text in zip(header, line)
                }
                try:
                    table.insert(**values)
                except SchemaError:
                    raise
                except ReproError as exc:
                    raise SchemaError(
                        f"{csv_path.name}:{lineno}: {exc}"
                    ) from exc
        except csv.Error as exc:
            raise SchemaError(
                f"{csv_path.name}: malformed CSV: {exc}"
            ) from exc


def _render(value: Value) -> str:
    if value is None:
        return ""
    return str(value)


def _parse(text: str) -> Value:
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text
