"""Relation and database instances (Sec. 2.1 of the paper).

A database instance ``I`` over a schema ``S`` assigns to each relation
``R`` in ``S`` a set of tuples over ``type(R)``.  For a query
``(Q, eta_Q)`` (Def. 2.3), the *query input instance* ``I_Q`` assigns to
each alias ``S`` of the query's input schema a copy of ``I | eta_Q(S)``
re-qualified with the alias -- this is what makes self-joins sound: the
two copies of a self-joined relation carry distinct qualified attributes
*and distinct tuple identifiers*, so lineage can tell them apart (the
fix for the baseline's Crime6/Crime7 failure discussed in Sec. 4.2).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping

from ..errors import SchemaError, UnknownRelationError
from .schema import DatabaseSchema, RelationSchema
from .tuples import Tuple, qualify, split_qualified

#: process-wide serial numbers for instances (never reused, unlike id())
_INSTANCE_SERIALS = itertools.count(1)


class RelationInstance:
    """An ordered collection of tuples over one relation schema."""

    def __init__(self, schema: RelationSchema, tuples: Iterable[Tuple] = ()):
        self.schema = schema
        self._tuples: list[Tuple] = []
        self._by_tid: dict[str, Tuple] = {}
        for t in tuples:
            self.add(t)

    def add(self, t: Tuple) -> None:
        """Append *t*, validating its type against the schema."""
        if t.type != self.schema.type:
            raise SchemaError(
                f"tuple of type {sorted(t.type)} does not match relation "
                f"{self.schema.name!r} of type {sorted(self.schema.type)}"
            )
        if t.tid is None:
            raise SchemaError("stored tuples must carry a tuple id")
        if t.tid in self._by_tid:
            raise SchemaError(
                f"duplicate tuple id {t.tid!r} in relation "
                f"{self.schema.name!r}"
            )
        self._tuples.append(t)
        self._by_tid[t.tid] = t

    @property
    def tuples(self) -> tuple[Tuple, ...]:
        """The stored tuples, in insertion order."""
        return tuple(self._tuples)

    def by_tid(self, tid: str) -> Tuple:
        """Return the tuple with identifier *tid*."""
        try:
            return self._by_tid[tid]
        except KeyError:
            raise UnknownRelationError(
                f"no tuple {tid!r} in relation {self.schema.name!r}"
            ) from None

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, t: Tuple) -> bool:
        return t in self._by_tid.values() if t.tid is None else (
            self._by_tid.get(t.tid) == t
        )

    def requalified(self, alias: str) -> "RelationInstance":
        """Return a copy of this instance under query alias *alias*.

        Attributes are re-qualified from ``R.x`` to ``alias.x`` and
        tuple ids from ``R:k`` to ``alias:k`` so that two aliases of the
        same relation yield disjoint lineage domains.
        """
        if alias == self.schema.name:
            return self
        mapping = {
            qualify(self.schema.name, a): qualify(alias, a)
            for a in self.schema.attributes
        }
        renamed_schema = self.schema.renamed(alias)
        copy = RelationInstance(renamed_schema)
        for t in self._tuples:
            values = {mapping[attr]: value for attr, value in t.items()}
            new_tid = _retag_tid(t.tid, self.schema.name, alias)
            copy.add(Tuple(values, tid=new_tid))
        return copy

    def __repr__(self) -> str:
        return (
            f"RelationInstance({self.schema.name!r}, "
            f"{len(self._tuples)} tuples)"
        )


def _retag_tid(tid: str | None, old_alias: str, new_alias: str) -> str:
    """Rewrite a tuple id ``old_alias:k`` as ``new_alias:k``."""
    assert tid is not None
    prefix = f"{old_alias}:"
    if tid.startswith(prefix):
        return f"{new_alias}:{tid[len(prefix):]}"
    return f"{new_alias}:{tid}"


class DatabaseInstance:
    """A database instance: one :class:`RelationInstance` per relation.

    Viewed either as a mapping from relation names to instances or,
    "for the sake of presentation" as the paper puts it, as one big set
    of tuples of possibly different types (:meth:`all_tuples`).
    """

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema
        self._relations: dict[str, RelationInstance] = {
            r.name: RelationInstance(r) for r in schema
        }
        self._serial = next(_INSTANCE_SERIALS)
        self._version = 0
        self._adopted_key: tuple | None = None
        self._adopted_at_version = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every :meth:`add`."""
        return self._version

    def adopt_key(self, key: tuple) -> None:
        """Declare this instance a snapshot identified by *key*.

        Snapshots of the same source at the same source version share
        one key, letting the evaluation cache serve repeated
        derivations (e.g. two engines over one stored database) from a
        single evaluation.  Mutating the snapshot afterwards reverts it
        to its private identity (see :attr:`data_key`).
        """
        self._adopted_key = key
        self._adopted_at_version = self._version

    @property
    def data_key(self) -> tuple:
        """Identity + version key for evaluation caching.

        A pristine snapshot answers with its adopted (shared) key; an
        instance mutated after adoption -- or never adopted -- answers
        with its own never-reused serial plus version, so divergent
        contents can never collide in the cache.
        """
        if (
            self._adopted_key is not None
            and self._version == self._adopted_at_version
        ):
            return self._adopted_key
        return ("inst", self._serial, self._version)

    def relation(self, name: str) -> RelationInstance:
        """Return the instance of relation *name*."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(
                f"relation {name!r} is not part of the instance"
            ) from None

    def __getitem__(self, name: str) -> RelationInstance:
        return self.relation(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> tuple[str, ...]:
        """Relation names in schema order."""
        return self.schema.names()

    def add(self, relation_name: str, t: Tuple) -> None:
        """Insert *t* into relation *relation_name*."""
        self.relation(relation_name).add(t)
        self._version += 1

    def insert_values(self, relation_name: str, tid: str, **attrs) -> Tuple:
        """Build and insert a base tuple from keyword attribute values.

        Attribute names are qualified with the relation name; the tid is
        stored verbatim.  Returns the inserted tuple.
        """
        relation = self.relation(relation_name)
        values = {
            relation.schema.qualified(name): value
            for name, value in attrs.items()
        }
        t = Tuple(values, tid=tid)
        relation.add(t)
        self._version += 1
        return t

    def all_tuples(self) -> tuple[Tuple, ...]:
        """All tuples of the instance (the paper's set-of-tuples view)."""
        result: list[Tuple] = []
        for name in self.relation_names():
            result.extend(self._relations[name].tuples)
        return tuple(result)

    def tuple_by_tid(self, tid: str) -> Tuple:
        """Locate a tuple by its id, searching all relations."""
        alias, _ = split_qualified(tid.replace(":", ".", 1))
        if alias in self._relations:
            return self._relations[alias].by_tid(tid)
        for relation in self._relations.values():
            try:
                return relation.by_tid(tid)
            except UnknownRelationError:
                continue
        raise UnknownRelationError(f"no tuple {tid!r} in any relation")

    def size(self) -> int:
        """Total number of stored tuples."""
        return sum(len(r) for r in self._relations.values())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{len(self._relations[name])}"
            for name in self.relation_names()
        )
        return f"DatabaseInstance({parts})"


def query_input_instance(
    database: DatabaseInstance, aliases: Mapping[str, str]
) -> DatabaseInstance:
    """Build the input instance ``I_Q`` of a query (Def. 2.3).

    For each alias ``S`` with ``eta_Q(S) = R``, the result contains
    ``I | R`` re-qualified (attributes and tuple ids) with ``S``.
    """
    from .schema import alias_schema  # local import to avoid cycle noise

    input_schema = alias_schema(aliases, database.schema)
    result = DatabaseInstance(input_schema)
    for alias, target in aliases.items():
        source = database.relation(target).requalified(alias)
        for t in source:
            result.add(alias, t)
    result.adopt_key(
        ("iq", database.data_key, tuple(sorted(aliases.items())))
    )
    return result
