"""Table statistics and cardinality estimation.

A small optimizer-style statistics layer over the storage engine:
per-column distinct counts, min/max, null fractions, and the classic
System-R estimation rules (1/NDV selectivity for equalities, range
fractions for inequalities, containment assumption for joins).

NedExplain itself does not need an optimizer -- its canonical trees
are fixed by Sec. 3.1's rationales -- but the estimates power
:func:`explain_plan`, the per-node cardinality report used by the
examples and the scaling ablation to reason about where evaluation
time goes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import UnknownRelationError
from .algebra import (
    Aggregate,
    Difference,
    Join,
    Project,
    Query,
    RelationLeaf,
    Select,
    Union,
)
from .conditions import And, Attr, Comparison, Condition, Const, Or
from .database import Database
from .tuples import Value, qualify

#: default selectivity when nothing better is known (System R's 1/10)
DEFAULT_SELECTIVITY = 0.1


@dataclass(frozen=True)
class ColumnStatistics:
    """Statistics of one column."""

    attribute: str
    row_count: int
    distinct_count: int
    null_count: int
    minimum: Value
    maximum: Value

    @property
    def null_fraction(self) -> float:
        if not self.row_count:
            return 0.0
        return self.null_count / self.row_count

    def equality_selectivity(self) -> float:
        """P(column = constant) under uniformity."""
        if not self.distinct_count:
            return 0.0
        return (1.0 - self.null_fraction) / self.distinct_count

    def range_selectivity(self, op: str, bound: Value) -> float:
        """P(column op bound) via linear interpolation on [min, max]."""
        if (
            self.minimum is None
            or self.maximum is None
            or not isinstance(bound, (int, float))
            or not isinstance(self.minimum, (int, float))
            or not isinstance(self.maximum, (int, float))
        ):
            return DEFAULT_SELECTIVITY
        span = self.maximum - self.minimum
        if span <= 0:
            # single-valued column: all or nothing
            from .conditions import compare_values

            return (
                1.0 - self.null_fraction
                if compare_values(self.minimum, op, bound)
                else 0.0
            )
        if op in (">", ">="):
            fraction = (self.maximum - bound) / span
        else:
            fraction = (bound - self.minimum) / span
        fraction = min(max(fraction, 0.0), 1.0)
        return fraction * (1.0 - self.null_fraction)


@dataclass(frozen=True)
class TableStatistics:
    """Statistics of one stored table."""

    name: str
    row_count: int
    columns: Mapping[str, ColumnStatistics]

    def column(self, attribute: str) -> ColumnStatistics:
        try:
            return self.columns[attribute]
        except KeyError:
            raise UnknownRelationError(
                f"no statistics for column {attribute!r} of "
                f"table {self.name!r}"
            ) from None


def collect_statistics(database: Database) -> dict[str, TableStatistics]:
    """Scan every table once and build its statistics."""
    out: dict[str, TableStatistics] = {}
    for table_name in database.table_names():
        table = database.table(table_name)
        columns: dict[str, ColumnStatistics] = {}
        for attribute in table.schema.attributes:
            qualified = qualify(table_name, attribute)
            values = [row[qualified] for row in table.rows]
            non_null = [v for v in values if v is not None]
            orderable = [
                v for v in non_null if isinstance(v, (int, float, str))
            ]
            homogeneous = orderable and all(
                isinstance(v, type(orderable[0]))
                or (isinstance(v, (int, float))
                    and isinstance(orderable[0], (int, float)))
                for v in orderable
            )
            columns[attribute] = ColumnStatistics(
                attribute=attribute,
                row_count=len(values),
                distinct_count=len(set(non_null)),
                null_count=len(values) - len(non_null),
                minimum=min(orderable) if homogeneous else None,
                maximum=max(orderable) if homogeneous else None,
            )
        out[table_name] = TableStatistics(
            name=table_name, row_count=len(table), columns=columns
        )
    return out


class CardinalityEstimator:
    """Estimates output sizes for every node of a query tree."""

    def __init__(
        self,
        database: Database,
        aliases: Mapping[str, str] | None = None,
    ):
        self.statistics = collect_statistics(database)
        self.aliases = dict(aliases or {})

    # ------------------------------------------------------------------
    def estimate(self, node: Query) -> float:
        """Estimated number of output tuples of *node*."""
        if isinstance(node, RelationLeaf):
            table = self.aliases.get(node.alias, node.alias)
            if table not in self.statistics:
                return 0.0
            return float(self.statistics[table].row_count)
        if isinstance(node, Select):
            return self.estimate(node.child) * self._selectivity(
                node.condition, node
            )
        if isinstance(node, Project):
            return self.estimate(node.child)
        if isinstance(node, Aggregate):
            child = self.estimate(node.child)
            if not node.group_by:
                return 1.0
            distinct = self._distinct_product(node)
            if distinct is None:
                return max(child * DEFAULT_SELECTIVITY, 1.0)
            return min(child, float(distinct))
        if isinstance(node, Join):
            left = self.estimate(node.left)
            right = self.estimate(node.right)
            if not node.renaming.triples:
                return left * right  # cross product
            divisor = 1.0
            for triple in node.renaming:
                ndv_left = self._distinct_of(triple.left)
                ndv_right = self._distinct_of(triple.right)
                candidates = [
                    n for n in (ndv_left, ndv_right) if n
                ]
                divisor *= max(candidates) if candidates else 10.0
            return left * right / divisor
        if isinstance(node, Union):
            return self.estimate(node.left) + self.estimate(node.right)
        if isinstance(node, Difference):
            return max(
                self.estimate(node.left) - self.estimate(node.right),
                0.0,
            )
        return 0.0

    # ------------------------------------------------------------------
    def _column_stats(self, attribute: str) -> ColumnStatistics | None:
        if "." not in attribute:
            return None
        alias, column = attribute.split(".", 1)
        table = self.aliases.get(alias, alias)
        stats = self.statistics.get(table)
        if stats is None or column not in stats.columns:
            return None
        return stats.columns[column]

    def _distinct_of(self, attribute: str) -> int | None:
        stats = self._column_stats(attribute)
        return stats.distinct_count if stats else None

    def _distinct_product(self, node: Aggregate) -> int | None:
        product = 1
        for attribute in node.group_by:
            distinct = self._distinct_of(attribute)
            if distinct is None:
                return None
            product *= max(distinct, 1)
        return product

    def _selectivity(self, condition: Condition, node: Select) -> float:
        if isinstance(condition, And):
            out = 1.0
            for part in condition.parts:
                out *= self._selectivity(part, node)
            return out
        if isinstance(condition, Or):
            miss = 1.0
            for part in condition.parts:
                miss *= 1.0 - self._selectivity(part, node)
            return 1.0 - miss
        if isinstance(condition, Comparison):
            return self._comparison_selectivity(condition)
        return DEFAULT_SELECTIVITY

    def _comparison_selectivity(self, comparison: Comparison) -> float:
        left, right = comparison.left, comparison.right
        if isinstance(left, Const) and isinstance(right, Attr):
            comparison = comparison.flipped()
            left, right = comparison.left, comparison.right
        if not isinstance(left, Attr) or not isinstance(right, Const):
            return DEFAULT_SELECTIVITY
        stats = self._column_stats(left.name)
        if stats is None:
            return DEFAULT_SELECTIVITY
        op = comparison.op
        if op == "=":
            return stats.equality_selectivity()
        if op == "!=":
            return max(1.0 - stats.equality_selectivity(), 0.0)
        return stats.range_selectivity(op, right.value)


def actuals_from_trace(tracer, root: Query) -> dict[int, int]:
    """Per-node actual cardinalities recorded by a traced evaluation.

    The evaluator tags every ``operator`` span with the node's
    postorder index and output cardinality
    (:func:`repro.relational.evaluator.evaluate`); this maps those tags
    back onto *root*'s nodes, keyed by ``id(node)`` as
    :func:`explain_plan` expects::

        with tracing() as tracer:
            evaluate_query(root, instance, aliases)
        print(explain_plan(root, database, aliases,
                           actuals=actuals_from_trace(tracer, root)))

    One evaluation may record **several** spans per node: the columnar
    engine emits one span per batch (chunk), each tagged with that
    chunk's ``rows_out``.  Spans sharing a node's postorder index *and*
    the evaluation serial (``eval`` tag) are therefore **summed**; a
    span with a different serial starts a fresh sum, so when the trace
    holds several evaluations of the same tree (cache misses over
    different instances) the last evaluation per node wins -- exactly
    the historical last-wins rule, lifted from spans to evaluations.
    Spans without an ``eval`` tag (pre-batch traces) are each treated
    as their own evaluation, preserving last-span-wins for them.
    Spans of *other* trees in the same trace are skipped: the
    postorder index must agree with a node of *root* (indices past the
    tree size are ignored; fingerprint tags disambiguate the rest).
    """
    nodes = list(root.postorder())
    from .algebra import query_fingerprint

    prefixes = [query_fingerprint(node)[:12] for node in nodes]
    actuals: dict[int, int] = {}
    current_eval: dict[int, object] = {}
    for span in tracer.by_category("operator"):
        index = span.tags.get("postorder")
        rows_out = span.tags.get("rows_out")
        if index is None or rows_out is None:
            continue
        if not (0 <= index < len(nodes)):
            continue
        if span.tags.get("fingerprint") != prefixes[index]:
            continue
        key = id(nodes[index])
        # untagged spans get a unique sentinel: every one of them is
        # its own "evaluation", i.e. plain last-wins
        eval_id = span.tags.get("eval")
        if eval_id is None:
            eval_id = object()
        if current_eval.get(key) != eval_id:
            current_eval[key] = eval_id
            actuals[key] = 0
        actuals[key] += rows_out
    return actuals


def explain_plan(
    root: Query,
    database: Database,
    aliases: Mapping[str, str] | None = None,
    actuals: Mapping[int, int] | None = None,
) -> str:
    """Render the tree with estimated (and optionally actual) rows."""
    estimator = CardinalityEstimator(database, aliases)

    def walk(node: Query, indent: int) -> list[str]:
        pad = "  " * indent
        tag = f"{node.name}: " if node.name else ""
        estimated = estimator.estimate(node)
        extra = ""
        if actuals is not None and id(node) in actuals:
            extra = f", actual={actuals[id(node)]}"
        lines = [
            f"{pad}{tag}{node.describe()}  "
            f"[est={estimated:.1f}{extra}]"
        ]
        for child in node.children:
            lines.extend(walk(child, indent + 1))
        return lines

    return "\n".join(walk(root, 0))
