"""How-provenance polynomials (Green, Karvounarakis, Tannen; PODS'07).

The paper displays the how-provenance of intermediate tuples in its
Table 2 (``t4 |><| t7 |><| t2``) to make lineage legible.  This module
computes full provenance *polynomials* over the semiring of base-tuple
identifiers:

* a base tuple is the variable named by its id;
* a join multiplies the polynomials of its two inputs;
* selection/projection/renaming pass polynomials through;
* duplicate-merging operators (the same value derived several ways)
  *add* polynomials -- hence projections and unions produce sums;
* aggregation multiplies the polynomials of the whole group.

Polynomials are kept in a normalized sum-of-products form
(:class:`Polynomial` = set of monomials; :class:`Monomial` = multiset
of ids), so equality and rendering are canonical.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping

from .algebra import Query
from .evaluator import EvaluationResult
from .tuples import Tuple, Value


@dataclass(frozen=True)
class Monomial:
    """A product of base-tuple identifiers (with multiplicities)."""

    factors: tuple[tuple[str, int], ...]

    @classmethod
    def of(cls, *ids: str) -> "Monomial":
        counts = Counter(ids)
        return cls(tuple(sorted(counts.items())))

    @classmethod
    def one(cls) -> "Monomial":
        return cls(())

    def __mul__(self, other: "Monomial") -> "Monomial":
        counts = Counter(dict(self.factors))
        counts.update(dict(other.factors))
        return Monomial(tuple(sorted(counts.items())))

    @property
    def variables(self) -> frozenset[str]:
        return frozenset(name for name, _ in self.factors)

    def render(self) -> str:
        if not self.factors:
            return "1"
        parts = []
        for name, power in self.factors:
            parts.append(name if power == 1 else f"{name}^{power}")
        return "*".join(parts)

    def __repr__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class Polynomial:
    """A sum of monomials with natural-number coefficients."""

    terms: tuple[tuple[Monomial, int], ...]

    @classmethod
    def of_variable(cls, name: str) -> "Polynomial":
        return cls(((Monomial.of(name), 1),))

    @classmethod
    def zero(cls) -> "Polynomial":
        return cls(())

    @classmethod
    def _normalize(
        cls, terms: Iterable[tuple[Monomial, int]]
    ) -> "Polynomial":
        combined: dict[Monomial, int] = {}
        for monomial, coefficient in terms:
            combined[monomial] = combined.get(monomial, 0) + coefficient
        kept = tuple(
            sorted(
                (
                    (monomial, coefficient)
                    for monomial, coefficient in combined.items()
                    if coefficient
                ),
                key=lambda item: item[0].render(),
            )
        )
        return cls(kept)

    def __add__(self, other: "Polynomial") -> "Polynomial":
        return Polynomial._normalize(self.terms + other.terms)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        products = [
            (m1 * m2, c1 * c2)
            for m1, c1 in self.terms
            for m2, c2 in other.terms
        ]
        return Polynomial._normalize(products)

    def is_zero(self) -> bool:
        return not self.terms

    @property
    def variables(self) -> frozenset[str]:
        out: set[str] = set()
        for monomial, _ in self.terms:
            out |= monomial.variables
        return frozenset(out)

    def derivation_count(self) -> int:
        """Number of distinct derivations (sum of coefficients)."""
        return sum(coefficient for _, coefficient in self.terms)

    def render(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for monomial, coefficient in self.terms:
            if coefficient == 1:
                parts.append(monomial.render())
            else:
                parts.append(f"{coefficient}*{monomial.render()}")
        return " + ".join(parts)

    def __repr__(self) -> str:
        return self.render()


def how_provenance_of(
    result: EvaluationResult, node: Query | None = None
) -> dict[Tuple, Polynomial]:
    """Provenance polynomial of every output tuple of *node*.

    Tuples of *node*'s output that share values but differ in lineage
    are separate derivations in our evaluator; their polynomials are
    the products of their parents' polynomials.  Use
    :func:`value_provenance` for the collapsed, per-value view (where
    alternative derivations add up).
    """
    node = node or result.root
    memo: dict[int, Polynomial] = {}

    def polynomial(t: Tuple) -> Polynomial:
        key = id(t)
        if key in memo:
            return memo[key]
        if t.is_base() or not t.parents:
            poly = (
                Polynomial.of_variable(t.tid)
                if t.tid is not None
                else Polynomial.zero()
            )
        else:
            poly = Polynomial(((Monomial.one(), 1),))
            for parent in t.parents:
                poly = poly * polynomial(parent)
        memo[key] = poly
        return poly

    return {t: polynomial(t) for t in result.output(node)}


def value_provenance(
    result: EvaluationResult, node: Query | None = None
) -> dict[frozenset, tuple[Mapping[str, Value], Polynomial]]:
    """Per-*value* provenance: alternative derivations are summed.

    Returns a map keyed by the frozen attribute/value set; each entry
    holds the plain values and the summed polynomial (the classic
    Green-et-al. semantics where duplicate elimination is ``+``).
    """
    node = node or result.root
    per_tuple = how_provenance_of(result, node)
    collapsed: dict[frozenset, tuple[Mapping[str, Value], Polynomial]] = {}
    for t, poly in per_tuple.items():
        key = frozenset(t.items())
        if key in collapsed:
            values, existing = collapsed[key]
            collapsed[key] = (values, existing + poly)
        else:
            collapsed[key] = (dict(t.items()), poly)
    return collapsed


def explain_derivations(
    result: EvaluationResult, node: Query | None = None
) -> str:
    """Human-readable provenance listing for *node*'s output."""
    entries = value_provenance(result, node)
    if not entries:
        return "(empty)"
    lines = []
    for _key, (values, poly) in sorted(
        entries.items(), key=lambda item: repr(sorted(item[1][0].items()))
    ):
        rendered = ", ".join(
            f"{attr}={value!r}" for attr, value in sorted(values.items())
        )
        lines.append(f"  ({rendered})  <-  {poly.render()}")
    return "\n".join(lines)
