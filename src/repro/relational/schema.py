"""Relation and database schemas (Sec. 2.1 of the paper).

A relation schema ``R(A1, ..., An)`` has the *type*
``{R.A1, ..., R.An}``: every attribute is qualified by the relation
name, so two distinct relation schemas always have disjoint types --
the property Def. 2.2 relies on to define joins and unions through
renamings instead of positional matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..errors import SchemaError, UnknownRelationError
from .tuples import qualify


@dataclass(frozen=True)
class RelationSchema:
    """Schema of a stored relation.

    Parameters
    ----------
    name:
        Relation name, e.g. ``"A"``.
    attributes:
        Unqualified attribute names in declaration order.
    key:
        Optional name of the key attribute.  The paper's
        CompatibleFinder (Sec. 3.1, step 2a) retrieves tuples by their
        key; our :class:`~repro.relational.database.Database` enforces
        uniqueness on it.
    """

    name: str
    attributes: tuple[str, ...]
    key: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if "." in self.name:
            raise SchemaError(
                f"relation name {self.name!r} must not contain '.'"
            )
        if not self.attributes:
            raise SchemaError(
                f"relation {self.name!r} must have at least one attribute"
            )
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f"relation {self.name!r} has duplicate attributes"
            )
        for attribute in self.attributes:
            if "." in attribute:
                raise SchemaError(
                    f"attribute {attribute!r} of relation {self.name!r} "
                    "must be unqualified"
                )
        if self.key is not None and self.key not in self.attributes:
            raise SchemaError(
                f"key {self.key!r} is not an attribute of {self.name!r}"
            )

    @property
    def type(self) -> frozenset[str]:
        """The qualified type ``{R.A1, ..., R.An}`` of the relation."""
        return frozenset(qualify(self.name, a) for a in self.attributes)

    def qualified(self, attribute: str) -> str:
        """Qualify *attribute* with this relation's name.

        Raises :class:`SchemaError` when the attribute does not belong
        to the schema.
        """
        if attribute not in self.attributes:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            )
        return qualify(self.name, attribute)

    def renamed(self, alias: str) -> "RelationSchema":
        """Return this schema under a different name (query alias)."""
        return RelationSchema(alias, self.attributes, self.key)


@dataclass(frozen=True)
class DatabaseSchema:
    """A database schema ``S = {R1, ..., Rn}`` (Sec. 2.1)."""

    relations: tuple[RelationSchema, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [r.name for r in self.relations]
        if len(set(names)) != len(names):
            raise SchemaError("database schema has duplicate relation names")

    @classmethod
    def of(cls, *relations: RelationSchema) -> "DatabaseSchema":
        """Build a schema from the given relation schemas."""
        return cls(tuple(relations))

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self.relations)

    def __contains__(self, name: str) -> bool:
        return any(r.name == name for r in self.relations)

    def relation(self, name: str) -> RelationSchema:
        """Return the schema of relation *name*.

        Raises :class:`UnknownRelationError` when absent.
        """
        for relation in self.relations:
            if relation.name == name:
                return relation
        raise UnknownRelationError(
            f"relation {name!r} is not part of the database schema"
        )

    def names(self) -> tuple[str, ...]:
        """Relation names in declaration order."""
        return tuple(r.name for r in self.relations)

    def with_relation(self, relation: RelationSchema) -> "DatabaseSchema":
        """Return a copy of this schema extended with *relation*."""
        return DatabaseSchema(self.relations + (relation,))


def alias_schema(
    aliases: Mapping[str, str], database: DatabaseSchema
) -> DatabaseSchema:
    """Build the input schema ``S_Q`` of a query over *database*.

    *aliases* is the mapping ``eta_Q`` of Def. 2.3 from query-local
    relation names (aliases) to stored relation names; the result
    contains one relation schema per alias, each a renamed copy of the
    underlying relation.  Self-joins are expressed by mapping two
    aliases to the same stored relation.
    """
    renamed: list[RelationSchema] = []
    for alias, target in aliases.items():
        renamed.append(database.relation(target).renamed(alias))
    return DatabaseSchema(tuple(renamed))


def check_disjoint(left: Iterable[str], right: Iterable[str]) -> None:
    """Raise :class:`SchemaError` when the two name sets intersect.

    Used to enforce the ``S1 inter S2 = empty`` requirement of
    Def. 2.2 for joins and unions.
    """
    overlap = set(left) & set(right)
    if overlap:
        raise SchemaError(
            f"input schemas must be disjoint; shared aliases: "
            f"{sorted(overlap)}"
        )
