"""Relational substrate: data model, algebra, evaluation, storage.

This subpackage implements everything the paper assumes from the
relational world (Sec. 2.1): tuples with qualified attributes, schemas
and instances, the SPJA+union query algebra of Def. 2.2, renamings,
lineage-tracing evaluation, an in-memory database engine, and a SQL
frontend for the supported query class.
"""

from .aggregates import AGGREGATE_FUNCTIONS, AggregateCall
from .algebra import (
    Aggregate,
    Difference,
    Join,
    Project,
    Query,
    RelationLeaf,
    Select,
    Union,
    assign_labels,
    find_node,
    subtree_covering,
    tabq_order,
    validate_tree,
)
from .conditions import (
    And,
    Attr,
    Comparison,
    Condition,
    Const,
    FalseCondition,
    Or,
    TrueCondition,
    Var,
    attr_attr_cmp,
    attr_cmp,
    compare_values,
    is_satisfiable,
    var_cmp,
    var_var_cmp,
)
from .algebra import condition_tokens, query_fingerprint, structure_tokens
from .database import Database, Table
from .evalcache import (
    CacheStats,
    EvaluationCache,
    get_default_cache,
)
from .evaluator import (
    EvaluationResult,
    evaluate,
    evaluate_query,
    resolve_aliases,
    result_contains,
)
from .instance import (
    DatabaseInstance,
    RelationInstance,
    query_input_instance,
)
from .lineage import (
    base_lineage,
    direct_lineage,
    descends_from,
    format_output,
    how_provenance,
    is_successor,
    lineage_within,
    successors_in,
)
from .renaming import RenameTriple, Renaming, natural_renaming
from .schema import DatabaseSchema, RelationSchema, alias_schema
from .tuples import (
    Tuple,
    Value,
    alias_of,
    base_tuple,
    is_qualified,
    qualify,
    split_qualified,
    unqualified_name,
)

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "AggregateCall",
    "Aggregate",
    "And",
    "Attr",
    "CacheStats",
    "Comparison",
    "Condition",
    "Const",
    "Database",
    "DatabaseInstance",
    "DatabaseSchema",
    "Difference",
    "EvaluationCache",
    "EvaluationResult",
    "FalseCondition",
    "Join",
    "Or",
    "Project",
    "Query",
    "RelationInstance",
    "RelationLeaf",
    "RelationSchema",
    "RenameTriple",
    "Renaming",
    "Select",
    "Table",
    "TrueCondition",
    "Tuple",
    "Union",
    "Value",
    "Var",
    "alias_of",
    "alias_schema",
    "assign_labels",
    "attr_attr_cmp",
    "attr_cmp",
    "base_lineage",
    "base_tuple",
    "compare_values",
    "condition_tokens",
    "descends_from",
    "direct_lineage",
    "evaluate",
    "evaluate_query",
    "find_node",
    "format_output",
    "get_default_cache",
    "how_provenance",
    "is_qualified",
    "is_satisfiable",
    "is_successor",
    "lineage_within",
    "natural_renaming",
    "qualify",
    "query_fingerprint",
    "query_input_instance",
    "resolve_aliases",
    "result_contains",
    "split_qualified",
    "structure_tokens",
    "subtree_covering",
    "successors_in",
    "tabq_order",
    "unqualified_name",
    "validate_tree",
    "var_cmp",
    "var_var_cmp",
]
