"""Tokenizer for the SQL subset (SPJA + UNION).

Produces a flat token stream for the recursive-descent parser.  The
subset covers exactly the query class of Def. 2.2, i.e. what a user
would write instead of algebra (the paper's Fig. 1(a)): ``SELECT``
lists with aggregation calls, ``FROM`` lists with aliases, conjunctive
``WHERE`` clauses, ``GROUP BY``, and ``UNION``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ...errors import SqlSyntaxError

KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "AS",
        "AND",
        "UNION",
        "ALL",
        "JOIN",
        "INNER",
        "ON",
    }
)

AGGREGATE_KEYWORDS = frozenset({"SUM", "COUNT", "AVG", "MIN", "MAX"})

_SYMBOLS = ("<>", "!=", "<=", ">=", "=", "<", ">", "(", ")", ",", ".", "*")


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # KEYWORD | AGG | IDENT | NUMBER | STRING | SYMBOL | EOF
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.text == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind == "SYMBOL" and self.text == symbol

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})"


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    position = 0
    length = len(text)
    while position < length:
        ch = text[position]
        if ch.isspace():
            position += 1
            continue
        if ch == "-" and text[position : position + 2] == "--":
            # line comment
            newline = text.find("\n", position)
            position = length if newline < 0 else newline + 1
            continue
        if ch in "'\"":
            # scan to the closing quote; a doubled quote escapes itself
            pieces: list[str] = []
            cursor = position + 1
            while True:
                end = text.find(ch, cursor)
                if end < 0:
                    raise SqlSyntaxError(
                        "unterminated string literal", position
                    )
                pieces.append(text[cursor:end])
                if text[end : end + 2] == ch * 2:
                    pieces.append(ch)
                    cursor = end + 2
                    continue
                cursor = end + 1
                break
            yield Token("STRING", "".join(pieces), position)
            position = cursor
            continue
        if ch.isdigit() or (
            ch == "-" and position + 1 < length and text[position + 1].isdigit()
        ):
            start = position
            position += 1
            while position < length and (
                text[position].isdigit() or text[position] == "."
            ):
                position += 1
            yield Token("NUMBER", text[start:position], start)
            continue
        if ch.isalpha() or ch == "_":
            start = position
            while position < length and (
                text[position].isalnum() or text[position] == "_"
            ):
                position += 1
            word = text[start:position]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token("KEYWORD", upper, start)
            elif upper in AGGREGATE_KEYWORDS:
                yield Token("AGG", upper.lower(), start)
            else:
                yield Token("IDENT", word, start)
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, position):
                canonical = "!=" if symbol == "<>" else symbol
                yield Token("SYMBOL", canonical, position)
                position += len(symbol)
                break
        else:
            raise SqlSyntaxError(
                f"unexpected character {ch!r}", position
            )
    yield Token("EOF", "", length)
