"""Abstract syntax tree for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union as TypingUnion


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly qualified) column reference."""

    table: str | None
    column: str

    def __repr__(self) -> str:
        if self.table is None:
            return self.column
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class Literal:
    """A constant literal."""

    value: object

    def __repr__(self) -> str:
        return repr(self.value)


Operand = TypingUnion[ColumnRef, Literal]


@dataclass(frozen=True)
class SelectColumn:
    """One plain output column, with an optional alias."""

    column: ColumnRef
    alias: str | None = None


@dataclass(frozen=True)
class SelectAggregate:
    """One aggregate call in the select list."""

    function: str
    column: ColumnRef
    alias: str | None = None


SelectItem = TypingUnion[SelectColumn, SelectAggregate]


@dataclass(frozen=True)
class TableRef:
    """One FROM-list entry: a table with an optional alias."""

    table: str
    alias: str | None = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class WhereComparison:
    """One conjunct of the WHERE clause."""

    left: Operand
    op: str
    right: Operand


@dataclass
class SelectStatement:
    """One SELECT block."""

    select_items: list[SelectItem] = field(default_factory=list)
    select_star: bool = False
    tables: list[TableRef] = field(default_factory=list)
    where: list[WhereComparison] = field(default_factory=list)
    group_by: list[ColumnRef] = field(default_factory=list)


@dataclass
class UnionStatement:
    """A UNION of two (possibly themselves unioned) statements."""

    left: "SelectStatement | UnionStatement"
    right: "SelectStatement | UnionStatement"


Statement = TypingUnion[SelectStatement, UnionStatement]
