"""Translate parsed SQL into canonicalizable query specs.

The output is a :class:`~repro.core.canonical.SPJASpec` (or a
:class:`~repro.core.canonical.UnionSpec`), i.e. exactly what
:func:`repro.core.canonical.canonicalize` consumes -- the "automatic
translation to our query form" the paper mentions in Sec. 2.1.

Translation rules:

* an equality between columns of two *different* aliases becomes a
  join pair (its renamed attribute is the left column's name);
* every other WHERE conjunct becomes a selection condition;
* aggregate select items become ``alpha_{G,F}`` calls (``AS`` names
  the output attribute); plain select items become the projection;
* ``UNION`` builds the renaming from the two branches' projections,
  positionally (``AS`` on the left branch names the unified column).
"""

from __future__ import annotations

from ...errors import SqlSyntaxError, UnknownRelationError
from ..conditions import Attr, Comparison, Condition, Const
from ..renaming import Renaming
from ..schema import DatabaseSchema
from ..tuples import qualify, unqualified_name
from ...core.canonical import JoinPair, QuerySpec, SPJASpec, UnionSpec
from ..aggregates import AggregateCall
from .ast_nodes import (
    ColumnRef,
    Literal,
    SelectAggregate,
    SelectColumn,
    SelectStatement,
    Statement,
    UnionStatement,
    WhereComparison,
)
from .parser import parse_sql


def translate(statement: Statement, schema: DatabaseSchema) -> QuerySpec:
    """Translate an AST into a query spec over *schema*."""
    if isinstance(statement, UnionStatement):
        return _translate_union(statement, schema)
    spec, _aliases = _translate_select(statement, schema)
    return spec


def sql_to_spec(text: str, schema: DatabaseSchema) -> QuerySpec:
    """Parse and translate SQL text in one step."""
    return translate(parse_sql(text), schema)


def sql_to_canonical(text: str, schema: DatabaseSchema):
    """Parse, translate, and canonicalize SQL text."""
    from ...core.canonical import canonicalize

    return canonicalize(sql_to_spec(text, schema), schema)


# ---------------------------------------------------------------------------
# SELECT translation
# ---------------------------------------------------------------------------
class _Resolver:
    """Resolves column references to qualified attribute names."""

    def __init__(self, statement: SelectStatement, schema: DatabaseSchema):
        self.aliases: dict[str, str] = {}
        for table_ref in statement.tables:
            alias = table_ref.effective_alias
            if alias in self.aliases:
                raise SqlSyntaxError(
                    f"duplicate alias {alias!r} in FROM clause"
                )
            try:
                schema.relation(table_ref.table)
            except UnknownRelationError as exc:
                raise SqlSyntaxError(str(exc)) from exc
            self.aliases[alias] = table_ref.table
        self.schema = schema

    def resolve(self, ref: ColumnRef) -> str:
        if ref.table is not None:
            if ref.table not in self.aliases:
                raise SqlSyntaxError(
                    f"unknown alias {ref.table!r} in column reference"
                )
            relation = self.schema.relation(self.aliases[ref.table])
            if ref.column not in relation.attributes:
                raise SqlSyntaxError(
                    f"table {relation.name!r} has no column "
                    f"{ref.column!r}"
                )
            return qualify(ref.table, ref.column)
        matches = [
            alias
            for alias, table in self.aliases.items()
            if ref.column in self.schema.relation(table).attributes
        ]
        if not matches:
            raise SqlSyntaxError(f"unknown column {ref.column!r}")
        if len(matches) > 1:
            raise SqlSyntaxError(
                f"ambiguous column {ref.column!r}; qualify it with one "
                f"of {sorted(matches)}"
            )
        return qualify(matches[0], ref.column)


def _translate_select(
    statement: SelectStatement, schema: DatabaseSchema
) -> tuple[SPJASpec, dict[int, str | None]]:
    """Translate one SELECT; also returns select-position -> AS alias."""
    resolver = _Resolver(statement, schema)

    joins: list[JoinPair] = []
    selections: list[Condition] = []
    for comparison in statement.where:
        _translate_conjunct(comparison, resolver, joins, selections)

    group_by = tuple(resolver.resolve(ref) for ref in statement.group_by)
    aggregates: list[AggregateCall] = []
    projection: list[str] = []
    out_aliases: dict[int, str | None] = {}
    for position, item in enumerate(statement.select_items):
        if isinstance(item, SelectAggregate):
            alias = item.alias or (
                f"{item.function}_{unqualified_name(item.column.column)}"
            )
            aggregates.append(
                AggregateCall(
                    item.function, resolver.resolve(item.column), alias
                )
            )
            out_aliases[position] = item.alias
        else:
            assert isinstance(item, SelectColumn)
            projection.append(resolver.resolve(item.column))
            out_aliases[position] = item.alias

    has_aggregation = bool(aggregates) or bool(group_by)
    if has_aggregation:
        plain = frozenset(projection)
        if not plain <= frozenset(group_by):
            raise SqlSyntaxError(
                "non-aggregated select columns must appear in GROUP BY"
            )
        spec_projection: tuple[str, ...] | None = None
    elif statement.select_star:
        spec_projection = None
    else:
        spec_projection = tuple(projection)

    spec = SPJASpec(
        aliases=dict(resolver.aliases),
        joins=joins,
        selections=selections,
        projection=spec_projection,
        group_by=group_by,
        aggregates=tuple(aggregates),
    )
    return spec, out_aliases


def _translate_conjunct(
    comparison: WhereComparison,
    resolver: _Resolver,
    joins: list[JoinPair],
    selections: list[Condition],
) -> None:
    left, right = comparison.left, comparison.right
    if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        left_q = resolver.resolve(left)
        right_q = resolver.resolve(right)
        left_alias = left_q.split(".", 1)[0]
        right_alias = right_q.split(".", 1)[0]
        if comparison.op == "=" and left_alias != right_alias:
            joins.append(JoinPair(left_q, right_q))
        else:
            selections.append(
                Comparison(Attr(left_q), comparison.op, Attr(right_q))
            )
        return
    if isinstance(left, Literal) and isinstance(right, Literal):
        raise SqlSyntaxError(
            "constant-only WHERE conjuncts are not supported"
        )
    if isinstance(left, Literal):
        # normalize "literal op column" to "column flipped-op literal"
        flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(
            comparison.op, comparison.op
        )
        assert isinstance(right, ColumnRef)
        selections.append(
            Comparison(
                Attr(resolver.resolve(right)), flipped, Const(left.value)
            )
        )
        return
    assert isinstance(left, ColumnRef) and isinstance(right, Literal)
    selections.append(
        Comparison(Attr(resolver.resolve(left)), comparison.op,
                   Const(right.value))
    )


# ---------------------------------------------------------------------------
# UNION translation
# ---------------------------------------------------------------------------
def _translate_union(
    statement: UnionStatement, schema: DatabaseSchema
) -> UnionSpec:
    left = statement.left
    right = statement.right
    left_spec = translate(left, schema)
    right_spec = translate(right, schema)
    renaming = _union_renaming(left, left_spec, right_spec)
    return UnionSpec(left=left_spec, right=right_spec, renaming=renaming)


def _branch_output(
    spec: QuerySpec,
) -> tuple[str, ...]:
    if isinstance(spec, UnionSpec):
        # renamed output of a nested union
        return tuple(sorted(spec.renaming.codomain))
    if spec.has_aggregation:
        return spec.group_by + tuple(c.alias for c in spec.aggregates)
    if spec.projection is None:
        raise SqlSyntaxError(
            "UNION branches need an explicit select list"
        )
    return spec.projection


def _union_renaming(
    left_stmt,
    left_spec: QuerySpec,
    right_spec: QuerySpec,
) -> Renaming:
    left_attrs = _branch_output(left_spec)
    right_attrs = _branch_output(right_spec)
    if len(left_attrs) != len(right_attrs):
        raise SqlSyntaxError(
            "UNION branches have different numbers of columns"
        )
    aliases = _select_aliases(left_stmt)
    triples: list[tuple[str, str, str]] = []
    for position, (left_attr, right_attr) in enumerate(
        zip(left_attrs, right_attrs)
    ):
        if left_attr == right_attr:
            continue  # already aligned
        new_name = aliases.get(position) or unqualified_name(left_attr)
        triples.append((left_attr, right_attr, new_name))
    return Renaming.of(*triples)


def _select_aliases(statement) -> dict[int, str | None]:
    if isinstance(statement, UnionStatement):
        return {}
    out: dict[int, str | None] = {}
    for position, item in enumerate(statement.select_items):
        out[position] = item.alias
    return out
