"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from ...errors import SqlSyntaxError
from .ast_nodes import (
    ColumnRef,
    Literal,
    Operand,
    SelectAggregate,
    SelectColumn,
    SelectStatement,
    Statement,
    TableRef,
    UnionStatement,
    WhereComparison,
)
from .lexer import Token, tokenize

_COMPARISON_SYMBOLS = ("=", "!=", "<=", ">=", "<", ">")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self._index += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise SqlSyntaxError(
                f"expected {word}, found {self.current.text!r}",
                self.current.position,
            )
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        if not self.current.is_symbol(symbol):
            raise SqlSyntaxError(
                f"expected {symbol!r}, found {self.current.text!r}",
                self.current.position,
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind not in ("IDENT", "AGG"):
            raise SqlSyntaxError(
                f"expected identifier, found {self.current.text!r}",
                self.current.position,
            )
        return self.advance()

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse_statement(self) -> Statement:
        statement: Statement = self.parse_select()
        while self.current.is_keyword("UNION"):
            self.advance()
            if self.current.is_keyword("ALL"):
                self.advance()
            right = self.parse_select()
            statement = UnionStatement(statement, right)
        if self.current.kind != "EOF":
            raise SqlSyntaxError(
                f"trailing input {self.current.text!r}",
                self.current.position,
            )
        return statement

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        statement = SelectStatement()
        if self.current.is_symbol("*"):
            self.advance()
            statement.select_star = True
        else:
            statement.select_items.append(self.parse_select_item())
            while self.current.is_symbol(","):
                self.advance()
                statement.select_items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        statement.tables.append(self.parse_table_ref())
        while True:
            if self.current.is_symbol(","):
                self.advance()
                statement.tables.append(self.parse_table_ref())
                continue
            if self.current.is_keyword("INNER") or self.current.is_keyword(
                "JOIN"
            ):
                # explicit join syntax: [INNER] JOIN t [alias] ON conds
                if self.current.is_keyword("INNER"):
                    self.advance()
                self.expect_keyword("JOIN")
                statement.tables.append(self.parse_table_ref())
                self.expect_keyword("ON")
                statement.where.append(self.parse_comparison())
                while self.current.is_keyword("AND"):
                    self.advance()
                    statement.where.append(self.parse_comparison())
                continue
            break
        if self.current.is_keyword("WHERE"):
            self.advance()
            statement.where.append(self.parse_comparison())
            while self.current.is_keyword("AND"):
                self.advance()
                statement.where.append(self.parse_comparison())
        if self.current.is_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            statement.group_by.append(self.parse_column_ref())
            while self.current.is_symbol(","):
                self.advance()
                statement.group_by.append(self.parse_column_ref())
        return statement

    def parse_select_item(self):
        if self.current.kind == "AGG":
            function = self.advance().text
            self.expect_symbol("(")
            column = self.parse_column_ref()
            self.expect_symbol(")")
            alias = self.parse_optional_alias()
            return SelectAggregate(function, column, alias)
        column = self.parse_column_ref()
        alias = self.parse_optional_alias()
        return SelectColumn(column, alias)

    def parse_optional_alias(self) -> str | None:
        if self.current.is_keyword("AS"):
            self.advance()
            return self.expect_ident().text
        return None

    def parse_table_ref(self) -> TableRef:
        table = self.expect_ident().text
        alias: str | None = None
        if self.current.is_keyword("AS"):
            self.advance()
            alias = self.expect_ident().text
        elif self.current.kind == "IDENT":
            alias = self.advance().text
        return TableRef(table, alias)

    def parse_column_ref(self) -> ColumnRef:
        first = self.expect_ident().text
        if self.current.is_symbol("."):
            self.advance()
            second = self.expect_ident().text
            return ColumnRef(first, second)
        return ColumnRef(None, first)

    def parse_operand(self) -> Operand:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            text = token.text
            value = float(text) if "." in text else int(text)
            return Literal(value)
        if token.kind == "STRING":
            self.advance()
            return Literal(token.text)
        return self.parse_column_ref()

    def parse_comparison(self) -> WhereComparison:
        left = self.parse_operand()
        token = self.current
        if token.kind != "SYMBOL" or token.text not in _COMPARISON_SYMBOLS:
            raise SqlSyntaxError(
                f"expected comparison operator, found {token.text!r}",
                token.position,
            )
        self.advance()
        right = self.parse_operand()
        return WhereComparison(left, token.text, right)


def parse_sql(text: str) -> Statement:
    """Parse SQL text into a statement AST."""
    return _Parser(tokenize(text)).parse_statement()
