"""SQL frontend for the SPJA + UNION query subset of Def. 2.2."""

from .ast_nodes import (
    ColumnRef,
    Literal,
    SelectAggregate,
    SelectColumn,
    SelectStatement,
    TableRef,
    UnionStatement,
    WhereComparison,
)
from .lexer import Token, tokenize
from .parser import parse_sql
from .translate import sql_to_canonical, sql_to_spec, translate

__all__ = [
    "ColumnRef",
    "Literal",
    "SelectAggregate",
    "SelectColumn",
    "SelectStatement",
    "TableRef",
    "Token",
    "UnionStatement",
    "WhereComparison",
    "parse_sql",
    "sql_to_canonical",
    "sql_to_spec",
    "tokenize",
    "translate",
]
