"""Render query specs back to SQL text.

The inverse of :mod:`repro.relational.sql.translate`: a
:class:`~repro.core.canonical.SPJASpec` or
:class:`~repro.core.canonical.UnionSpec` becomes executable SQL of the
supported subset.  Round-tripping (``format -> parse -> translate``)
preserves the spec structure, which the test suite checks
property-style.
"""

from __future__ import annotations

from ...core.canonical import QuerySpec, SPJASpec, UnionSpec
from ...errors import QueryError
from ..conditions import And, Attr, Comparison, Condition, Const
from ..tuples import Value


def format_spec(spec: QuerySpec) -> str:
    """Render *spec* as SQL text."""
    if isinstance(spec, UnionSpec):
        return (
            format_spec(spec.left)
            + "\nUNION\n"
            + format_spec(spec.right)
        )
    return _format_spja(spec)


def _format_spja(spec: SPJASpec) -> str:
    select_items: list[str] = []
    if spec.has_aggregation:
        select_items.extend(spec.group_by)
        for call in spec.aggregates:
            select_items.append(
                f"{call.function.upper()}({call.attribute}) "
                f"AS {call.alias}"
            )
    elif spec.projection is None:
        select_items.append("*")
    else:
        select_items.extend(spec.projection)

    from_items = [
        table if alias == table else f"{table} {alias}"
        for alias, table in spec.aliases.items()
    ]

    where_items: list[str] = []
    for pair in spec.joins:
        where_items.append(f"{pair.left} = {pair.right}")
    for condition in spec.selections:
        where_items.append(_format_condition(condition))

    lines = [
        "SELECT " + ", ".join(select_items),
        "FROM " + ", ".join(from_items),
    ]
    if where_items:
        lines.append("WHERE " + " AND ".join(where_items))
    if spec.group_by:
        lines.append("GROUP BY " + ", ".join(spec.group_by))
    return "\n".join(lines)


def _format_condition(condition: Condition) -> str:
    if isinstance(condition, Comparison):
        return (
            f"{_format_term(condition.left)} {condition.op} "
            f"{_format_term(condition.right)}"
        )
    if isinstance(condition, And):
        return " AND ".join(
            _format_condition(part) for part in condition.parts
        )
    raise QueryError(
        f"cannot render condition {condition!r} as SQL (only "
        "conjunctions of comparisons are expressible in the subset)"
    )


def _format_term(term) -> str:
    if isinstance(term, Attr):
        return term.name
    if isinstance(term, Const):
        return _format_value(term.value)
    raise QueryError(f"cannot render term {term!r} as SQL")


def _format_value(value: Value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if value is None:
        raise QueryError("NULL literals are not part of the SQL subset")
    return str(value)
