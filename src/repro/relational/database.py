"""A small in-memory database engine.

This module is the library's substitute for the PostgreSQL 9.2 instance
backing the paper's experiments.  It provides exactly the services the
algorithms need from a store:

* table creation with key constraints (the paper's CompatibleFinder
  "assumes that each table has a key attribute to uniquely identify a
  tuple", Sec. 3.1 footnote 2);
* inserts that mint stable tuple identifiers ``Table:key``;
* equality lookups served by hash indexes, plus predicate scans -- the
  ``SELECT <key> FROM R WHERE ...`` queries CompatibleFinder issues;
* derivation of query input instances for ``(Q, eta_Q)`` pairs.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Sequence

from ..errors import IntegrityError, SchemaError, UnknownRelationError
from .conditions import Condition, compare_values
from .instance import DatabaseInstance, query_input_instance
from .schema import DatabaseSchema, RelationSchema
from .tuples import Tuple, Value, qualify


class _Index:
    """Hash index from one attribute's values to tuple ids."""

    def __init__(self, attribute: str):
        self.attribute = attribute
        self._buckets: dict[Value, list[str]] = {}

    def add(self, value: Value, tid: str) -> None:
        self._buckets.setdefault(value, []).append(tid)

    def lookup(self, value: Value) -> Sequence[str]:
        return tuple(self._buckets.get(value, ()))


class Table:
    """One stored table: schema + rows + indexes.

    Every mutation (``insert``, ``create_index``) bumps a monotonic
    version counter so cached evaluation results derived from this
    table can be invalidated; the owning :class:`Database` is notified
    through ``_on_mutate``.
    """

    def __init__(self, schema: RelationSchema):
        self.schema = schema
        self._rows: dict[str, Tuple] = {}
        self._order: list[str] = []
        self._indexes: dict[str, _Index] = {}
        self._auto_id = itertools.count(1)
        self._version = 0
        self._on_mutate = None
        if schema.key is not None:
            self._build_index(schema.key)

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by insert/create_index)."""
        return self._version

    def _bump(self) -> None:
        self._version += 1
        if self._on_mutate is not None:
            self._on_mutate()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, **attrs: Value) -> Tuple:
        """Insert a row given unqualified attribute values.

        The tuple id is ``Table:<key-value>`` when the schema declares a
        key (enforcing uniqueness), otherwise ``Table:<n>`` with a
        monotone counter.
        """
        unknown = set(attrs) - set(self.schema.attributes)
        if unknown:
            raise SchemaError(
                f"table {self.schema.name!r} has no attributes "
                f"{sorted(unknown)}"
            )
        values = {
            qualify(self.schema.name, name): attrs.get(name)
            for name in self.schema.attributes
        }
        if self.schema.key is not None:
            key_value = attrs.get(self.schema.key)
            if key_value is None:
                raise IntegrityError(
                    f"key {self.schema.key!r} of table "
                    f"{self.schema.name!r} must not be NULL"
                )
            tid = f"{self.schema.name}:{key_value}"
            if tid in self._rows:
                raise IntegrityError(
                    f"duplicate key {key_value!r} in table "
                    f"{self.schema.name!r}"
                )
        else:
            tid = f"{self.schema.name}:{next(self._auto_id)}"
        row = Tuple(values, tid=tid)
        self._rows[tid] = row
        self._order.append(tid)
        for index in self._indexes.values():
            index.add(row[qualify(self.schema.name, index.attribute)], tid)
        self._bump()
        return row

    def create_index(self, attribute: str) -> None:
        """Create (or refresh) a hash index on *attribute*."""
        self._build_index(attribute)
        self._bump()

    def _build_index(self, attribute: str) -> None:
        """Build the index without bumping the version (lazy reads)."""
        if attribute not in self.schema.attributes:
            raise SchemaError(
                f"table {self.schema.name!r} has no attribute "
                f"{attribute!r} to index"
            )
        index = _Index(attribute)
        qualified = qualify(self.schema.name, attribute)
        for tid in self._order:
            index.add(self._rows[tid][qualified], tid)
        self._indexes[attribute] = index

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    @property
    def rows(self) -> tuple[Tuple, ...]:
        return tuple(self._rows[tid] for tid in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def by_tid(self, tid: str) -> Tuple:
        try:
            return self._rows[tid]
        except KeyError:
            raise UnknownRelationError(
                f"no row {tid!r} in table {self.schema.name!r}"
            ) from None

    def select_ids_eq(self, attribute: str, value: Value) -> list[str]:
        """Ids of rows with ``attribute = value`` (index-served)."""
        if attribute not in self._indexes:
            self._build_index(attribute)
        return list(self._indexes[attribute].lookup(value))

    def select_ids(
        self,
        equalities: Mapping[str, Value] | None = None,
        condition: Condition | None = None,
    ) -> list[str]:
        """Ids of rows satisfying all equalities and the condition.

        This is the engine-level counterpart of CompatibleFinder's
        ``SELECT A.aid FROM A WHERE A.name = 'Homer'`` (Example 3.1):
        equality constraints are served from hash indexes; the residual
        *condition* (over qualified attributes) is checked per row.
        """
        equalities = dict(equalities or {})
        candidates: Iterable[str]
        if equalities:
            # Start from the most selective indexed equality.
            attribute, value = min(
                equalities.items(),
                key=lambda item: len(self.select_ids_eq(*item)),
            )
            candidates = self.select_ids_eq(attribute, value)
            rest = {a: v for a, v in equalities.items() if a != attribute}
        else:
            candidates = list(self._order)
            rest = {}
        out: list[str] = []
        for tid in candidates:
            row = self._rows[tid]
            ok = all(
                compare_values(
                    row[qualify(self.schema.name, attr)], "=", value
                )
                for attr, value in rest.items()
            )
            if ok and (condition is None or condition.evaluate(row)):
                out.append(tid)
        return out

    def scan(self, condition: Condition | None = None) -> list[Tuple]:
        """Full scan returning rows satisfying *condition*."""
        if condition is None:
            return list(self.rows)
        return [row for row in self.rows if condition.evaluate(row)]


#: process-wide serial numbers for databases; unlike ``id()`` these are
#: never reused after garbage collection, so they are safe cache keys
_DB_SERIALS = itertools.count(1)


class Database:
    """A named collection of tables with derived instance views."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: dict[str, Table] = {}
        self._serial = next(_DB_SERIALS)
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter over all DDL/DML mutations."""
        return self._version

    @property
    def data_key(self) -> tuple:
        """Identity + version key for evaluation caching.

        Built from a never-reused serial number and the mutation
        counter: equal keys guarantee identical stored contents (for
        the life of the process), and any ``insert`` / ``create_table``
        / ``create_index`` produces a fresh key.
        """
        return ("db", self._serial, self._version)

    def _bump(self) -> None:
        self._version += 1

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        attributes: Sequence[str],
        key: str | None = None,
    ) -> Table:
        """Create a table; returns it for chained inserts."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(RelationSchema(name, tuple(attributes), key))
        table._on_mutate = self._bump
        self._tables[name] = table
        self._bump()
        return table

    def insert(self, table_name: str, **attrs: Value) -> Tuple:
        """Insert a row into *table_name*."""
        return self.table(table_name).insert(**attrs)

    def insert_rows(
        self, table_name: str, rows: Iterable[Mapping[str, Value]]
    ) -> list[Tuple]:
        """Bulk insert; returns the inserted tuples."""
        table = self.table(table_name)
        return [table.insert(**dict(row)) for row in rows]

    # ------------------------------------------------------------------
    # Catalog access
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownRelationError(
                f"no table {name!r} in database {self.name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    @property
    def schema(self) -> DatabaseSchema:
        """The database schema over all tables."""
        return DatabaseSchema(
            tuple(t.schema for t in self._tables.values())
        )

    def size(self) -> int:
        """Total number of stored rows."""
        return sum(len(t) for t in self._tables.values())

    # ------------------------------------------------------------------
    # Instance views
    # ------------------------------------------------------------------
    def instance(self) -> DatabaseInstance:
        """The full database as a :class:`DatabaseInstance`.

        The snapshot inherits this database's :attr:`data_key`, so two
        snapshots taken at the same version share cached evaluations.
        """
        result = DatabaseInstance(self.schema)
        for name, table in self._tables.items():
            for row in table.rows:
                result.add(name, row)
        result.adopt_key(self.data_key)
        return result

    def input_instance(
        self, aliases: Mapping[str, str]
    ) -> DatabaseInstance:
        """The query input instance ``I_Q`` for ``eta_Q`` (Def. 2.3)."""
        return query_input_instance(self.instance(), aliases)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{len(table)}" for name, table in self._tables.items()
        )
        return f"Database({self.name!r}; {parts})"
