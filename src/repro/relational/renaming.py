"""Renamings (Def. 2.1 of the paper).

A renaming ``nu`` w.r.t. two disjoint types ``T1`` and ``T2`` is a set
of triples ``(A1, A2, Anew)`` with ``A1 in T1``, ``A2 in T2`` and
``Anew`` a fresh *unqualified* attribute.  Joins use renamings to
express equi-join conditions (the joined tuples must agree on each
``(A1, A2)`` pair; the result exposes the shared value under ``Anew``);
unions use them to align the target types of their two branches.

Inverting renamings is the heart of predicate *unrenaming* (Def. 2.7):
an attribute ``Anew`` of a why-not predicate is traced back to ``A1``
on the left branch and ``A2`` on the right branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import RenamingError


@dataclass(frozen=True)
class RenameTriple:
    """One triple ``(A1, A2, Anew)`` of a renaming."""

    left: str
    right: str
    new: str

    def __post_init__(self) -> None:
        if "." in self.new:
            raise RenamingError(
                f"renamed attribute {self.new!r} must be unqualified"
            )
        if self.left == self.right:
            raise RenamingError(
                f"renaming triple maps the same attribute {self.left!r} twice"
            )

    def __repr__(self) -> str:
        return f"({self.left},{self.right})->{self.new}"


@dataclass(frozen=True)
class Renaming:
    """A renaming ``nu``: a set of :class:`RenameTriple`.

    The empty renaming is valid and denotes a cross product (for joins)
    or a type-identical union.
    """

    triples: tuple[RenameTriple, ...] = ()

    @classmethod
    def of(cls, *pairs: tuple[str, str, str]) -> "Renaming":
        """Build a renaming from ``(left, right, new)`` 3-tuples."""
        return cls(tuple(RenameTriple(*pair) for pair in pairs))

    def __post_init__(self) -> None:
        new_names = [t.new for t in self.triples]
        if len(set(new_names)) != len(new_names):
            raise RenamingError(
                f"renaming introduces duplicate attributes: {new_names}"
            )
        lefts = [t.left for t in self.triples]
        rights = [t.right for t in self.triples]
        if len(set(lefts)) != len(lefts) or len(set(rights)) != len(rights):
            raise RenamingError(
                "renaming maps some source attribute more than once"
            )

    def __iter__(self) -> Iterator[RenameTriple]:
        return iter(self.triples)

    def __len__(self) -> int:
        return len(self.triples)

    @property
    def codomain(self) -> frozenset[str]:
        """``cod(nu)``: the set of introduced attribute names."""
        return frozenset(t.new for t in self.triples)

    def validate_against(
        self, left_type: Iterable[str], right_type: Iterable[str]
    ) -> None:
        """Check the renaming is well-formed w.r.t. the two types.

        Enforces Def. 2.1: ``A1 in T1``, ``A2 in T2`` and
        ``Anew not in T1 union T2``.
        """
        left_type = frozenset(left_type)
        right_type = frozenset(right_type)
        for triple in self.triples:
            if triple.left not in left_type:
                raise RenamingError(
                    f"{triple.left!r} is not in the left type "
                    f"{sorted(left_type)}"
                )
            if triple.right not in right_type:
                raise RenamingError(
                    f"{triple.right!r} is not in the right type "
                    f"{sorted(right_type)}"
                )
            if triple.new in left_type or triple.new in right_type:
                raise RenamingError(
                    f"renamed attribute {triple.new!r} already occurs in "
                    "the input types"
                )

    # ------------------------------------------------------------------
    # Forward application: nu(T) of Def. 2.1
    # ------------------------------------------------------------------
    def apply_to_attribute(self, attribute: str) -> str:
        """Map one attribute through ``nu`` (identity if unmapped)."""
        for triple in self.triples:
            if attribute in (triple.left, triple.right):
                return triple.new
        return attribute

    def apply_to_type(self, attributes: Iterable[str]) -> frozenset[str]:
        """Map a type through ``nu``: ``nu(T)`` of Def. 2.1."""
        return frozenset(self.apply_to_attribute(a) for a in attributes)

    def left_mapping(self, left_type: Iterable[str]) -> dict[str, str]:
        """Attribute rewrite map for tuples of the left input."""
        left_type = frozenset(left_type)
        return {
            t.left: t.new for t in self.triples if t.left in left_type
        }

    def right_mapping(self, right_type: Iterable[str]) -> dict[str, str]:
        """Attribute rewrite map for tuples of the right input."""
        right_type = frozenset(right_type)
        return {
            t.right: t.new for t in self.triples if t.right in right_type
        }

    # ------------------------------------------------------------------
    # Inversion: nu|1^-1 and nu|2^-1 of Def. 2.7
    # ------------------------------------------------------------------
    def invert_left(self, attribute: str) -> str:
        """Replace ``Anew`` by its left origin ``A1`` (identity else)."""
        for triple in self.triples:
            if triple.new == attribute:
                return triple.left
        return attribute

    def invert_right(self, attribute: str) -> str:
        """Replace ``Anew`` by its right origin ``A2`` (identity else)."""
        for triple in self.triples:
            if triple.new == attribute:
                return triple.right
        return attribute

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.triples)
        return f"Renaming[{inner}]"


def natural_renaming(
    pairs: Iterable[tuple[str, str]], new_names: Iterable[str] | None = None
) -> Renaming:
    """Build a renaming from ``(left, right)`` attribute pairs.

    When *new_names* is omitted, the unqualified name of the left
    attribute is used as the introduced attribute -- mirroring how the
    paper writes ``join_{aid}`` for the renaming
    ``(A.aid, AB.aid, aid)``.
    """
    from .tuples import unqualified_name

    pairs = list(pairs)
    if new_names is None:
        names = [unqualified_name(left) for left, _ in pairs]
    else:
        names = list(new_names)
    if len(names) != len(pairs):
        raise RenamingError("one new name is required per attribute pair")
    return Renaming.of(
        *(
            (left, right, name)
            for (left, right), name in zip(pairs, names)
        )
    )
