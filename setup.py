"""Setup shim for environments without the `wheel` package.

All metadata lives in pyproject.toml; this file only enables pip's
legacy editable-install path (`setup.py develop`).
"""

from setuptools import setup

setup()
