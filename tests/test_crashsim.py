"""Crash-state enumeration: recovery proven over every legal state.

The acceptance harness at the bottom is the point of the whole
subsystem: record the complete I/O operation log of a journaled
``workers=4`` batch (run against the :class:`~repro.storage.crashsim.
SimIO` simulator, with seeded engine faults and occasional lying
fsyncs), then for **every crash prefix** of that log and **every legal
post-crash filesystem state** (fsync reordering, torn appends, lost
directory entries):

1. no committed record is lost -- every journal byte covered by an
   executed fsync parses back out of the surviving journal;
2. no uncommitted record is resurrected -- recovery never reports a
   question the crashed run had not durably appended;
3. resuming the batch from the surviving journal produces outcomes
   byte-identical to the uninterrupted run (under the manual clock).

Engine-level resume differentials are deduplicated by the set of
records each crash state recovers -- two states that recover the same
records resume identically -- which keeps the harness exhaustive over
states while bounding engine executions.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import NedExplain, canonicalize
from repro.obs.clock import ManualClock, use_clock
from repro.relational import EvaluationCache
from repro.robustness import (
    BatchJournal,
    FaultPlan,
    FaultSpec,
    inject,
)
from repro.robustness.faults import FAULT_SITES
from repro.storage import (
    CrashSim,
    Op,
    OpLog,
    SimIO,
    atomic_write_json,
    enumerate_crash_states,
    journal_commit_horizon,
    materialize,
)
from repro.storage.crashsim import MAX_STATES_PER_PREFIX
from repro.workloads.generator import chain_database, chain_query

QUESTIONS = [
    "(R0.label: needle)",
    "(R0.label: r0v1)",
    "(R2.label: r2v3)",
]

_DB = chain_database(3, rows_per_relation=12)
_CANONICAL = canonicalize(chain_query(3), _DB.schema)

ROOT = Path("/sim")
JOURNAL = ROOT / "batch.journal.jsonl"


def _engine() -> NedExplain:
    return NedExplain(_CANONICAL, database=_DB, cache=EvaluationCache())


def _plan(seed: int) -> FaultPlan:
    """The seeded fault schedule of one harness run.

    Engine faults are question-scoped so they fire identically under
    any worker interleaving; odd seeds add a lying fsync -- the fault
    only this harness can observe.
    """
    plan = FaultPlan.random(
        seed,
        sites=FAULT_SITES,
        faults=2,
        scope="question",
    )
    specs = list(plan.specs)
    if seed % 2:
        specs.append(
            FaultSpec("io.fsync_lost", at_call=seed % 4, kind="error")
        )
    return FaultPlan(specs, seed=seed, scope="question")


def _normalized(outcomes) -> list[dict]:
    return [
        json.loads(json.dumps(o.to_dict(), default=str))
        for o in outcomes
    ]


def _scrub_spent(document):
    """Drop ``spent`` resource accounting, recursively.

    Row/comparison counters depend on shared-cache warmth, which
    depends on which questions were replayed instead of executed; they
    are the one field a re-executed outcome may legitimately differ
    in.  Replayed outcomes are never scrubbed -- they must be
    byte-identical.
    """
    if isinstance(document, dict):
        return {
            key: _scrub_spent(value)
            for key, value in document.items()
            if key != "spent"
        }
    if isinstance(document, list):
        return [_scrub_spent(value) for value in document]
    return document


def _run_recorded_batch(seed: int):
    """One journaled workers=4 batch on the simulator.

    Returns ``(sim, clean_outcomes)``: the op log of the complete run
    plus its outcomes (the ground truth every resume must converge to).
    """
    sim = SimIO()
    sim.mkdir(ROOT)
    journal = BatchJournal(JOURNAL, io=sim)
    with use_clock(ManualClock()):
        with inject(_plan(seed)):
            outcomes = _engine().explain_each(
                QUESTIONS, journal=journal, workers=4
            )
    journal.close()
    return sim, _normalized(outcomes)


def _parse_records(text: str) -> dict[int, str]:
    """index -> question for every whole, valid line of journal text."""
    records: dict[int, str] = {}
    for line in text.splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break  # torn tail / first corruption: stop, like the WAL
        records[int(record["index"])] = record["question"]
    return records


def _recovered_indexes(files: dict[str, str]) -> frozenset[int]:
    """Which questions a resume from this crash state replays."""
    io = materialize(files, root=ROOT)
    journal = BatchJournal(JOURNAL, resume=True, io=io)
    recovered = frozenset(
        i
        for i, question in enumerate(QUESTIONS)
        if journal.completed(i, question) is not None
    )
    journal.close()
    return recovered


def _crash_harness(seed: int) -> None:
    sim, clean = _run_recorded_batch(seed)
    log = sim.log
    journal_text = sim.read_text(JOURNAL)
    csim = CrashSim(log)

    resume_cases: dict[frozenset[int], dict[str, str]] = {}
    appended = 0
    for prefix in range(len(log) + 1):
        if prefix:
            op = log[prefix - 1]
            if op.kind == "append" and op.path == str(JOURNAL):
                appended += len(op.data)
        horizon = journal_commit_horizon(log, str(JOURNAL), prefix)
        committed = set(_parse_records(journal_text[:horizon]))
        # records with *any* bytes appended by this prefix (committed
        # or not); nothing beyond them may ever be recovered
        appendable = set(_parse_records(journal_text[:appended]))
        for files in csim.states_at(prefix):
            recovered = _recovered_indexes(files)
            # invariant 1: no committed batch outcome is lost
            assert committed <= recovered, (
                f"seed {seed} prefix {prefix}: committed {committed} "
                f"but only {set(recovered)} recovered from {files}"
            )
            # invariant 2: no uncommitted record is resurrected from
            # bytes the crashed run never appended
            assert recovered <= appendable, (
                f"seed {seed} prefix {prefix}: recovered "
                f"{set(recovered)} exceeds appended {appendable}"
            )
            resume_cases.setdefault(recovered, files)

    # invariant 3: resuming from every distinct recovery point yields
    # outcomes byte-identical to the uninterrupted run
    for recovered, files in sorted(
        resume_cases.items(), key=lambda item: sorted(item[0])
    ):
        io = materialize(files, root=ROOT)
        journal = BatchJournal(JOURNAL, resume=True, io=io)
        with use_clock(ManualClock()):
            with inject(_plan(seed)):
                outcomes = _engine().explain_each(
                    QUESTIONS, journal=journal, workers=4
                )
        journal.close()
        resumed = _normalized(outcomes)
        for index in range(len(QUESTIONS)):
            if index in recovered:
                # replayed verbatim from the journal: byte-identical
                assert outcomes[index].replayed
                assert resumed[index] == clean[index], (
                    f"seed {seed}: replayed outcome {index} diverged "
                    f"resuming from {sorted(recovered)}"
                )
            else:
                # re-executed: identical up to resource accounting
                assert _scrub_spent(resumed[index]) == _scrub_spent(
                    clean[index]
                ), (
                    f"seed {seed}: re-executed outcome {index} "
                    f"diverged resuming from {sorted(recovered)}"
                )


# ---------------------------------------------------------------------------
# SimIO op-log recording
# ---------------------------------------------------------------------------
class TestSimIO:
    def test_records_the_write_protocol(self):
        sim = SimIO()
        sim.mkdir(Path("/d"))
        atomic_write_json(Path("/d/doc.json"), {"v": 1}, io=sim)
        kinds = [op.kind for op in sim.log]
        assert kinds == [
            "truncate", "append", "fsync", "rename", "fsync_dir",
        ]

    def test_fsync_lost_records_no_fsync(self):
        sim = SimIO()
        sim.mkdir(Path("/d"))
        with inject(FaultPlan([FaultSpec("io.fsync_lost", 0)])):
            sim.write_text(Path("/d/f"), "data")
        assert "fsync" not in [op.kind for op in sim.log]
        # the cache still sees the bytes -- only a crash reveals the lie
        assert sim.read_text(Path("/d/f")) == "data"

    def test_append_deltas_not_whole_files(self):
        sim = SimIO()
        sim.mkdir(Path("/d"))
        handle = sim.open(Path("/d/log"), "w")
        sim.write(handle, "one\n")
        sim.fsync(handle)
        sim.write(handle, "two\n")
        sim.fsync(handle)
        sim.close(handle)
        appends = [op.data for op in sim.log if op.kind == "append"]
        assert appends == ["one\n", "two\n"]


# ---------------------------------------------------------------------------
# Crash-state enumeration semantics
# ---------------------------------------------------------------------------
class TestCrashStates:
    def test_atomic_write_protocol_is_all_or_nothing(self):
        sim = SimIO()
        sim.mkdir(Path("/d"))
        atomic_write_json(Path("/d/doc.json"), {"v": 1}, io=sim)
        # after the full protocol the ONLY legal state is the complete
        # document; mid-protocol states may miss it but never tear it
        for prefix, files in enumerate_crash_states(sim.log):
            content = files.get("/d/doc.json")
            if content is not None:
                assert json.loads(content) == {"v": 1}
            if prefix == len(sim.log):
                assert content is not None

    def test_rename_without_dir_fsync_can_be_lost(self):
        sim = SimIO()
        sim.mkdir(Path("/d"))
        # write + rename but NO fsync_dir: the rename must be losable
        handle = sim.open(Path("/d/t.tmp"), "w")
        sim.write(handle, "data")
        sim.fsync(handle)
        sim.close(handle)
        sim.replace(Path("/d/t.tmp"), Path("/d/final"))
        finals = [
            files
            for prefix, files in enumerate_crash_states(sim.log)
            if prefix == len(sim.log)
        ]
        assert any("/d/final" not in files for files in finals)
        assert any(
            files.get("/d/final") == "data" for files in finals
        )

    def test_torn_tail_states_exist(self):
        sim = SimIO()
        sim.mkdir(Path("/d"))
        handle = sim.open(Path("/d/log"), "w")
        sim.write(handle, "x" * 100)
        sim.flush(handle)  # flushed but never fsynced: torn is legal
        sim.close(handle)
        contents = {
            files.get("/d/log")
            for prefix, files in enumerate_crash_states(sim.log)
            if prefix == len(sim.log)
        }
        assert "x" * 50 in contents  # the torn half-cut
        assert "x" * 100 in contents

    def test_fsync_reordering_between_files(self):
        sim = SimIO()
        sim.mkdir(Path("/d"))
        sim.write_text(Path("/d/a"), "A", durable=False)
        sim.write_text(Path("/d/b"), "B", durable=False)
        # neither file was fsynced: every subset of {a, b} is legal
        finals = [
            frozenset(files)
            for prefix, files in enumerate_crash_states(sim.log)
            if prefix == len(sim.log)
        ]
        assert frozenset() in finals
        assert frozenset({"/d/a", "/d/b"}) in finals
        assert frozenset({"/d/b"}) in finals  # b without a: reordered

    def test_flushed_but_unfsynced_append_is_losable(self):
        # flush() publishes bytes to the cache (other readers see
        # them) but promises nothing about durability: some legal
        # crash state must lose the whole append
        sim = SimIO()
        sim.mkdir(Path("/d"))
        handle = sim.open(Path("/d/log"), "w")
        sim.write(handle, "committed\n")
        sim.fsync(handle)
        sim.write(handle, "flushed-only\n")
        sim.flush(handle)
        sim.close(handle)
        # the live process observes both lines...
        assert sim.read_text(Path("/d/log")) == (
            "committed\nflushed-only\n"
        )
        finals = [
            files.get("/d/log")
            for prefix, files in enumerate_crash_states(sim.log)
            if prefix == len(sim.log)
        ]
        # ...but a crash may keep only the fsynced prefix
        assert "committed\n" in finals
        assert "committed\nflushed-only\n" in finals
        assert all(
            content is not None and content.startswith("committed\n")
            for content in finals
        )

    def test_fsynced_append_survives_every_crash_state(self):
        sim = SimIO()
        sim.mkdir(Path("/d"))
        handle = sim.open(Path("/d/log"), "w")
        sim.write(handle, "first\n")
        sim.fsync(handle)
        sim.write(handle, "second\n")
        sim.fsync(handle)
        sim.close(handle)
        for prefix, files in enumerate_crash_states(sim.log):
            if prefix == len(sim.log):
                # after the final fsync there is exactly one legal
                # content: everything acknowledged as durable
                assert files.get("/d/log") == "first\nsecond\n"

    def test_state_explosion_is_capped(self):
        log = OpLog()
        for i in range(12):
            log.record(Op("truncate", f"/d/f{i}"))
            log.record(Op("append", f"/d/f{i}", data=f"x{i}"))
        states = list(CrashSim(log).states_at(len(log)))
        assert 0 < len(states) <= MAX_STATES_PER_PREFIX

    def test_commit_horizon(self):
        log = OpLog()
        log.record(Op("truncate", "/j"))
        log.record(Op("append", "/j", data="aaaa"))
        log.record(Op("fsync", "/j"))
        log.record(Op("append", "/j", data="bbbb"))
        assert journal_commit_horizon(log, "/j", 0) == 0
        assert journal_commit_horizon(log, "/j", 2) == 0
        assert journal_commit_horizon(log, "/j", 3) == 4
        assert journal_commit_horizon(log, "/j", 4) == 4


# ---------------------------------------------------------------------------
# The acceptance harness
# ---------------------------------------------------------------------------
class TestCrashRecoveryHarness:
    @pytest.mark.parametrize("seed", range(3))
    def test_journaled_batch_survives_every_crash_state(self, seed):
        _crash_harness(seed)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(25))
    def test_acceptance_twenty_five_seeds(self, seed):
        """The PR acceptance bar: every crash prefix of a workers=4
        journaled batch, across 25 fault seeds."""
        _crash_harness(seed)
