"""Tests for the two extension modules: set difference (the paper's
future work, Sec. 5) and modification-based repairs (Sec. 5 outlook)."""

import pytest

from repro.errors import QueryError, UnsupportedQueryError
from repro.baseline import WhyNotBaseline
from repro.core import (
    CTuple,
    NedExplain,
    canonical_from_tree,
    nedexplain,
    unrename_ctuple,
)
from repro.core.repairs import (
    apply_repair,
    relax_condition,
    suggest_repairs,
    verify_repair,
)
from repro.relational import (
    Database,
    Difference,
    Project,
    RelationLeaf,
    Renaming,
    Select,
    TrueCondition,
    attr_cmp,
    base_tuple,
    evaluate_query,
)


# ---------------------------------------------------------------------------
# Difference: substrate behaviour
# ---------------------------------------------------------------------------
@pytest.fixture()
def diff_db():
    db = Database("diff")
    db.create_table("New", ["id", "name"], key="id")
    db.create_table("Old", ["id", "name"], key="id")
    db.insert("New", id=1, name="ada")
    db.insert("New", id=2, name="grace")
    db.insert("New", id=3, name="alan")
    db.insert("Old", id=7, name="grace")
    return db


def _difference_query(db):
    new = Project(RelationLeaf(db.table("New").schema), ["New.name"])
    old = Project(RelationLeaf(db.table("Old").schema), ["Old.name"])
    return Difference(
        new, old, Renaming.of(("New.name", "Old.name", "name"))
    )


class TestDifferenceOperator:
    def test_evaluation(self, diff_db):
        root = _difference_query(diff_db)
        result = evaluate_query(root, diff_db.instance())
        names = {row["name"] for row in result.result_values()}
        assert names == {"ada", "alan"}

    def test_lineage_comes_from_left(self, diff_db):
        root = _difference_query(diff_db)
        result = evaluate_query(root, diff_db.instance())
        for t in result.result:
            assert all(tid.startswith("New:") for tid in t.lineage)

    def test_target_type(self, diff_db):
        root = _difference_query(diff_db)
        assert root.target_type == frozenset({"name"})

    def test_incompatible_types_rejected(self, diff_db):
        new = RelationLeaf(diff_db.table("New").schema)
        old = Project(
            RelationLeaf(diff_db.table("Old").schema), ["Old.name"]
        )
        with pytest.raises(QueryError):
            Difference(new, old, Renaming.of(("New.name", "Old.name",
                                              "name")))


class TestDifferenceNedExplain:
    def test_unrename_goes_left_only(self, diff_db):
        root = _difference_query(diff_db)
        (tc,) = unrename_ctuple(root, CTuple({"name": "grace"}))
        assert tc.type == frozenset({"New.name"})

    def test_difference_node_blamed(self, diff_db):
        """Why is grace missing?  She is in New but removed by Old."""
        canonical = canonical_from_tree(_difference_query(diff_db))
        report = nedexplain(
            canonical, "(name: grace)", database=diff_db
        )
        (entry,) = report.detailed
        assert entry.tid == "New:2"
        assert entry.subquery.op == "difference"

    def test_surviving_tuple_not_blamed(self, diff_db):
        canonical = canonical_from_tree(_difference_query(diff_db))
        report = nedexplain(canonical, "(name: ada)", database=diff_db)
        (answer,) = report.answers
        assert answer.answer_not_missing

    def test_baseline_rejects_difference(self, diff_db):
        canonical = canonical_from_tree(_difference_query(diff_db))
        with pytest.raises(UnsupportedQueryError):
            WhyNotBaseline(canonical, database=diff_db)


# ---------------------------------------------------------------------------
# Repairs: condition relaxation
# ---------------------------------------------------------------------------
def _blocked(**values):
    return [base_tuple("A", "A:1", **values)]


class TestRelaxCondition:
    def test_strict_to_non_strict(self):
        """The introductory fix: dob > -800 becomes dob >= -800."""
        relaxed = relax_condition(
            attr_cmp("A.dob", ">", -800), _blocked(dob=-800)
        )
        assert relaxed == attr_cmp("A.dob", ">=", -800)

    def test_lower_bound_widened(self):
        relaxed = relax_condition(
            attr_cmp("A.v", ">", 10), _blocked(v=7)
        )
        assert relaxed == attr_cmp("A.v", ">=", 7)

    def test_upper_bound_widened(self):
        relaxed = relax_condition(
            attr_cmp("A.v", "<", 5), _blocked(v=9)
        )
        assert relaxed == attr_cmp("A.v", "<=", 9)

    def test_equality_becomes_disjunction(self):
        relaxed = relax_condition(
            attr_cmp("A.v", "=", 1), _blocked(v=3)
        )
        assert relaxed is not None
        t = base_tuple("A", "A:9", v=3)
        assert relaxed.evaluate(t)
        assert relaxed.evaluate(base_tuple("A", "A:8", v=1))

    def test_inequality_dropped(self):
        relaxed = relax_condition(
            attr_cmp("A.v", "!=", 3), _blocked(v=3)
        )
        assert isinstance(relaxed, TrueCondition)

    def test_satisfied_conjuncts_untouched(self):
        condition = attr_cmp("A.v", ">", 0) & attr_cmp("A.w", ">", 10)
        relaxed = relax_condition(condition, _blocked(v=5, w=8))
        assert relaxed is not None
        parts = relaxed.conjuncts()
        assert attr_cmp("A.v", ">", 0) in parts
        assert attr_cmp("A.w", ">=", 8) in parts

    def test_attr_attr_comparison_not_relaxable(self):
        from repro.relational import attr_attr_cmp

        assert relax_condition(
            attr_attr_cmp("A.v", "=", "A.w"), _blocked(v=1, w=2)
        ) is None

    def test_null_values_not_relaxable(self):
        assert relax_condition(
            attr_cmp("A.v", ">", 1), _blocked(v=None)
        ) is None


# ---------------------------------------------------------------------------
# Repairs: end to end on the running example
# ---------------------------------------------------------------------------
class TestRepairsEndToEnd:
    def test_running_example_repair(self, running_example):
        """NedExplain blames sigma_{A.dob > -800}; the repair module
        proposes >= -800, and verification confirms (Odyssey, ...)
        reaches the result -- the modification of Sec. 1."""
        db, canonical = running_example
        engine = NedExplain(canonical, database=db)
        report = engine.explain(
            "((A.name: Homer, ap: $x1), $x1 > 25)"
        )
        (suggestion,) = suggest_repairs(engine, report)
        assert suggestion.subquery.op == "sigma"
        assert suggestion.suggested == attr_cmp("A.dob", ">=", -800)

        verified = verify_repair(engine, suggestion)
        assert verified.verified is True
        assert "verified" in repr(verified)

    def test_patched_query_contains_homer(self, running_example):
        db, canonical = running_example
        engine = NedExplain(canonical, database=db)
        report = engine.explain(
            "((A.name: Homer, ap: $x1), $x1 > 25)"
        )
        (suggestion,) = suggest_repairs(engine, report)
        patched = apply_repair(canonical, suggestion)
        result = evaluate_query(
            patched.root, db.instance(), patched.aliases
        )
        names = {row["A.name"] for row in result.result_values()}
        assert "Homer" in names

    def test_no_suggestions_for_join_blame(self, running_example):
        db, canonical = running_example
        engine = NedExplain(canonical, database=db)
        report = engine.explain(
            "((A.name: $x), $x != Homer and $x != Sophocles)"
        )
        assert suggest_repairs(engine, report) == []

    def test_crime9_aggregation_repair(self):
        """The (null, sigma) answer of Crime9 also yields a repair:
        relaxing sector > 80 brings the count back above 8."""
        from repro.workloads import use_case_setup

        use_case, db, canonical = use_case_setup("Crime9")
        engine = NedExplain(canonical, database=db)
        report = engine.explain(use_case.predicate)
        suggestions = suggest_repairs(engine, report)
        assert suggestions
        (suggestion,) = suggestions
        assert suggestion.subquery.op == "sigma"

    def test_requires_engine_state(self, running_example):
        db, canonical = running_example
        engine = NedExplain(canonical, database=db)
        from repro.core.answers import NedExplainReport
        from repro.errors import WhyNotQuestionError

        with pytest.raises(WhyNotQuestionError):
            suggest_repairs(engine, NedExplainReport())
