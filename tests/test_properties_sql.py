"""Property-based tests for the SQL frontend and formatter.

The central property: ``translate(parse(format(spec))) == spec`` for
randomly generated specs (structural equality of aliases, joins,
selections, projections, and aggregation blocks).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import JoinPair, SPJASpec, UnionSpec
from repro.relational import (
    AggregateCall,
    Comparison,
    Attr,
    Const,
    Database,
    DatabaseSchema,
    RelationSchema,
    Renaming,
)
from repro.relational.sql import parse_sql
from repro.relational.sql.formatter import format_spec
from repro.relational.sql.translate import translate

#: a fixed two-table schema for random queries
_SCHEMA = DatabaseSchema.of(
    RelationSchema("R", ("id", "a", "b"), key="id"),
    RelationSchema("S", ("id", "b", "c"), key="id"),
)

_OPS = st.sampled_from(["=", "!=", "<", ">", "<=", ">="])
_VALUES = st.one_of(
    st.integers(min_value=-99, max_value=99),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Ll", "Lu", "Nd"),
            whitelist_characters=" _'",
        ),
        min_size=0,
        max_size=8,
    ),
)


@st.composite
def selection(draw, table: str, columns: tuple[str, ...]):
    column = draw(st.sampled_from(columns))
    return Comparison(
        Attr(f"{table}.{column}"), draw(_OPS), Const(draw(_VALUES))
    )


@st.composite
def spja_spec(draw) -> SPJASpec:
    two_tables = draw(st.booleans())
    aliases = {"R": "R"}
    joins: list[JoinPair] = []
    if two_tables:
        aliases["S"] = "S"
        joins.append(JoinPair("R.b", "S.b"))
    selections = draw(
        st.lists(selection("R", ("a", "b")), max_size=2)
    )
    if two_tables and draw(st.booleans()):
        selections.append(draw(selection("S", ("c",))))

    aggregated = draw(st.booleans())
    if aggregated:
        function = draw(
            st.sampled_from(["sum", "count", "avg", "min", "max"])
        )
        return SPJASpec(
            aliases=aliases,
            joins=joins,
            selections=selections,
            group_by=("R.a",),
            aggregates=(AggregateCall(function, "R.b", "agg_out"),),
        )
    projection = ("R.a",) if not two_tables else ("R.a", "S.c")
    return SPJASpec(
        aliases=aliases,
        joins=joins,
        selections=selections,
        projection=projection,
    )


def _assert_round_trip(spec: SPJASpec) -> None:
    text = format_spec(spec)
    back = translate(parse_sql(text), _SCHEMA)
    assert isinstance(back, SPJASpec)
    assert back.aliases == spec.aliases
    assert [(p.left, p.right) for p in back.joins] == [
        (p.left, p.right) for p in spec.joins
    ]
    assert list(back.selections) == list(spec.selections)
    assert back.projection == spec.projection
    assert back.group_by == spec.group_by
    assert back.aggregates == spec.aggregates


@settings(max_examples=120, deadline=None)
@given(spja_spec())
def test_spja_round_trip(spec):
    _assert_round_trip(spec)


@settings(max_examples=60, deadline=None)
@given(spja_spec())
def test_formatted_sql_reparses_and_canonicalizes(spec):
    from repro.core import canonicalize

    text = format_spec(spec)
    back = translate(parse_sql(text), _SCHEMA)
    canonical = canonicalize(back, _SCHEMA)
    assert canonical.root is not None


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_union_round_trip(data):
    left = SPJASpec(aliases={"R": "R"}, projection=("R.a",))
    right = SPJASpec(aliases={"S": "S"}, projection=("S.c",))
    spec = UnionSpec(left, right, Renaming.of(("R.a", "S.c", "a")))
    text = format_spec(spec)
    back = translate(parse_sql(text), _SCHEMA)
    assert isinstance(back, UnionSpec)
    assert back.renaming.codomain == spec.renaming.codomain


@settings(max_examples=40, deadline=None)
@given(spja_spec(), st.integers(min_value=0, max_value=4))
def test_formatted_queries_execute(spec, rows):
    """Formatted SQL must run end to end on a live database."""
    from repro.relational import evaluate_query
    from repro.relational.sql import sql_to_canonical

    db = Database()
    db.create_table("R", ["id", "a", "b"], key="id")
    db.create_table("S", ["id", "b", "c"], key="id")
    for i in range(rows):
        db.insert("R", id=i, a=i, b=i % 2)
        db.insert("S", id=i, b=i % 2, c=i)
    canonical = sql_to_canonical(format_spec(spec), db.schema)
    result = evaluate_query(canonical.root, db.instance())
    assert result.result is not None
