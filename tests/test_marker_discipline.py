"""The slow/bench marker split that keeps tier-1 fast.

Three layers are pinned here: the markers are registered and wired
into ``addopts``; the default collection and the marked collection
partition the suite (no marked test leaks into tier-1); and the
slowguard plugin actually fails an unmarked-but-slow test when
enforcement is on, so the split cannot rot silently.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def _run_pytest(args, cwd, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_ENFORCE_SLOW_MARKERS", None)
    env.pop("REPRO_SLOW_TEST_THRESHOLD_S", None)
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-m", "pytest", "-p", "no:cacheprovider", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )


class _CollectionRecorder:
    """Captures the selected item ids of a collect-only session."""

    def __init__(self):
        self.ids = []

    def pytest_collection_finish(self, session):
        self.ids = [item.nodeid for item in session.items]


def _collect_ids(extra_args):
    recorder = _CollectionRecorder()
    # in-process: the test modules are already imported, so a second
    # collection pass is cheap (a subprocess would re-import the world)
    code = pytest.main(
        [
            "--collect-only",
            "-q",
            "-p",
            "no:cacheprovider",
            *extra_args,
        ],
        plugins=[recorder],
    )
    assert code == 0, f"collection failed with exit code {code}"
    return set(recorder.ids)


def test_markers_registered(request):
    registered = "\n".join(request.config.getini("markers"))
    assert "slow:" in registered
    assert "bench:" in registered


def test_addopts_deselect_slow_and_bench():
    text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert "not slow and not bench" in text


def test_default_and_marked_collections_partition_the_suite():
    tests_dir = str(REPO_ROOT / "tests")
    bench_dir = str(REPO_ROOT / "benchmarks")
    tier1 = _collect_ids([tests_dir])
    excluded = _collect_ids(
        ["-m", "slow or bench", tests_dir, bench_dir]
    )
    everything = _collect_ids(["-m", "", tests_dir, bench_dir])
    assert tier1, "tier-1 collected nothing"
    # the slow full-sweep gate test and every benchmark module are
    # out of tier-1 but reachable through their markers
    assert any("test_gate.py" in nodeid for nodeid in excluded)
    assert any("benchmarks" in nodeid for nodeid in excluded)
    assert tier1.isdisjoint(excluded)
    # nothing falls through the split entirely
    assert tier1 | excluded == everything


def test_every_benchmark_module_is_bench_marked():
    modules = sorted((REPO_ROOT / "benchmarks").glob("bench_*.py"))
    assert modules
    for module in modules:
        assert (
            "pytestmark = pytest.mark.bench"
            in module.read_text(encoding="utf-8")
        ), f"{module.name} is not bench-marked"


# ---------------------------------------------------------------------------
# slowguard enforcement (proven in a scratch pytest run)
# ---------------------------------------------------------------------------
_SCRATCH_CONFTEST = (
    "from repro.pytest_slowguard import (\n"
    "    pytest_configure,\n"
    "    pytest_runtest_makereport,\n"
    "    pytest_terminal_summary,\n"
    ")\n"
)


def _scratch_run(tmp_path, test_source, extra_env):
    (tmp_path / "conftest.py").write_text(_SCRATCH_CONFTEST)
    (tmp_path / "test_scratch.py").write_text(
        textwrap.dedent(test_source)
    )
    return _run_pytest(["-q", "."], cwd=tmp_path, extra_env=extra_env)


def test_unmarked_slow_test_fails_under_enforcement(tmp_path):
    proc = _scratch_run(
        tmp_path,
        """
        import time

        def test_dawdles():
            time.sleep(0.3)
        """,
        {
            "REPRO_ENFORCE_SLOW_MARKERS": "1",
            "REPRO_SLOW_TEST_THRESHOLD_S": "0.1",
        },
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "without @pytest.mark.slow" in proc.stdout


def test_marked_slow_test_passes_under_enforcement(tmp_path):
    proc = _scratch_run(
        tmp_path,
        """
        import time

        import pytest

        @pytest.mark.slow
        def test_dawdles():
            time.sleep(0.3)
        """,
        {
            "REPRO_ENFORCE_SLOW_MARKERS": "1",
            "REPRO_SLOW_TEST_THRESHOLD_S": "0.1",
        },
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_unmarked_slow_test_only_warns_by_default(tmp_path):
    proc = _scratch_run(
        tmp_path,
        """
        import time

        def test_dawdles():
            time.sleep(0.3)
        """,
        {"REPRO_SLOW_TEST_THRESHOLD_S": "0.1"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "unmarked slow tests" in proc.stdout


def test_fast_tests_stay_silent(tmp_path):
    proc = _scratch_run(
        tmp_path,
        """
        def test_quick():
            assert True
        """,
        {
            "REPRO_ENFORCE_SLOW_MARKERS": "1",
            "REPRO_SLOW_TEST_THRESHOLD_S": "0.1",
        },
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "unmarked slow tests" not in proc.stdout
