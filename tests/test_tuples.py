"""Unit tests for the tuple data model (Sec. 2.1)."""

import pytest

from repro.errors import SchemaError
from repro.relational import (
    Tuple,
    alias_of,
    base_tuple,
    is_qualified,
    qualify,
    split_qualified,
    unqualified_name,
)


# ---------------------------------------------------------------------------
# Attribute name helpers
# ---------------------------------------------------------------------------
class TestAttributeNames:
    def test_qualify(self):
        assert qualify("A", "name") == "A.name"

    def test_is_qualified(self):
        assert is_qualified("A.name")
        assert not is_qualified("name")

    def test_split_qualified(self):
        assert split_qualified("A.name") == ("A", "name")

    def test_split_unqualified_raises(self):
        with pytest.raises(SchemaError):
            split_qualified("name")

    def test_split_empty_parts_raise(self):
        with pytest.raises(SchemaError):
            split_qualified(".name")
        with pytest.raises(SchemaError):
            split_qualified("A.")

    def test_alias_of(self):
        assert alias_of("A.name") == "A"
        assert alias_of("ap") is None

    def test_unqualified_name(self):
        assert unqualified_name("A.name") == "name"
        assert unqualified_name("ap") == "ap"


# ---------------------------------------------------------------------------
# Tuple construction and access
# ---------------------------------------------------------------------------
class TestTupleBasics:
    def test_base_tuple_constructor(self):
        t = base_tuple("A", "t4", name="Homer", dob=-800)
        assert t["A.name"] == "Homer"
        assert t.tid == "t4"
        assert t.lineage == frozenset({"t4"})

    def test_empty_tuple_rejected(self):
        with pytest.raises(SchemaError):
            Tuple({})

    def test_type(self):
        t = base_tuple("A", "t1", name="x", dob=1)
        assert t.type == frozenset({"A.name", "A.dob"})

    def test_getitem_missing_raises(self):
        t = base_tuple("A", "t1", name="x")
        with pytest.raises(SchemaError):
            t["A.dob"]

    def test_get_default(self):
        t = base_tuple("A", "t1", name="x")
        assert t.get("A.dob", 7) == 7

    def test_contains_and_iter(self):
        t = base_tuple("A", "t1", name="x", dob=1)
        assert "A.name" in t
        assert sorted(t) == ["A.dob", "A.name"]
        assert len(t) == 2

    def test_is_base(self):
        t = base_tuple("A", "t1", name="x")
        assert t.is_base()
        assert not t.project(["A.name"]).is_base()

    def test_values_copy_is_detached(self):
        t = base_tuple("A", "t1", name="x")
        view = t.values
        view["A.name"] = "hacked"
        assert t["A.name"] == "x"


# ---------------------------------------------------------------------------
# Equality, hashing, lineage
# ---------------------------------------------------------------------------
class TestTupleIdentity:
    def test_equal_values_and_lineage(self):
        t1 = Tuple({"A.x": 1}, lineage={"a"})
        t2 = Tuple({"A.x": 1}, lineage={"a"})
        assert t1 == t2
        assert hash(t1) == hash(t2)

    def test_same_values_different_lineage_not_equal(self):
        t1 = Tuple({"A.x": 1}, lineage={"a"})
        t2 = Tuple({"A.x": 1}, lineage={"b"})
        assert t1 != t2

    def test_parents_do_not_affect_equality(self):
        base = base_tuple("A", "t1", x=1)
        t1 = Tuple({"A.x": 1}, lineage={"t1"}, parents=(base,))
        t2 = Tuple({"A.x": 1}, lineage={"t1"})
        assert t1 == t2

    def test_derived_lineage_defaults_to_parent_union(self):
        left = base_tuple("A", "a1", x=1)
        right = base_tuple("B", "b1", y=2)
        merged = left.merge(right)
        assert merged.lineage == frozenset({"a1", "b1"})

    def test_explicit_lineage_wins(self):
        t = Tuple({"A.x": 1}, lineage={"z"})
        assert t.lineage == frozenset({"z"})

    def test_no_tid_no_parents_no_lineage(self):
        t = Tuple({"A.x": 1})
        assert t.lineage == frozenset()


# ---------------------------------------------------------------------------
# Derivations
# ---------------------------------------------------------------------------
class TestDerivations:
    def test_project_keeps_lineage_and_parent(self):
        t = base_tuple("A", "t1", name="x", dob=1)
        p = t.project(["A.name"])
        assert p.type == frozenset({"A.name"})
        assert p.lineage == t.lineage
        assert p.parents == (t,)

    def test_project_missing_attr_raises(self):
        t = base_tuple("A", "t1", name="x")
        with pytest.raises(SchemaError):
            t.project(["A.dob"])

    def test_merge_disjoint(self):
        a = base_tuple("A", "a1", x=1)
        b = base_tuple("B", "b1", y=2)
        m = a.merge(b)
        assert m["A.x"] == 1
        assert m["B.y"] == 2
        assert set(m.parents) == {a, b}

    def test_merge_overlapping_raises(self):
        a = base_tuple("A", "a1", x=1)
        b = base_tuple("A", "a2", x=2)
        with pytest.raises(SchemaError):
            a.merge(b)

    def test_rename_attributes(self):
        t = base_tuple("A", "t1", aid=1, name="x")
        renamed = t.rename_attributes({"A.aid": "aid"})
        assert renamed["aid"] == 1
        assert renamed["A.name"] == "x"
        assert renamed.parents == (t,)

    def test_rename_collapse_raises(self):
        t = base_tuple("A", "t1", x=1, y=2)
        with pytest.raises(SchemaError):
            t.rename_attributes({"A.x": "v", "A.y": "v"})

    def test_with_parents(self):
        t = base_tuple("A", "t1", x=1)
        other = base_tuple("A", "t2", x=1)
        clone = t.with_parents((other,))
        assert clone.parents == (other,)
        assert clone == t  # equality ignores parents


# ---------------------------------------------------------------------------
# Provenance rendering
# ---------------------------------------------------------------------------
class TestHowProvenance:
    def test_base_tuple_renders_tid(self):
        assert base_tuple("A", "t4", x=1).how_provenance() == "t4"

    def test_derived_renders_sorted_lineage(self):
        a = base_tuple("A", "t4", x=1)
        b = base_tuple("B", "t2", y=1)
        assert a.merge(b).how_provenance() == "t2*t4"

    def test_repr_mentions_tid(self):
        assert "t4" in repr(base_tuple("A", "t4", x=1))
