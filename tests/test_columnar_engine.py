"""Unit tests for the columnar engine's building blocks and operators.

Covers the representation layer (interned-value dictionaries, bitmap
selection vectors, the batch/table cache) and the operator edge cases
the Table-4 differential suite cannot reach: empty relations, NULL
join keys, cross-type value collisions (``5`` vs ``5.0``), multi-chunk
batches, union/difference dedupe, and the select-memo replay path.
Each operator case asserts full parity with the row engine -- per-node
values, lineage, *and* budget/operator counters.
"""

from __future__ import annotations

import pytest

from repro.columnar import (
    BATCH_ROWS,
    Bitmap,
    Dictionary,
    clear_table_cache,
    columnar_table,
    evaluate_columnar,
)
from repro.core import JoinPair, SPJASpec, canonicalize
from repro.obs import Tracer, counter_values, tracing
from repro.relational import (
    AggregateCall,
    Database,
    RelationLeaf,
    RelationSchema,
    Renaming,
    attr_cmp,
    evaluate,
    evaluate_query,
)
from repro.relational.algebra import Difference, Union
from repro.robustness.budget import (
    Budget,
    ExecutionContext,
    execution_context,
)


def node_key(tuples):
    return [(dict(t.values), t.lineage) for t in tuples]


def traced(fn):
    """Run *fn* under a private tracer + unlimited budget context."""
    tracer = Tracer()
    with tracing(tracer):
        with execution_context(ExecutionContext(Budget())):
            out = fn()
    return out, counter_values(tracer.metrics.snapshot())


def drop_batches(counters):
    """Counters minus the columnar-only batch count."""
    return {
        k: v for k, v in counters.items() if k != "evaluator.batches"
    }


def assert_engines_agree(database, canonical):
    """Node-by-node value/lineage/counter parity on one query."""
    instance = database.input_instance(canonical.aliases)
    row, row_counters = traced(
        lambda: evaluate(canonical.root, instance)
    )
    col_result, col_counters = traced(
        lambda: evaluate_columnar(canonical.root, instance)
    )
    col = col_result.row_view()
    for node in canonical.root.postorder():
        assert node_key(row.output(node)) == node_key(
            col.output(node)
        ), f"divergence at {node.describe()}"
    assert drop_batches(col_counters) == row_counters
    return row, col


# ---------------------------------------------------------------------------
# Dictionary
# ---------------------------------------------------------------------------
class TestDictionary:
    def test_roundtrip_preserves_exact_values(self):
        d = Dictionary()
        codes = d.encode_many(["a", "b", "a"])
        assert codes == [0, 1, 0]
        assert [d.decode(c) for c in codes] == ["a", "b", "a"]

    def test_equal_hashing_values_keep_distinct_codes(self):
        """``5``/``5.0``/``True``/``1`` hash equal but must decode back
        to the exact original value, so each gets its own code."""
        d = Dictionary()
        codes = [d.encode(v) for v in (5, 5.0, True, 1)]
        assert len(set(codes)) == 4
        decoded = [d.decode(c) for c in codes]
        assert [type(v) for v in decoded] == [int, float, bool, int]

    def test_codes_equal_uses_plain_equality(self):
        """Constant predicates compare with ``==`` on the row side, so
        the code-driven path must find every ``==``-equal code."""
        d = Dictionary()
        d.encode_many([5, 5.0, 7])
        assert d.codes_equal(5) == [0, 1]
        assert d.codes_equal(7.0) == [2]
        assert d.codes_equal("missing") == []


# ---------------------------------------------------------------------------
# Bitmap
# ---------------------------------------------------------------------------
class TestBitmap:
    def test_from_bools_roundtrip(self):
        bools = [True, False, True, True, False]
        bm = Bitmap.from_bools(bools)
        assert bm.nbits == 5 and bm.count() == 3
        assert [bm.get(i) for i in range(5)] == bools
        assert list(bm.indexes()) == [0, 2, 3]

    def test_empty(self):
        bm = Bitmap.from_bools([])
        assert bm.nbits == 0 and bm.count() == 0
        assert list(bm.indexes()) == []

    def test_boolean_algebra(self):
        a = Bitmap.from_bools([True, True, False, False])
        b = Bitmap.from_bools([True, False, True, False])
        assert list((a & b).indexes()) == [0]
        assert list((a | b).indexes()) == [0, 1, 2]
        assert list(a.invert().indexes()) == [2, 3]
        assert Bitmap.ones(3).count() == 3
        assert Bitmap.zeros(3).count() == 0

    def test_indexes_in_window(self):
        bm = Bitmap.from_bools([bool(i % 3 == 0) for i in range(10)])
        assert bm.indexes_in(0, 10) == [0, 3, 6, 9]
        assert bm.indexes_in(2, 7) == [3, 6]
        assert bm.indexes_in(4, 6) == []


# ---------------------------------------------------------------------------
# Table cache and signatures
# ---------------------------------------------------------------------------
def _tiny_db():
    db = Database("tiny-col")
    db.create_table("R", ["id", "x"], key="id")
    db.insert("R", id=1, x=5)
    db.insert("R", id=2, x=5.0)
    db.insert("R", id=3, x=7)
    return db


class TestTableCacheAndSignatures:
    def test_table_cache_reuses_entries(self):
        db = _tiny_db()
        spec = SPJASpec(aliases={"R": "R"}, projection=("R.x",))
        canonical = canonicalize(spec, db.schema)
        instance = db.input_instance(canonical.aliases)
        first = columnar_table(instance, "R")
        assert columnar_table(instance, "R") is first
        clear_table_cache()
        assert columnar_table(instance, "R") is not first

    def test_leaf_batch_lineage_is_verified_unique(self):
        db = _tiny_db()
        spec = SPJASpec(aliases={"R": "R"}, projection=("R.x",))
        canonical = canonicalize(spec, db.schema)
        instance = db.input_instance(canonical.aliases)
        batch = columnar_table(instance, "R").batch
        assert batch.unique_lineage
        assert batch.lineage_aliases == {"R"}
        assert len(set(batch.lineage)) == batch.nrows

    def test_row_signatures_are_value_based_not_code_based(self):
        """``5`` and ``5.0`` carry distinct dictionary codes but are
        equal *values*: signature classes must merge them, matching
        the row engine's dict-equality dedupe."""
        db = _tiny_db()
        spec = SPJASpec(aliases={"R": "R"}, projection=("R.x",))
        canonical = canonicalize(spec, db.schema)
        instance = db.input_instance(canonical.aliases)
        batch = columnar_table(instance, "R").batch
        sigs = batch.row_signatures(("R.x",))
        assert sigs[0] == sigs[1]  # 5 and 5.0 share a class
        assert sigs[0] != sigs[2]
        assert batch.signature_count(("R.x",)) == 2


# ---------------------------------------------------------------------------
# Operator edge cases: full row-engine parity per case
# ---------------------------------------------------------------------------
class TestOperatorEdgeCases:
    def test_empty_relation_through_select_project(self):
        db = Database("empty")
        db.create_table("R", ["id", "x"], key="id")
        spec = SPJASpec(
            aliases={"R": "R"},
            selections=[attr_cmp("R.x", ">", 0)],
            projection=("R.id",),
        )
        assert_engines_agree(db, canonicalize(spec, db.schema))

    def test_join_with_one_empty_side(self):
        db = Database("half-empty")
        db.create_table("R", ["id", "k"], key="id")
        db.create_table("S", ["id", "k"], key="id")
        db.insert("R", id=1, k="a")
        spec = SPJASpec(
            aliases={"R": "R", "S": "S"},
            joins=[JoinPair("R.k", "S.k")],
            projection=("R.id", "S.id"),
        )
        assert_engines_agree(db, canonicalize(spec, db.schema))

    def test_join_null_keys_never_match(self):
        db = Database("nulls")
        db.create_table("R", ["id", "k"], key="id")
        db.create_table("S", ["id", "k"], key="id")
        db.insert("R", id=1, k=None)
        db.insert("R", id=2, k="a")
        db.insert("S", id=1, k=None)
        db.insert("S", id=2, k="a")
        spec = SPJASpec(
            aliases={"R": "R", "S": "S"},
            joins=[JoinPair("R.k", "S.k")],
            projection=("R.id", "S.id"),
        )
        row, _ = assert_engines_agree(db, canonicalize(spec, db.schema))

    def test_join_cross_type_key_collisions(self):
        """Join keys ``5`` vs ``5.0`` vs ``True`` vs ``1``: whatever
        the row engine matches, the columnar probe must match too."""
        db = Database("cross-type")
        db.create_table("R", ["id", "k"], key="id")
        db.create_table("S", ["id", "k"], key="id")
        for i, k in enumerate((5, 5.0, True, 1, "x")):
            db.insert("R", id=f"r{i}", k=k)
            db.insert("S", id=f"s{i}", k=k)
        spec = SPJASpec(
            aliases={"R": "R", "S": "S"},
            joins=[JoinPair("R.k", "S.k")],
            projection=("R.id", "S.id"),
        )
        assert_engines_agree(db, canonicalize(spec, db.schema))

    def test_self_join_disjoint_alias_lineage(self):
        db = Database("selfjoin")
        db.create_table("R", ["id", "k"], key="id")
        db.insert("R", id=1, k="a")
        db.insert("R", id=2, k="a")
        spec = SPJASpec(
            aliases={"R1": "R", "R2": "R"},
            joins=[JoinPair("R1.k", "R2.k")],
            projection=("R1.id", "R2.id"),
        )
        assert_engines_agree(db, canonicalize(spec, db.schema))

    def test_project_duplicate_values(self):
        db = Database("dups")
        db.create_table("R", ["id", "x", "y"], key="id")
        db.insert("R", id=1, x=1, y=10)
        db.insert("R", id=2, x=1, y=20)
        db.insert("R", id=3, x=2, y=30)
        spec = SPJASpec(aliases={"R": "R"}, projection=("R.x",))
        assert_engines_agree(db, canonicalize(spec, db.schema))

    def test_aggregate_grouped_and_over_empty_input(self):
        db = Database("agg")
        db.create_table("R", ["id", "g", "v"], key="id")
        db.insert("R", id=1, g="a", v=10)
        db.insert("R", id=2, g="a", v=20)
        db.insert("R", id=3, g="b", v=30)
        grouped = SPJASpec(
            aliases={"R": "R"},
            group_by=("R.g",),
            aggregates=(AggregateCall("avg", "R.v", "av"),),
        )
        assert_engines_agree(db, canonicalize(grouped, db.schema))
        empty_in = SPJASpec(
            aliases={"R": "R"},
            selections=[attr_cmp("R.v", ">", 999)],
            group_by=("R.g",),
            aggregates=(AggregateCall("count", "R.id", "n"),),
        )
        assert_engines_agree(db, canonicalize(empty_in, db.schema))

    def test_multi_chunk_batches(self):
        """A relation wider than one batch: results identical, spans
        chunked (``evaluator.batches`` exceeds the node count)."""
        db = Database("chunked")
        db.create_table("R", ["id", "v"], key="id")
        for i in range(BATCH_ROWS + 100):
            db.insert("R", id=i, v=i % 7)
        spec = SPJASpec(
            aliases={"R": "R"},
            selections=[attr_cmp("R.v", ">", 2)],
            projection=("R.id",),
        )
        canonical = canonicalize(spec, db.schema)
        assert_engines_agree(db, canonical)
        instance = db.input_instance(canonical.aliases)
        _, counters = traced(
            lambda: evaluate_columnar(canonical.root, instance)
        )
        nodes = len(list(canonical.root.postorder()))
        assert counters["evaluator.batches"] > nodes

    def test_union_and_difference_parity(self):
        db = Database("setops")
        db.create_table("A", ["x"])
        db.create_table("B", ["y"])
        for v in (1, 2, 2, 3):
            db.insert("A", x=v)
        for v in (2, 3, 4):
            db.insert("B", y=v)
        renaming = Renaming.of(("A.x", "B.y", "v"))
        for root in (
            Union(
                RelationLeaf(RelationSchema("A", ("x",))),
                RelationLeaf(RelationSchema("B", ("y",))),
                renaming,
            ),
            Difference(
                RelationLeaf(RelationSchema("A", ("x",))),
                RelationLeaf(RelationSchema("B", ("y",))),
                renaming,
            ),
        ):
            row = evaluate_query(root, db.instance())
            col = evaluate_query(root, db.instance(), use_columnar=True)
            for node in root.postorder():
                assert node_key(row.output(node)) == node_key(
                    col.output(node)
                )


# ---------------------------------------------------------------------------
# Select memoization: replayed evaluations stay observationally equal
# ---------------------------------------------------------------------------
class TestSelectMemoReplay:
    def test_repeat_evaluation_replays_identically(self):
        """The second evaluation serves selection output from the
        table-cache memo; rows, lineage, spans, and ticks must be
        indistinguishable from the first."""
        db = _tiny_db()
        spec = SPJASpec(
            aliases={"R": "R"},
            selections=[attr_cmp("R.x", ">", 4)],
            projection=("R.id",),
        )
        canonical = canonicalize(spec, db.schema)
        instance = db.input_instance(canonical.aliases)
        clear_table_cache()
        first, first_counters = traced(
            lambda: evaluate_columnar(canonical.root, instance)
        )
        second, second_counters = traced(
            lambda: evaluate_columnar(canonical.root, instance)
        )
        assert first_counters == second_counters
        for node in canonical.root.postorder():
            assert node_key(first.row_view().output(node)) == node_key(
                second.row_view().output(node)
            )
        row, row_counters = traced(
            lambda: evaluate(canonical.root, instance)
        )
        assert drop_batches(second_counters) == row_counters
