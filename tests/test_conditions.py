"""Unit tests for the condition language and its satisfiability
procedure (Def. 2.5 and the valuation existence check of Def. 2.8)."""

import pytest

from repro.errors import ConditionError
from repro.relational import (
    And,
    Attr,
    Comparison,
    Const,
    FalseCondition,
    Or,
    TrueCondition,
    Var,
    attr_attr_cmp,
    attr_cmp,
    base_tuple,
    compare_values,
    is_satisfiable,
    var_cmp,
    var_var_cmp,
)


# ---------------------------------------------------------------------------
# Value comparison semantics
# ---------------------------------------------------------------------------
class TestCompareValues:
    @pytest.mark.parametrize(
        "a,op,b,expected",
        [
            (1, "=", 1, True),
            (1, "!=", 2, True),
            (1, "<", 2, True),
            (2, ">", 1, True),
            (1, "<=", 1, True),
            (1, ">=", 2, False),
            ("a", "<", "b", True),
            (1, "=", 1.0, True),
        ],
    )
    def test_basic(self, a, op, b, expected):
        assert compare_values(a, op, b) is expected

    def test_null_is_never_comparable(self):
        for op in ("=", "!=", "<", ">", "<=", ">="):
            assert compare_values(None, op, 1) is False
            assert compare_values(1, op, None) is False

    def test_cross_domain_is_false(self):
        assert compare_values(1, "=", "1") is False
        assert compare_values("a", "<", 1) is False

    def test_bool_only_compares_with_bool(self):
        assert compare_values(True, "=", True) is True
        assert compare_values(True, "=", 1) is False

    def test_unknown_operator_raises(self):
        with pytest.raises(ConditionError):
            compare_values(1, "~", 2)


# ---------------------------------------------------------------------------
# Condition evaluation
# ---------------------------------------------------------------------------
class TestConditionEvaluation:
    def test_attr_cmp_against_tuple(self):
        t = base_tuple("A", "t1", dob=-400)
        assert attr_cmp("A.dob", ">", -800).evaluate(t)
        assert not attr_cmp("A.dob", ">", -400).evaluate(t)

    def test_attr_attr_cmp(self):
        t = base_tuple("A", "t1", x=1, y=2)
        assert attr_attr_cmp("A.x", "!=", "A.y").evaluate(t)

    def test_missing_attr_raises(self):
        t = base_tuple("A", "t1", x=1)
        with pytest.raises(ConditionError):
            attr_cmp("A.z", "=", 1).evaluate(t)

    def test_var_with_valuation(self):
        cond = var_cmp("v", ">", 10)
        assert cond.evaluate(valuation={"v": 11})
        assert not cond.evaluate(valuation={"v": 9})

    def test_unbound_var_raises(self):
        with pytest.raises(ConditionError):
            var_cmp("v", ">", 10).evaluate(valuation={})

    def test_true_false_conditions(self):
        assert TrueCondition().evaluate()
        assert not FalseCondition().evaluate()

    def test_and_or_evaluation(self):
        t = base_tuple("A", "t1", x=1, y=2)
        both = attr_cmp("A.x", "=", 1) & attr_cmp("A.y", "=", 2)
        either = attr_cmp("A.x", "=", 9) | attr_cmp("A.y", "=", 2)
        assert both.evaluate(t)
        assert either.evaluate(t)


# ---------------------------------------------------------------------------
# Structure: simplification, negation, renaming, introspection
# ---------------------------------------------------------------------------
class TestConditionStructure:
    def test_and_of_simplifies_trivia(self):
        assert isinstance(And.of(), TrueCondition)
        assert isinstance(And.of(TrueCondition()), TrueCondition)
        only = attr_cmp("A.x", "=", 1)
        assert And.of(only) is only
        assert isinstance(
            And.of(only, FalseCondition()), FalseCondition
        )

    def test_or_of_simplifies_trivia(self):
        assert isinstance(Or.of(), FalseCondition)
        only = attr_cmp("A.x", "=", 1)
        assert Or.of(only, FalseCondition()) is only
        assert isinstance(Or.of(only, TrueCondition()), TrueCondition)

    def test_nested_and_flattens(self):
        c1, c2, c3 = (attr_cmp("A.x", "=", i) for i in range(3))
        cond = And.of(And.of(c1, c2), c3)
        assert cond.conjuncts() == (c1, c2, c3)

    def test_negation_of_comparison(self):
        assert attr_cmp("A.x", "<", 1).negated() == attr_cmp(
            "A.x", ">=", 1
        )
        assert attr_cmp("A.x", "=", 1).negated() == attr_cmp(
            "A.x", "!=", 1
        )

    def test_de_morgan(self):
        c1 = attr_cmp("A.x", "=", 1)
        c2 = attr_cmp("A.y", "=", 2)
        negated = And.of(c1, c2).negated()
        assert isinstance(negated, Or)
        assert set(negated.parts) == {c1.negated(), c2.negated()}

    def test_flipped(self):
        cmp = Comparison(Const(1), "<", Attr("A.x"))
        assert cmp.flipped() == Comparison(Attr("A.x"), ">", Const(1))

    def test_attributes_and_variables(self):
        cond = And.of(attr_cmp("A.x", "=", 1), var_cmp("v", ">", 2))
        assert cond.attributes() == frozenset({"A.x"})
        assert cond.variables() == frozenset({"v"})

    def test_rename_attributes(self):
        cond = attr_attr_cmp("A.x", "=", "B.y")
        renamed = cond.rename_attributes({"A.x": "x"})
        assert renamed.attributes() == frozenset({"x", "B.y"})

    def test_invalid_operator_rejected(self):
        with pytest.raises(ConditionError):
            Comparison(Attr("A.x"), "===", Const(1))


# ---------------------------------------------------------------------------
# Satisfiability (the heart of c-tuple compatibility)
# ---------------------------------------------------------------------------
class TestSatisfiability:
    def test_true_is_satisfiable(self):
        assert is_satisfiable(TrueCondition())

    def test_false_is_not(self):
        assert not is_satisfiable(FalseCondition())

    def test_free_variable_bound_above(self):
        assert is_satisfiable(var_cmp("x", ">", 25))

    def test_bound_variable_checked(self):
        cond = var_cmp("x", ">", 25)
        assert is_satisfiable(cond, {"x": 30})
        assert not is_satisfiable(cond, {"x": 20})

    def test_contradicting_bounds(self):
        cond = And.of(var_cmp("x", ">", 10), var_cmp("x", "<", 5))
        assert not is_satisfiable(cond)

    def test_touching_bounds_non_strict_ok(self):
        cond = And.of(var_cmp("x", ">=", 5), var_cmp("x", "<=", 5))
        assert is_satisfiable(cond)

    def test_touching_bounds_strict_fails(self):
        cond = And.of(var_cmp("x", ">=", 5), var_cmp("x", "<", 5))
        assert not is_satisfiable(cond)

    def test_point_excluded(self):
        cond = And.of(
            var_cmp("x", ">=", 5),
            var_cmp("x", "<=", 5),
            var_cmp("x", "!=", 5),
        )
        assert not is_satisfiable(cond)

    def test_pin_conflicts(self):
        cond = And.of(var_cmp("x", "=", 3), var_cmp("x", "=", 4))
        assert not is_satisfiable(cond)

    def test_pin_respects_bounds(self):
        cond = And.of(var_cmp("x", "=", 3), var_cmp("x", ">", 5))
        assert not is_satisfiable(cond)

    def test_string_domain(self):
        cond = And.of(var_cmp("x", ">", "a"), var_cmp("x", "<", "c"))
        assert is_satisfiable(cond)
        assert not is_satisfiable(cond, {"x": "d"})

    def test_var_var_equality_propagates(self):
        cond = And.of(
            var_var_cmp("x", "=", "y"),
            var_cmp("x", "=", 3),
            var_cmp("y", "=", 4),
        )
        assert not is_satisfiable(cond)

    def test_var_var_order_chain(self):
        cond = And.of(
            var_var_cmp("x", "<", "y"),
            var_cmp("x", ">", 10),
            var_cmp("y", "<", 11),
        )
        # 10 < x < y < 11 is satisfiable over a dense domain
        assert is_satisfiable(cond)

    def test_var_var_order_contradiction(self):
        cond = And.of(
            var_var_cmp("x", "<", "y"),
            var_cmp("x", ">=", 11),
            var_cmp("y", "<=", 11),
        )
        assert not is_satisfiable(cond)

    def test_strict_cycle_detected(self):
        cond = And.of(
            var_var_cmp("x", "<", "y"), var_var_cmp("y", "<", "x")
        )
        assert not is_satisfiable(cond)

    def test_nonstrict_cycle_fine(self):
        cond = And.of(
            var_var_cmp("x", "<=", "y"), var_var_cmp("y", "<=", "x")
        )
        assert is_satisfiable(cond)

    def test_self_comparison(self):
        assert not is_satisfiable(var_var_cmp("x", "<", "x"))
        assert not is_satisfiable(var_var_cmp("x", "!=", "x"))
        assert is_satisfiable(var_var_cmp("x", "<=", "x"))

    def test_neq_between_pinned_vars(self):
        cond = And.of(
            var_var_cmp("x", "!=", "y"),
            var_cmp("x", "=", 3),
            var_cmp("y", "=", 3),
        )
        assert not is_satisfiable(cond)

    def test_neq_between_free_vars_ok(self):
        assert is_satisfiable(var_var_cmp("x", "!=", "y"))

    def test_disjunction_checked_branchwise(self):
        cond = Or.of(
            And.of(var_cmp("x", ">", 10), var_cmp("x", "<", 5)),
            var_cmp("x", "=", 1),
        )
        assert is_satisfiable(cond)

    def test_attribute_in_condition_rejected(self):
        with pytest.raises(ConditionError):
            is_satisfiable(attr_cmp("A.x", "=", 1))

    def test_example_from_paper(self):
        # Ex. 2.3: (Homer, x1), x1 > 25 -- x1 free, so satisfiable
        assert is_satisfiable(var_cmp("x1", ">", 25), {})
